# Convenience targets for the Harmonia reproduction.

PYTHON ?= python

.PHONY: test bench report examples all

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

report:
	$(PYTHON) -m repro.cli report

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

all: test bench report
