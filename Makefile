# Convenience targets for the Harmonia reproduction.

PYTHON ?= python

.PHONY: test bench bench-smoke bench-sweep bench-vector bench-fleet bench-obs bench-build bench-serve bench-orchestrator fuzz-smoke report examples lint all

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-smoke:
	$(PYTHON) benchmarks/perf_smoke.py

bench-sweep:
	$(PYTHON) benchmarks/sweep_smoke.py

bench-vector:
	$(PYTHON) benchmarks/vector_smoke.py

bench-fleet:
	PYTHONPATH=src $(PYTHON) -m repro.cli fleet --json BENCH_fleet.json

bench-obs:
	$(PYTHON) benchmarks/obs_smoke.py

bench-build:
	$(PYTHON) benchmarks/build_smoke.py

bench-serve:
	$(PYTHON) benchmarks/serve_smoke.py

bench-orchestrator:
	$(PYTHON) benchmarks/orchestrator_smoke.py

fuzz-smoke:
	$(PYTHON) benchmarks/fuzz_smoke.py

report:
	$(PYTHON) -m repro.cli report

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	elif $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; falling back to a syntax check"; \
		$(PYTHON) -m compileall -q src tests benchmarks; \
	fi

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; $(PYTHON) $$script || exit 1; \
	done

all: test bench report
