"""Build-farm perf baseline (``make bench-build``).

Builds the production fleet's device x role matrix for **every
deployment year 2020-2024** -- the nightly-rebuild shape a real farm
serves as the fleet evolves -- three ways:

* ``naive_serial`` -- the pre-farm shape: every (device, role) target
  tailored and compiled independently with ``BuildFlow.compile``; no
  shell memoisation, no content-addressed dedup, no artifact store, so
  every year recompiles every variant from scratch;
* ``farm_cold`` -- the :class:`repro.runtime.buildfarm.BuildFarm` with
  4 workers running the same five yearly matrices *incrementally*
  against one cold content-addressed store: device variants collapse
  onto one compile and later years reuse earlier years' artifacts;
* ``farm_warm`` -- the same five matrices re-run against the warm
  store (every build served from disk).

The farm's speedup on this machine comes from its reuse layers --
content-addressed artifacts, intra-run dedup, tailor memoisation --
which is why the gate holds at any CPU count; with multiple cores the
worker pool multiplies it further.

A determinism gate also diffs the 2024 matrix's manifests built with
``workers=1`` against ``workers=4``: they must be byte-identical.

Results land in ``BENCH_build.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.  The
script exits non-zero when the cold farm fails its >= 3x budget
against the naive serial rebuild, the warm re-run fails its >= 10x
budget against the cold farm, or the determinism diff fails.

Run directly: ``PYTHONPATH=src python benchmarks/build_smoke.py``
"""

import json
import pathlib
import shutil
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from perf_smoke import best_of  # noqa: E402

from repro.adapters.toolchain import BuildFlow  # noqa: E402
from repro.apps import application_by_name  # noqa: E402
from repro.errors import HarmoniaError  # noqa: E402
from repro.platform.catalog import resolve_device  # noqa: E402
from repro.runtime.buildfarm import (  # noqa: E402
    ArtifactStore,
    BuildFarm,
    fleet_build_plan,
)

YEARS = (2020, 2021, 2022, 2023, 2024)
WORKERS = 4
REPEATS = 2
#: Modelled CAD compile effort: high enough that the xorshift compile
#: loop dominates tailoring/packaging, low enough to keep the whole
#: benchmark under a couple of minutes.
EFFORT = 1_000

PLANS = {year: fleet_build_plan(year, effort=EFFORT) for year in YEARS}


def naive_serial() -> int:
    """Seed-style rebuild: every target compiled independently.

    Mirrors what shipping a fleet looked like before the farm: iterate
    the matrix, tailor, run the four-step flow -- recompiling the same
    tailored shell for every device variant and every year it stays in
    the fleet.  Incompatible and unfit pairs are skipped, exactly as
    the farm classifies them.
    """
    compiles = 0
    for year in YEARS:
        plan = PLANS[year]
        for target in plan.expand():
            device = resolve_device(target.device)
            app = application_by_name(target.role)
            try:
                shell = app.tailored_shell(device)
                BuildFlow(device).compile(
                    f"{target.role}-{device.name}", shell.modules(),
                    extra_resources=app.role().resources,
                    effort=EFFORT)
            except HarmoniaError:
                continue
            compiles += 1
    return compiles


def farm_all_years(store: ArtifactStore, workers: int = WORKERS) -> dict:
    """Run the five yearly matrices incrementally against one store."""
    counts = {"built": 0, "cached": 0, "shared": 0}
    for year in YEARS:
        report = BuildFarm(PLANS[year], workers=workers, store=store).run()
        for status in counts:
            counts[status] += report.count(status)
    return counts


def run() -> dict:
    naive_compiles = naive_serial()          # warm imports + count once
    naive_s = best_of(naive_serial, REPEATS)

    store_dir = tempfile.mkdtemp(prefix="buildfarm-bench-")
    try:
        def cold():
            shutil.rmtree(store_dir, ignore_errors=True)
            return farm_all_years(ArtifactStore(store_dir))

        cold_s = best_of(cold, REPEATS)
        cold_counts = cold()
        # The store is now fully warm; time pure re-runs.
        warm_s = best_of(lambda: farm_all_years(ArtifactStore(store_dir)),
                         REPEATS)
        warm_counts = farm_all_years(ArtifactStore(store_dir))
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    serial_manifests = BuildFarm(PLANS[2024], workers=1).run().manifests_jsonl()
    pooled_manifests = BuildFarm(PLANS[2024],
                                 workers=WORKERS).run().manifests_jsonl()

    return {
        "workload": f"{len(YEARS)} fleet years x 5 roles "
                    f"({sum(len(PLANS[y]) for y in YEARS)} targets, "
                    f"effort {EFFORT})",
        "workers": WORKERS,
        "naive_compiles": naive_compiles,
        "farm_unique_builds": cold_counts["built"],
        "naive_serial_s": round(naive_s, 6),
        "farm_cold_s": round(cold_s, 6),
        "farm_warm_s": round(warm_s, 6),
        "farm_speedup": round(naive_s / cold_s, 3),
        "warm_speedup": round(cold_s / warm_s, 3),
        "warm_cached_targets": warm_counts["cached"],
        "deterministic_across_workers": serial_manifests == pooled_manifests,
    }


def main() -> int:
    baseline = run()
    target = REPO_ROOT / "BENCH_build.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    failed = False
    if baseline["farm_speedup"] < 3.0:
        print(f"FAIL: cold farm only {baseline['farm_speedup']:.2f}x faster "
              f"than the naive serial rebuild (budget 3x)", file=sys.stderr)
        failed = True
    if baseline["warm_speedup"] < 10.0:
        print(f"FAIL: warm re-run only {baseline['warm_speedup']:.2f}x faster "
              f"than the cold farm (budget 10x)", file=sys.stderr)
        failed = True
    if not baseline["deterministic_across_workers"]:
        print("FAIL: manifests differ between workers=1 and workers=4",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
