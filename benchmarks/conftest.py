"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper.  Besides
being timed by pytest-benchmark, each writes the rows/series it
reproduces to ``benchmarks/results/<experiment>.txt`` so the numbers are
inspectable after a run (EXPERIMENTS.md archives them).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Write an experiment's reproduced rows to its results file."""

    def _emit(experiment: str, text: str) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment}.txt"
        path.write_text(text.rstrip() + "\n")
        print(f"\n[{experiment}]\n{text}")
        return text

    return _emit
