"""Differential-fuzzer smoke gate (``make fuzz-smoke``).

Runs the conformance fuzzer (:mod:`repro.scenario.fuzz`) as a CI gate:

* a **clean campaign** of 200 random valid scenarios cross-checked for
  serialisation exactness, vector-vs-DES equality (results, traces,
  metrics), cache-tier identity, and baseline-framework capability
  invariants -- zero failures allowed, under a 60 s budget;
* an **injected-failure campaign** that plants an artificial bug (any
  packet size >= 1024 fails) and requires the shrinker to find it,
  minimise it to a one-app / one-device / one-size / one-packet
  scenario, write the repro JSON, and do all of that **identically
  twice** -- deterministic shrinking is part of the contract;
* an **epoch-delta campaign** of 100 random churned fleet scenarios,
  each run through the incremental orchestrator, the full-recompute
  oracle, and the per-epoch verify mode -- zero divergences allowed --
  plus an injected-epoch failure that the epoch shrinker must minimise
  identically twice.

Results land in ``BENCH_fuzz.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.

Run directly: ``PYTHONPATH=src python benchmarks/fuzz_smoke.py``
"""

import json
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenario import DifferentialFuzzer, load_scenario  # noqa: E402

CLEAN_BUDGET = 200
CLEAN_SEED = 2_025
WALL_BUDGET_S = 60.0
INJECT_BUDGET = 24
INJECT_SEED = 13
INJECT_THRESHOLD = 1_024
EPOCH_BUDGET = 100
EPOCH_SEED = 2_026
EPOCH_WALL_BUDGET_S = 60.0
EPOCH_INJECT_BUDGET = 8
EPOCH_INJECT_SEED = 19
EPOCH_INJECT_THRESHOLD = 2


def clean_campaign() -> dict:
    # Real conformance failures land their minimized repros here, where
    # CI picks them up as an artifact.
    start = time.perf_counter()
    report = DifferentialFuzzer(
        seed=CLEAN_SEED,
        repro_dir=str(REPO_ROOT / "fuzz-repros"),
    ).run(budget=CLEAN_BUDGET)
    elapsed = time.perf_counter() - start
    return {
        "budget": CLEAN_BUDGET,
        "seed": CLEAN_SEED,
        "scenarios_run": report.scenarios_run,
        "points_checked": report.points_checked,
        "checks_run": report.checks_run,
        "coverage_keys": report.coverage,
        "failures": len(report.failures),
        "failure_checks": sorted({f.check for f in report.failures}),
        "elapsed_s": round(elapsed, 3),
    }


def injected_campaign(repro_dir: pathlib.Path) -> dict:
    """Two identical seeded runs; shrinking must be deterministic."""
    shrunk_texts = []
    repro_ok = True
    failures = 0
    for tag in ("a", "b"):
        fuzzer = DifferentialFuzzer(
            seed=INJECT_SEED, repro_dir=str(repro_dir / tag),
            inject_size_threshold=INJECT_THRESHOLD)
        report = fuzzer.run(budget=INJECT_BUDGET)
        failures = len(report.failures)
        shrunk_texts.append(tuple(
            failure.shrunk.canonical_json() for failure in report.failures))
        for failure in report.failures:
            if (failure.repro_path is None
                    or load_scenario(failure.repro_path) != failure.shrunk):
                repro_ok = False
    shrunk = [_loads(text) for text in shrunk_texts[0]]
    minimal = bool(shrunk) and all(
        len(s.apps) == 1 and len(s.devices) == 1
        and len(s.workload.packet_sizes) == 1
        and s.workload.packets_per_point == 1
        and s.workload.packet_sizes[0] >= INJECT_THRESHOLD
        for s in shrunk
    )
    return {
        "budget": INJECT_BUDGET,
        "seed": INJECT_SEED,
        "threshold_bytes": INJECT_THRESHOLD,
        "failures_found": failures,
        "shrinking_deterministic": shrunk_texts[0] == shrunk_texts[1],
        "shrunk_minimal": minimal,
        "repro_files_replay": repro_ok,
    }


def epoch_campaign() -> dict:
    """100 churned fleet scenarios through the epoch-delta differential."""
    start = time.perf_counter()
    report = DifferentialFuzzer(
        seed=EPOCH_SEED, epoch_rate=1.0,
        repro_dir=str(REPO_ROOT / "fuzz-repros"),
    ).run(budget=EPOCH_BUDGET)
    elapsed = time.perf_counter() - start
    return {
        "budget": EPOCH_BUDGET,
        "seed": EPOCH_SEED,
        "scenarios_run": report.scenarios_run,
        "epochs_checked": report.points_checked,
        "checks_run": report.checks_run,
        "coverage_keys": report.coverage,
        "failures": len(report.failures),
        "failure_checks": sorted({f.check for f in report.failures}),
        "elapsed_s": round(elapsed, 3),
    }


def epoch_injected_campaign(repro_dir: pathlib.Path) -> dict:
    """Two identical injected-epoch runs; shrinking must match."""
    shrunk_texts = []
    failures = 0
    for tag in ("a", "b"):
        fuzzer = DifferentialFuzzer(
            seed=EPOCH_INJECT_SEED, epoch_rate=1.0,
            repro_dir=str(repro_dir / tag),
            inject_epoch_threshold=EPOCH_INJECT_THRESHOLD)
        report = fuzzer.run(budget=EPOCH_INJECT_BUDGET)
        failures = len(report.failures)
        shrunk_texts.append(tuple(
            failure.shrunk.canonical_json() for failure in report.failures))
    shrunk = [_loads(text) for text in shrunk_texts[0]]
    minimal = bool(shrunk) and all(
        s.epochs is not None
        and s.epochs.epochs >= EPOCH_INJECT_THRESHOLD
        and s.tenancy.flow_count == 1
        and s.epochs.churn == 0.0
        and s.epochs.autoscale is False
        for s in shrunk
    )
    return {
        "budget": EPOCH_INJECT_BUDGET,
        "seed": EPOCH_INJECT_SEED,
        "threshold_epochs": EPOCH_INJECT_THRESHOLD,
        "failures_found": failures,
        "shrinking_deterministic": shrunk_texts[0] == shrunk_texts[1],
        "shrunk_minimal": minimal,
    }


def _loads(text: str):
    from repro.scenario import loads_scenario

    return loads_scenario(text)


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="fuzz-smoke-") as tmp:
        baseline = {
            "clean": clean_campaign(),
            "injected": injected_campaign(pathlib.Path(tmp)),
            "epoch": epoch_campaign(),
            "epoch_injected": epoch_injected_campaign(
                pathlib.Path(tmp) / "epoch"),
        }
    target = REPO_ROOT / "BENCH_fuzz.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")

    clean, injected = baseline["clean"], baseline["injected"]
    failed = []
    if clean["failures"]:
        failed.append(f"{clean['failures']} conformance failure(s) in the "
                      f"clean campaign: {clean['failure_checks']}")
    if clean["scenarios_run"] < CLEAN_BUDGET:
        failed.append(f"only {clean['scenarios_run']} of {CLEAN_BUDGET} "
                      f"scenarios ran")
    if clean["elapsed_s"] > WALL_BUDGET_S:
        failed.append(f"clean campaign took {clean['elapsed_s']:.1f}s "
                      f"(budget {WALL_BUDGET_S:.0f}s)")
    if not injected["failures_found"]:
        failed.append("injected failure was never found")
    if not injected["shrinking_deterministic"]:
        failed.append("shrinking differed between identical runs")
    if not injected["shrunk_minimal"]:
        failed.append("shrunk scenarios are not minimal")
    if not injected["repro_files_replay"]:
        failed.append("a repro file did not replay its shrunk scenario")
    epoch, epoch_injected = baseline["epoch"], baseline["epoch_injected"]
    if epoch["failures"]:
        failed.append(f"{epoch['failures']} epoch-delta divergence(s): "
                      f"{epoch['failure_checks']}")
    if epoch["scenarios_run"] < EPOCH_BUDGET:
        failed.append(f"only {epoch['scenarios_run']} of {EPOCH_BUDGET} "
                      f"epoch scenarios ran")
    if epoch["elapsed_s"] > EPOCH_WALL_BUDGET_S:
        failed.append(f"epoch campaign took {epoch['elapsed_s']:.1f}s "
                      f"(budget {EPOCH_WALL_BUDGET_S:.0f}s)")
    if not epoch_injected["failures_found"]:
        failed.append("injected epoch failure was never found")
    if not epoch_injected["shrinking_deterministic"]:
        failed.append("epoch shrinking differed between identical runs")
    if not epoch_injected["shrunk_minimal"]:
        failed.append("shrunk epoch scenarios are not minimal")
    for message in failed:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
