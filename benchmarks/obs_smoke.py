"""Observability overhead gates (``make bench-obs``).

Three gates keep the telemetry subsystem honest:

* **streaming** -- a fleet run with the flight recorder attached (full
  JSONL streamed to disk, bounded resident ring) must stay within
  1.25x of the same run untraced.  Streaming is the expensive mode;
  if it regresses, every ``--trace-out`` user pays.
* **quiet** -- a fleet run under a context with tracing *off* must stay
  within 10% of a bare run, same budget as ``perf_smoke``'s
  quiet-context gate.  The disabled bus is the everyday configuration.
* **deep spans** -- 20k begin/end pairs nested 64 deep must cost no
  more than 3x the same pairs at depth 1.  ``TraceBus.end`` resolves
  spans through an auxiliary membership set in amortized O(1); a
  regression to the old linear stack scan blows this ratio up
  quadratically and fails the gate immediately.

Results land in ``BENCH_obs.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.

Run directly: ``PYTHONPATH=src python benchmarks/obs_smoke.py``
"""

import json
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.recorder import FlightRecorder  # noqa: E402
from repro.runtime import SimContext  # noqa: E402
from repro.runtime.fleet import FleetSpec, run_fleet  # noqa: E402
from repro.runtime.trace import TraceBus  # noqa: E402

#: The fixed workload: a mid-size fleet scenario under all policies.
FLEET_SPEC = FleetSpec(flow_count=60_000, device_count=128)
RING = 4_096
REPEATS = 5

#: Gate budgets.
STREAMING_BUDGET = 1.25   # streamed-trace run vs untraced run
QUIET_BUDGET = 0.10       # tracing-off context vs bare run
DEEP_SPAN_BUDGET = 3.0    # nested begin/end vs flat begin/end

#: Deep-span micro-gate shape.
SPAN_PAIRS = 20_000
DEPTH = 64


def best_of(workload, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of ``workload()``, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def _bare_run() -> None:
    run_fleet(FLEET_SPEC, context=SimContext(name="obs-bare", trace=False))


def _quiet_run() -> None:
    # Same as bare today, but kept as a separate gate: any future cost
    # added to the disabled bus shows up here first.
    run_fleet(FLEET_SPEC, context=SimContext(name="obs-quiet", trace=False))


def _streamed_run(path: str) -> None:
    context = SimContext(name="obs-stream", trace=True)
    with FlightRecorder(context.trace, path, ring=RING):
        run_fleet(FLEET_SPEC, context=context)


def _span_pairs(nested: bool) -> float:
    """Wall time for ``SPAN_PAIRS`` begin/end pairs, flat or nested."""
    bus = TraceBus(clock_ps=lambda: 0, enabled=True)
    start = time.perf_counter()
    if nested:
        # Keep DEPTH spans permanently open, then churn pairs at the
        # bottom of the stack -- the old linear `end` scan walked the
        # whole stack for every close.
        outer = [bus.begin(f"deep.level{level}") for level in range(DEPTH)]
        for index in range(SPAN_PAIRS):
            span = bus.begin("deep.leaf", index=index)
            bus.end(span)
        for span in reversed(outer):
            bus.end(span)
    else:
        for index in range(SPAN_PAIRS):
            span = bus.begin("flat.leaf", index=index)
            bus.end(span)
    return time.perf_counter() - start


def run() -> dict:
    _bare_run()  # warm imports/caches outside the timing window
    bare = best_of(_bare_run)
    quiet = best_of(_quiet_run)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(pathlib.Path(tmp) / "fleet_trace.jsonl")
        streamed = best_of(lambda: _streamed_run(trace_path))
        trace_lines = sum(
            1 for _ in open(trace_path, encoding="utf-8"))
    flat = min(_span_pairs(nested=False) for _ in range(REPEATS))
    nested = min(_span_pairs(nested=True) for _ in range(REPEATS))
    return {
        "workload": f"fleet {FLEET_SPEC.flow_count:,} flows x "
                    f"{FLEET_SPEC.device_count} devices, ring {RING}",
        "bare_fleet_s": round(bare, 6),
        "quiet_fleet_s": round(quiet, 6),
        "streamed_fleet_s": round(streamed, 6),
        "quiet_overhead_fraction": round(quiet / bare - 1.0, 4),
        "streaming_ratio": round(streamed / bare, 4),
        "streamed_trace_lines": trace_lines,
        "flat_span_pairs_s": round(flat, 6),
        "nested_span_pairs_s": round(nested, 6),
        "deep_span_ratio": round(nested / flat, 4),
        "span_pairs": SPAN_PAIRS,
        "span_depth": DEPTH,
    }


def main() -> int:
    baseline = run()
    target = REPO_ROOT / "BENCH_obs.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    failed = False
    if baseline["streaming_ratio"] > STREAMING_BUDGET:
        print(f"FAIL: streamed fleet run is {baseline['streaming_ratio']:.2f}x "
              f"the untraced run (budget {STREAMING_BUDGET:.2f}x)",
              file=sys.stderr)
        failed = True
    if baseline["quiet_overhead_fraction"] > QUIET_BUDGET:
        print(f"FAIL: tracing-off context adds "
              f"{baseline['quiet_overhead_fraction']:.1%} over a bare run "
              f"(budget {QUIET_BUDGET:.0%})", file=sys.stderr)
        failed = True
    if baseline["deep_span_ratio"] > DEEP_SPAN_BUDGET:
        print(f"FAIL: deeply-nested span pairs cost "
              f"{baseline['deep_span_ratio']:.2f}x flat pairs "
              f"(budget {DEEP_SPAN_BUDGET:.1f}x) -- TraceBus.end is no "
              f"longer amortized O(1)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
