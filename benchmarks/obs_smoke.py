"""Observability overhead gates (``make bench-obs``).

Three gates keep the telemetry subsystem honest:

* **streaming** -- a fleet run with the flight recorder attached (full
  JSONL streamed to disk, bounded resident ring) must stay within
  1.25x of the same run untraced.  Streaming is the expensive mode;
  if it regresses, every ``--trace-out`` user pays.
* **quiet** -- a fleet run under a context with tracing *off* must stay
  within 10% of a bare run, same budget as ``perf_smoke``'s
  quiet-context gate.  The disabled bus is the everyday configuration.
* **deep spans** -- 20k begin/end pairs nested 64 deep must cost no
  more than 3x the same pairs at depth 1.  ``TraceBus.end`` resolves
  spans through an auxiliary membership set in amortized O(1); a
  regression to the old linear stack scan blows this ratio up
  quadratically and fails the gate immediately.
* **serve telemetry** -- a warm serving daemon with the full request
  observability stack (windowed telemetry, span ring, access log) must
  answer a small load run within 1.25x of a daemon with everything
  disabled.  The per-request fold is a handful of dict updates and one
  synchronous span burst; if it ever shows up against a warm cache hit
  (the cheapest request the daemon serves), the fold has grown a
  hidden O(n) somewhere.

Results land in ``BENCH_obs.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.

Run directly: ``PYTHONPATH=src python benchmarks/obs_smoke.py``
"""

import json
import pathlib
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.recorder import FlightRecorder  # noqa: E402
from repro.runtime import SimContext  # noqa: E402
from repro.runtime.fleet import FleetSpec, run_fleet  # noqa: E402
from repro.runtime.trace import TraceBus  # noqa: E402
from repro.scenario import Scenario, WorkloadSpec  # noqa: E402
from repro.serve import (  # noqa: E402
    LoadGenerator,
    ServeConfig,
    serve_in_thread,
)

#: The fixed workload: a mid-size fleet scenario under all policies.
FLEET_SPEC = FleetSpec(flow_count=60_000, device_count=128)
RING = 4_096
REPEATS = 5

#: Gate budgets.
STREAMING_BUDGET = 1.25   # streamed-trace run vs untraced run
QUIET_BUDGET = 0.10       # tracing-off context vs bare run
DEEP_SPAN_BUDGET = 3.0    # nested begin/end vs flat begin/end
TELEMETRY_BUDGET = 1.25   # instrumented daemon vs bare daemon

#: Deep-span micro-gate shape.
SPAN_PAIRS = 20_000
DEPTH = 64

#: Serve-telemetry gate shape: warm cache hits, so the request fold is
#: the dominant per-request cost being measured.
SERVE_REQUESTS = 240
SERVE_CONCURRENCY = 4
SERVE_SCENARIO = Scenario(
    kind="sweep", apps=("sec-gateway",), devices=("device-a",),
    workload=WorkloadSpec(packet_sizes=(64,), packets_per_point=50))


def best_of(workload, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of ``workload()``, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def _bare_run() -> None:
    run_fleet(FLEET_SPEC, context=SimContext(name="obs-bare", trace=False))


def _quiet_run() -> None:
    # Same as bare today, but kept as a separate gate: any future cost
    # added to the disabled bus shows up here first.
    run_fleet(FLEET_SPEC, context=SimContext(name="obs-quiet", trace=False))


def _streamed_run(path: str) -> None:
    context = SimContext(name="obs-stream", trace=True)
    with FlightRecorder(context.trace, path, ring=RING):
        run_fleet(FLEET_SPEC, context=context)


def _span_pairs(nested: bool) -> float:
    """Wall time for ``SPAN_PAIRS`` begin/end pairs, flat or nested."""
    bus = TraceBus(clock_ps=lambda: 0, enabled=True)
    start = time.perf_counter()
    if nested:
        # Keep DEPTH spans permanently open, then churn pairs at the
        # bottom of the stack -- the old linear `end` scan walked the
        # whole stack for every close.
        outer = [bus.begin(f"deep.level{level}") for level in range(DEPTH)]
        for index in range(SPAN_PAIRS):
            span = bus.begin("deep.leaf", index=index)
            bus.end(span)
        for span in reversed(outer):
            bus.end(span)
    else:
        for index in range(SPAN_PAIRS):
            span = bus.begin("flat.leaf", index=index)
            bus.end(span)
    return time.perf_counter() - start


def _serve_load(config: ServeConfig, repeats: int = 3) -> float:
    """Best-of wall time for the load run against one warm daemon."""
    body = json.dumps(SERVE_SCENARIO.to_json()).encode("utf-8")
    with serve_in_thread(config) as handle:
        load = LoadGenerator(handle.host, handle.port, [body],
                             endpoint="sweep")
        # One warm-up pass fills the sweep cache; every timed request
        # afterwards is a resident-cache hit.
        load.run(SERVE_CONCURRENCY, concurrency=SERVE_CONCURRENCY)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            report = load.run(SERVE_REQUESTS,
                              concurrency=SERVE_CONCURRENCY)
            best = min(best, time.perf_counter() - start)
            if report.ok != SERVE_REQUESTS:
                raise RuntimeError(
                    f"load run expected {SERVE_REQUESTS} OK responses, "
                    f"got {report.ok} ({report.errors[:3]})")
    return best


def _serve_telemetry_ratio(tmp: str) -> dict:
    bare_config = ServeConfig(port=0, telemetry=False, trace_ring=0)
    instrumented_config = ServeConfig(
        port=0, access_log=str(pathlib.Path(tmp) / "access.jsonl"))
    bare = _serve_load(bare_config)
    instrumented = _serve_load(instrumented_config)
    return {
        "serve_bare_s": round(bare, 6),
        "serve_instrumented_s": round(instrumented, 6),
        "telemetry_ratio": round(instrumented / bare, 4),
        "telemetry_requests": SERVE_REQUESTS,
    }


def run() -> dict:
    _bare_run()  # warm imports/caches outside the timing window
    bare = best_of(_bare_run)
    quiet = best_of(_quiet_run)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(pathlib.Path(tmp) / "fleet_trace.jsonl")
        streamed = best_of(lambda: _streamed_run(trace_path))
        trace_lines = sum(
            1 for _ in open(trace_path, encoding="utf-8"))
        serve = _serve_telemetry_ratio(tmp)
    flat = min(_span_pairs(nested=False) for _ in range(REPEATS))
    nested = min(_span_pairs(nested=True) for _ in range(REPEATS))
    return {
        **serve,
        "workload": f"fleet {FLEET_SPEC.flow_count:,} flows x "
                    f"{FLEET_SPEC.device_count} devices, ring {RING}",
        "bare_fleet_s": round(bare, 6),
        "quiet_fleet_s": round(quiet, 6),
        "streamed_fleet_s": round(streamed, 6),
        "quiet_overhead_fraction": round(quiet / bare - 1.0, 4),
        "streaming_ratio": round(streamed / bare, 4),
        "streamed_trace_lines": trace_lines,
        "flat_span_pairs_s": round(flat, 6),
        "nested_span_pairs_s": round(nested, 6),
        "deep_span_ratio": round(nested / flat, 4),
        "span_pairs": SPAN_PAIRS,
        "span_depth": DEPTH,
    }


def main() -> int:
    baseline = run()
    target = REPO_ROOT / "BENCH_obs.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    failed = False
    if baseline["streaming_ratio"] > STREAMING_BUDGET:
        print(f"FAIL: streamed fleet run is {baseline['streaming_ratio']:.2f}x "
              f"the untraced run (budget {STREAMING_BUDGET:.2f}x)",
              file=sys.stderr)
        failed = True
    if baseline["quiet_overhead_fraction"] > QUIET_BUDGET:
        print(f"FAIL: tracing-off context adds "
              f"{baseline['quiet_overhead_fraction']:.1%} over a bare run "
              f"(budget {QUIET_BUDGET:.0%})", file=sys.stderr)
        failed = True
    if baseline["deep_span_ratio"] > DEEP_SPAN_BUDGET:
        print(f"FAIL: deeply-nested span pairs cost "
              f"{baseline['deep_span_ratio']:.2f}x flat pairs "
              f"(budget {DEEP_SPAN_BUDGET:.1f}x) -- TraceBus.end is no "
              f"longer amortized O(1)", file=sys.stderr)
        failed = True
    if baseline["telemetry_ratio"] > TELEMETRY_BUDGET:
        print(f"FAIL: fully-instrumented daemon answers warm load at "
              f"{baseline['telemetry_ratio']:.2f}x a bare daemon "
              f"(budget {TELEMETRY_BUDGET:.2f}x) -- the per-request "
              f"telemetry fold has grown", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
