"""Epoch-orchestrator perf + exactness gate (``make bench-orchestrator``).

Runs the epoch-stepped fleet orchestrator
(:mod:`repro.runtime.orchestrator`) as a CI gate:

* a **simulated day** -- 288 five-minute epochs over 1M flows on a
  1000-device fleet at 1% churn -- must finish end-to-end in <= 10 s on
  the incremental delta-vectorized path;
* the incremental path must be **>= 5x faster per epoch** than the
  full-recompute oracle (which rederives every resident per-device
  array -- aggregate load/tenant matrices and the residency stats
  weights -- from the raw flow arrays each epoch);
* the two paths must be **bit-exact**: identical serialised epoch
  stats, tenant stats, state digests, and metrics snapshots across the
  whole run;
* a shorter ``verify``-mode run additionally pins the incremental
  aggregates against the oracle matrices element-for-element at every
  single epoch.

Results land in ``BENCH_orchestrator.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.

Run directly: ``PYTHONPATH=src python benchmarks/orchestrator_smoke.py``
"""

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.context import SimContext  # noqa: E402
from repro.runtime.fleet import FleetSpec  # noqa: E402
from repro.runtime.orchestrator import (  # noqa: E402
    OrchestratorSpec, run_orchestrator)

FLOWS = 1_000_000
DEVICES = 1_000
TENANTS = 24
EPOCHS = 288
CHURN = 0.01  # 1% per epoch -- "typical" churn, inside the <= 2% gate
VERIFY_EPOCHS = 96

DAY_BUDGET_S = 10.0
SPEEDUP_FLOOR = 5.0


def _specs():
    fleet = FleetSpec(flow_count=FLOWS, device_count=DEVICES,
                      tenant_count=TENANTS)
    spec = OrchestratorSpec(epochs=EPOCHS, churn=CHURN)
    return fleet, spec


def _run(mode: str, epochs: int = EPOCHS):
    fleet, spec = _specs()
    if epochs != spec.epochs:
        import dataclasses
        spec = dataclasses.replace(spec, epochs=epochs)
    context = SimContext(name=f"orchestrator-{mode}")
    started = time.perf_counter()
    result = run_orchestrator(fleet, spec, mode=mode, context=context)
    elapsed = time.perf_counter() - started
    return result, context.metrics.snapshot(), elapsed


def main() -> int:
    inc, inc_metrics, inc_e2e = _run("incremental")
    full, full_metrics, full_e2e = _run("full")

    inc_epoch_ms = inc.wall_s / EPOCHS * 1e3
    full_epoch_ms = full.wall_s / EPOCHS * 1e3
    speedup = full_epoch_ms / inc_epoch_ms

    bit_exact = inc.to_json() == full.to_json()
    metrics_exact = inc_metrics == full_metrics

    verify, _, verify_e2e = _run("verify", epochs=VERIFY_EPOCHS)

    last = inc.epochs[-1]
    baseline = {
        "config": {
            "flows": FLOWS, "devices": DEVICES, "tenants": TENANTS,
            "epochs": EPOCHS, "churn": CHURN,
            "verify_epochs": VERIFY_EPOCHS,
        },
        "day": {
            "incremental_s": round(inc_e2e, 3),
            "full_s": round(full_e2e, 3),
            "incremental_epoch_ms": round(inc_epoch_ms, 3),
            "full_epoch_ms": round(full_epoch_ms, 3),
            "epoch_speedup": round(speedup, 2),
            "verify_s": round(verify_e2e, 3),
        },
        "exactness": {
            "results_bit_exact": bit_exact,
            "metrics_bit_exact": metrics_exact,
            "aggregate_digest": inc.aggregate_digest,
            "flow_digest": inc.flow_digest,
            "verify_digest_matches": (
                verify.aggregate_digest
                == run_digest_prefix(inc, VERIFY_EPOCHS)),
        },
        "final_epoch": {
            "flows": last.flows,
            "alive_devices": last.alive_devices,
            "p99_ns": round(last.p99_ns, 3),
            "utilization_mean": round(last.utilization_mean, 4),
            "slo_violations_total": inc.total_slo_violations,
        },
    }
    target = REPO_ROOT / "BENCH_orchestrator.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")

    failed = []
    if inc_e2e > DAY_BUDGET_S:
        failed.append(f"288-epoch day took {inc_e2e:.2f}s on the "
                      f"incremental path (budget {DAY_BUDGET_S:.0f}s)")
    if speedup < SPEEDUP_FLOOR:
        failed.append(f"incremental epoch stepping is only {speedup:.2f}x "
                      f"faster than the oracle (floor {SPEEDUP_FLOOR:.0f}x)")
    if not bit_exact:
        failed.append("incremental and full runs serialised differently")
    if not metrics_exact:
        failed.append("incremental and full metrics snapshots differ")
    for message in failed:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


def run_digest_prefix(result, epochs: int) -> str:
    """Recompute the running digest a shorter run of the same config
    would report, by replaying the shorter run outright.

    The digest folds per-epoch state, so a 96-epoch verify run cannot
    be compared against the 288-epoch digest directly; instead rerun
    incrementally at the shorter horizon (cheap) and compare digests.
    """
    short, _, _ = _run("incremental", epochs=epochs)
    return short.aggregate_digest


if __name__ == "__main__":
    raise SystemExit(main())
