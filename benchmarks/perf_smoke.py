"""Machine-readable runtime perf baseline (``make bench-smoke``).

Times a fixed Fig-17-style sweep three ways:

* ``plain`` -- no runtime context at all (the seed's hot path);
* ``context`` -- under a :class:`repro.runtime.SimContext` with tracing
  *off* (the everyday configuration; must cost ~nothing);
* ``traced`` -- tracing on (per-point spans plus the first packets of
  each point traced stage by stage).

Results land in ``BENCH_runtime.json`` at the repository root so later
PRs can track the trajectory; ``repro.cli report`` folds the file into
the reproduction report when present.

Run directly: ``PYTHONPATH=src python benchmarks/perf_smoke.py``
"""

import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.apps import all_applications  # noqa: E402
from repro.platform.catalog import device_by_name  # noqa: E402
from repro.runtime import SimContext  # noqa: E402

#: The fixed workload: one Fig-17a sweep.
APP_NAME = "sec-gateway"
DEVICE = "device-a"
PACKET_SIZES = (64, 128, 256, 512, 1024)
PACKETS_PER_POINT = 2_000
REPEATS = 5


def best_of(workload, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of calling ``workload()``, in seconds.

    Shared with ``benchmarks/sweep_smoke.py`` -- best-of timing is the
    right statistic for these CPU-bound, allocation-light workloads
    (the minimum is the least-noisy estimate of the true cost).
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def _app():
    return next(app for app in all_applications() if app.name == APP_NAME)


def _time_sweep(context_factory):
    """Best-of-``REPEATS`` wall time for one full sweep, in seconds."""
    app, device = _app(), device_by_name(DEVICE)
    best = float("inf")
    for _ in range(REPEATS):
        context = context_factory()
        start = time.perf_counter()
        app.measure(device, packet_sizes=PACKET_SIZES,
                    packets_per_point=PACKETS_PER_POINT, context=context)
        best = min(best, time.perf_counter() - start)
    return best


def run() -> dict:
    # One throwaway sweep so imports/caches warm up outside the window.
    _app().measure(device_by_name(DEVICE), packet_sizes=(64,),
                   packets_per_point=200)
    plain = _time_sweep(lambda: None)
    quiet = _time_sweep(lambda: SimContext(name="smoke", trace=False))
    traced_context = {}

    def _traced():
        traced_context["ctx"] = SimContext(name="smoke", trace=True)
        return traced_context["ctx"]

    traced = _time_sweep(_traced)
    trace = traced_context["ctx"].trace
    return {
        "workload": f"{APP_NAME}@{DEVICE} x{len(PACKET_SIZES)} sizes "
                    f"x{PACKETS_PER_POINT} packets",
        "plain_sweep_s": round(plain, 6),
        "context_sweep_s": round(quiet, 6),
        "traced_sweep_s": round(traced, 6),
        "context_overhead_fraction": round(quiet / plain - 1.0, 4),
        "traced_overhead_fraction": round(traced / plain - 1.0, 4),
        "trace_records": len(trace),
        "trace_span_names": len(trace.span_names()),
    }


def main() -> int:
    baseline = run()
    target = REPO_ROOT / "BENCH_runtime.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    budget = 0.10
    if baseline["context_overhead_fraction"] > budget:
        print(f"FAIL: quiet-context sweep is "
              f"{baseline['context_overhead_fraction']:.1%} slower than the "
              f"plain sweep (budget {budget:.0%})", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
