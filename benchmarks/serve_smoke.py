"""Warm-serving load benchmark (``make bench-serve``).

Measures the three claims the serving daemon exists to make, and fails
the build when any regresses:

* **warm >= 10x cold** -- a scenario served by the resident daemon must
  beat the cold one-shot CLI (interpreter boot, imports, cold caches)
  by at least 10x.  The daemon's whole point is amortising that bill.
* **coalescing executes once** -- concurrent identical requests must
  fold into a single execution (counters from the daemon's coalescer,
  efficiency >= 90% for a 16-way burst).
* **p99 holds under load** -- after a closed-loop load run, the
  daemon's own ``/slo`` endpoint (``default_serve_slos`` evaluated over
  the Prometheus-exposed ``serve.*`` metrics) must report zero
  violations: request p99 under 500 ms, no error blow-up, no shedding.
* **cold sweeps go through the fused planner** -- a cold-cache sweep
  request must batch its vector-eligible points in-process
  (``serve.sweep.fused_points`` counts them), un-fusable DES points
  must fan out to the one resident ProcessPool (``serve.pool.dispatches``
  grows across requests), and the daemon must never spawn a per-request
  pool (``serve.pool.request_spawns`` stays zero).

Results land in ``BENCH_serve.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.

Run directly: ``PYTHONPATH=src python benchmarks/serve_smoke.py``
"""

import json
import pathlib
import subprocess
import sys
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from perf_smoke import best_of  # noqa: E402

from repro.scenario import (  # noqa: E402
    Scenario,
    WorkloadSpec,
    save_scenario,
)
from repro.serve import (  # noqa: E402
    LoadGenerator,
    ServeClient,
    ServeConfig,
    serve_in_thread,
)

#: The scenario both sides execute for the warm-vs-cold comparison.
BASE = Scenario(kind="sweep", apps=("sec-gateway",), devices=("device-a",),
                workload=WorkloadSpec(packet_sizes=(64, 256),
                                      packets_per_point=200))

#: Distinct warm scenarios for the load phase (different cache entries,
#: so the daemon serves a working set, not one hot key).
LOAD_SCENARIOS = tuple(
    BASE.replace(workload=WorkloadSpec(packet_sizes=sizes,
                                       packets_per_point=200))
    for sizes in ((64,), (128,), (256,), (512,))
)

#: A deliberately slow, previously-unseen scenario for the coalescing
#: burst: the DES tier over many packets keeps the leader in flight
#: long enough that every concurrent identical request attaches to it.
COALESCE = Scenario(kind="sweep", apps=("sec-gateway",),
                    devices=("device-a",), engine="des",
                    workload=WorkloadSpec(packet_sizes=(96,),
                                          packets_per_point=150_000))

CLI_REPEATS = 2
WARM_SAMPLES = 50
BURST = 16
LOAD_REQUESTS = 1_800
LOAD_CONCURRENCY = 8

WARM_SPEEDUP_BUDGET = 10.0
COALESCE_EFFICIENCY_BUDGET = 0.9


def time_cold_cli(tmp_dir: pathlib.Path) -> float:
    """One-shot ``repro.cli sweep``: a fresh interpreter, cold caches."""
    scenario_path = tmp_dir / "bench-serve-scenario.json"
    save_scenario(BASE, str(scenario_path))
    out_path = tmp_dir / "bench-serve-out.json"

    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")

    def one_shot() -> None:
        subprocess.run(
            [sys.executable, "-m", "repro.cli", "sweep",
             "--scenario", str(scenario_path), "--json", str(out_path)],
            check=True, capture_output=True, cwd=str(REPO_ROOT), env=env,
        )

    return best_of(one_shot, CLI_REPEATS)


def time_warm_daemon(client: ServeClient) -> float:
    """Median warm-request latency once the resident cache holds BASE."""
    first = client.run_scenario(BASE, endpoint="sweep")
    assert first.status == 200, first.body
    samples = []
    for _ in range(WARM_SAMPLES):
        start = time.perf_counter()
        response = client.run_scenario(BASE, endpoint="sweep")
        samples.append(time.perf_counter() - start)
        assert response.status == 200, response.body
    return sorted(samples)[len(samples) // 2]


def coalescing_burst(handle, client: ServeClient) -> dict:
    """A BURST of identical never-seen requests must run exactly once.

    The leader goes first; once ``/stats`` shows its execution in
    flight (the DES-tier scenario keeps it there for hundreds of
    milliseconds), the remaining BURST-1 requests fire concurrently and
    must all attach to it rather than executing.
    """
    before = handle.daemon.coalescer.counters()
    responses = [None] * BURST

    def fire(index: int) -> None:
        responses[index] = client.run_scenario(COALESCE, endpoint="sweep")

    leader = threading.Thread(target=fire, args=(0,))
    leader.start()
    deadline = time.perf_counter() + 30.0
    while client.stats()["coalescer"]["inflight"] == 0:
        if time.perf_counter() > deadline:
            raise RuntimeError("leader execution never became visible")
        time.sleep(0.002)
    followers = [threading.Thread(target=fire, args=(index,))
                 for index in range(1, BURST)]
    for thread in followers:
        thread.start()
    leader.join()
    for thread in followers:
        thread.join()
    after = handle.daemon.coalescer.counters()

    statuses = sorted(r.status for r in responses)
    assert statuses == [200] * BURST, statuses
    bodies = {r.body for r in responses}
    assert len(bodies) == 1, "coalesced responses must be byte-identical"
    executions = after["executions"] - before["executions"]
    attached = after["attached"] - before["attached"]
    return {
        "burst": BURST,
        "executions": executions,
        "attached": attached,
        "efficiency": round(attached / BURST, 3),
    }


def fused_planner_stats(client: ServeClient) -> dict:
    """Planner provenance after the warm phase plus two DES requests.

    ``time_warm_daemon`` already pushed BASE through cold, so its
    vector-eligible points must show up as fused.  Two distinct
    DES-engine scenarios then force the per-point path twice: both must
    dispatch to the *same* resident pool, with zero per-request spawns.
    """
    des_scenarios = tuple(
        Scenario(kind="sweep", apps=("sec-gateway",), devices=("device-a",),
                 engine="des",
                 workload=WorkloadSpec(packet_sizes=sizes,
                                       packets_per_point=100))
        for sizes in ((80,), (112,))
    )
    for scenario in des_scenarios:
        response = client.run_scenario(scenario, endpoint="sweep")
        assert response.status == 200, response.body
    stats = client.stats()
    serve = stats["metrics"]["serve"]
    pool = serve.get("pool", {})
    return {
        "fused_points": serve["sweep"]["fused_points"],
        "fused_groups": serve["sweep"]["fused_groups"],
        "pooled_points": serve["sweep"].get("pooled_points", 0),
        "pool_dispatches": pool.get("dispatches", 0),
        "request_spawns": pool.get("request_spawns", 0),
        "pool_resident": stats["pool"]["resident"],
    }


def run() -> dict:
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        cold_cli_s = time_cold_cli(pathlib.Path(tmp))

    config = ServeConfig(port=0, exec_workers=4)
    with serve_in_thread(config) as handle:
        client = ServeClient(handle.host, handle.port, timeout=120.0)

        warm_request_s = time_warm_daemon(client)
        fused = fused_planner_stats(client)
        coalesce = coalescing_burst(handle, client)

        bodies = [json.dumps(s.to_json()).encode("utf-8")
                  for s in LOAD_SCENARIOS]
        generator = LoadGenerator(handle.host, handle.port, bodies,
                                  endpoint="run", timeout=120.0)
        load = generator.run(LOAD_REQUESTS, concurrency=LOAD_CONCURRENCY)
        slo = client.slo()
        stats = client.stats()

    return {
        "workload": f"{BASE.workload.packets_per_point} packets x "
                    f"{len(BASE.workload.packet_sizes)} sizes "
                    f"(cold CLI vs warm daemon), {BURST}-way coalescing "
                    f"burst, {LOAD_REQUESTS} load requests at "
                    f"concurrency {LOAD_CONCURRENCY}",
        "cold_cli_s": round(cold_cli_s, 6),
        "warm_request_s": round(warm_request_s, 6),
        "warm_speedup": round(cold_cli_s / warm_request_s, 3),
        "coalesce": coalesce,
        "fused": fused,
        "load": load.to_json(),
        "slo": slo,
        "cache_entries": stats["cache"]["entries"],
        "shed": stats["admission"]["shed"],
        "quota_rejections": stats["admission"]["quota_rejections"],
    }


def main() -> int:
    baseline = run()
    target = REPO_ROOT / "BENCH_serve.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    failed = False
    if baseline["warm_speedup"] < WARM_SPEEDUP_BUDGET:
        print(f"FAIL: warm daemon request only "
              f"{baseline['warm_speedup']:.2f}x faster than the cold "
              f"one-shot CLI (budget {WARM_SPEEDUP_BUDGET:.0f}x)",
              file=sys.stderr)
        failed = True
    if baseline["coalesce"]["efficiency"] < COALESCE_EFFICIENCY_BUDGET:
        print(f"FAIL: coalescing folded only "
              f"{baseline['coalesce']['attached']} of {BURST} concurrent "
              f"identical requests "
              f"(efficiency {baseline['coalesce']['efficiency']:.2f}, "
              f"budget {COALESCE_EFFICIENCY_BUDGET:.2f})", file=sys.stderr)
        failed = True
    fused = baseline["fused"]
    if fused["fused_points"] < 1:
        print("FAIL: cold-cache daemon sweep never went through the "
              "fused planner (serve.sweep.fused_points == 0)",
              file=sys.stderr)
        failed = True
    if fused["pool_dispatches"] < 2:
        print(f"FAIL: resident pool dispatched only "
              f"{fused['pool_dispatches']} times across two DES-engine "
              f"requests (expected >= 2)", file=sys.stderr)
        failed = True
    if fused["request_spawns"] != 0 or not fused["pool_resident"]:
        print(f"FAIL: daemon spawned {fused['request_spawns']} per-request "
              f"pools (resident={fused['pool_resident']}); sweeps must "
              f"reuse the one resident ProcessPool", file=sys.stderr)
        failed = True
    if baseline["slo"]["exit_code"] != 0:
        print(f"FAIL: serving SLOs violated under load: "
              f"{baseline['slo']['violations']}", file=sys.stderr)
        failed = True
    if baseline["load"]["ok"] != baseline["load"]["sent"]:
        print(f"FAIL: {baseline['load']['sent'] - baseline['load']['ok']} "
              f"of {baseline['load']['sent']} load requests did not "
              f"return 200: {baseline['load']['status_counts']}",
              file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
