"""Sweep-runner perf baseline (``make bench-sweep``).

Times one Fig-17/18-style multi-app x multi-device sweep four ways:

* ``serial_seed`` -- the seed's serial hot path: a fresh chain per
  point driven through the pinned
  :func:`repro.sim.pipeline.run_packet_sweep_reference` loop (the
  per-Transaction implementation preserved verbatim for exactly this
  comparison);
* ``parallel`` -- the :class:`repro.runtime.sweep.SweepRunner` with 4
  workers, a cold cache, and the fused planner disabled
  (``fuse=False``): every point fans out to the ProcessPool;
* ``fused`` -- the same runner with the fused planner on (the default):
  cache-miss points batch through the in-process vector kernel, no
  pool, no pickling;
* ``cached`` -- the runner re-run against the warm cache.

Results land in ``BENCH_sweep.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.  The
script exits non-zero when the parallel run fails its >= 2.5x speedup
budget against the serial seed path, the fused run fails its >= 3x
budget against the per-point parallel run, the fused results are not
byte-identical to the per-point results, or the warm re-run fails its
>= 10x budget against the cold run.

Run directly: ``PYTHONPATH=src python benchmarks/sweep_smoke.py``
"""

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from perf_smoke import best_of  # noqa: E402

from repro.apps import application_by_name  # noqa: E402
from repro.platform.catalog import device_by_name  # noqa: E402
from repro.runtime.sweep import (  # noqa: E402
    SweepCache,
    SweepPlan,
    SweepRunner,
)
from repro.sim.pipeline import run_packet_sweep_reference  # noqa: E402

#: The fixed workload: the three BITW apps of Figure 17 across three
#: catalog devices that can host all of them, over the paper's
#: packet-size axis.
APPS = ("sec-gateway", "layer4-lb", "host-network")
DEVICES = ("device-a", "device-b", "device-d")
PACKET_SIZES = (64, 128, 256, 512, 1024)
PACKETS_PER_POINT = 4_000
WORKERS = 4
REPEATS = 2

PLAN = SweepPlan(apps=APPS, devices=DEVICES, packet_sizes=PACKET_SIZES,
                 packets_per_point=PACKETS_PER_POINT)


def serial_seed_sweep() -> list:
    """The pre-runner shape: every point serially, seed-style.

    Mirrors what ``CloudApplication.measure`` did before the overhaul --
    build the chain, then push one Transaction per packet through the
    reference loop.  No pool, no cache, no batch fast path.
    """
    results = []
    for app_name in APPS:
        app = application_by_name(app_name)
        for device_name in DEVICES:
            device = device_by_name(device_name)
            shell = app.tailored_shell(device)
            for size in PACKET_SIZES:
                chain = app.datapath(shell, True)
                results.append(run_packet_sweep_reference(
                    chain, packet_size_bytes=size,
                    packet_count=PACKETS_PER_POINT,
                ))
    return results


def run() -> dict:
    # Warm imports/catalog outside every timing window.
    serial_seed_sweep_points = len(PLAN)
    cache = SweepCache()
    perpoint = SweepRunner(PLAN, workers=WORKERS, cache=cache, fuse=False)
    fused = SweepRunner(PLAN, workers=WORKERS, cache=cache, fuse=True)

    serial_s = best_of(serial_seed_sweep, REPEATS)

    def cold_perpoint():
        cache.clear()
        perpoint.run()

    cold_s = best_of(cold_perpoint, REPEATS)

    def cold_fused():
        cache.clear()
        fused.run()

    fused_s = best_of(cold_fused, REPEATS)

    # Exactness spot-check: the fused planner must be invisible in the
    # output -- byte-identical results from both cold paths.
    cache.clear()
    perpoint_result = perpoint.run()
    cache.clear()
    fused_result = fused.run()
    # Every *executed* point of this all-analytic grid must fuse (the
    # remainder dedup to shared content keys, not the pool).
    assert fused_result.pooled_points == 0 and fused_result.fused_points > 0
    exact = (json.dumps(fused_result.to_json(), sort_keys=True)
             == json.dumps(perpoint_result.to_json(), sort_keys=True))

    # Populate once, then time warm re-runs only.
    fused.run()
    warm_s = best_of(fused.run, REPEATS)

    result = fused.run()
    assert result.cache_hits == len(result), "warm run must be all hits"

    return {
        "workload": f"{len(APPS)} apps x {len(DEVICES)} devices x "
                    f"{len(PACKET_SIZES)} sizes x {PACKETS_PER_POINT} packets "
                    f"({serial_seed_sweep_points} points)",
        "workers": WORKERS,
        "serial_seed_s": round(serial_s, 6),
        "parallel_cold_s": round(cold_s, 6),
        "fused_cold_s": round(fused_s, 6),
        "cached_warm_s": round(warm_s, 6),
        "parallel_speedup": round(serial_s / cold_s, 3),
        "fused_speedup": round(cold_s / fused_s, 3),
        "fused_exact": exact,
        "fused_groups": fused_result.fused_groups,
        "cache_speedup": round(fused_s / warm_s, 3),
        "cache_entries": len(cache),
    }


def main() -> int:
    baseline = run()
    target = REPO_ROOT / "BENCH_sweep.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    failed = False
    if baseline["parallel_speedup"] < 2.5:
        print(f"FAIL: parallel sweep only {baseline['parallel_speedup']:.2f}x "
              f"faster than the serial seed path (budget 2.5x)",
              file=sys.stderr)
        failed = True
    if baseline["fused_speedup"] < 3.0:
        print(f"FAIL: fused sweep only {baseline['fused_speedup']:.2f}x "
              f"faster than the per-point parallel path (budget 3x)",
              file=sys.stderr)
        failed = True
    if not baseline["fused_exact"]:
        print("FAIL: fused results are not byte-identical to per-point",
              file=sys.stderr)
        failed = True
    if baseline["cache_speedup"] < 10.0:
        print(f"FAIL: warm-cache re-run only {baseline['cache_speedup']:.2f}x "
              f"faster than the cold run (budget 10x)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
