"""Sweep-runner perf baseline (``make bench-sweep``).

Times one Fig-17/18-style multi-app x multi-device sweep three ways:

* ``serial_seed`` -- the seed's serial hot path: a fresh chain per
  point driven through the pinned
  :func:`repro.sim.pipeline.run_packet_sweep_reference` loop (the
  per-Transaction implementation preserved verbatim for exactly this
  comparison);
* ``parallel`` -- the :class:`repro.runtime.sweep.SweepRunner` with 4
  workers and a cold cache;
* ``cached`` -- the same runner re-run against the warm cache.

Results land in ``BENCH_sweep.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.  The
script exits non-zero when the parallel run fails its >= 2.5x speedup
budget against the serial seed path or the warm re-run fails its >= 10x
budget against the cold run.

Run directly: ``PYTHONPATH=src python benchmarks/sweep_smoke.py``
"""

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from perf_smoke import best_of  # noqa: E402

from repro.apps import application_by_name  # noqa: E402
from repro.platform.catalog import device_by_name  # noqa: E402
from repro.runtime.sweep import (  # noqa: E402
    SweepCache,
    SweepPlan,
    SweepRunner,
)
from repro.sim.pipeline import run_packet_sweep_reference  # noqa: E402

#: The fixed workload: the three BITW apps of Figure 17 across three
#: catalog devices that can host all of them, over the paper's
#: packet-size axis.
APPS = ("sec-gateway", "layer4-lb", "host-network")
DEVICES = ("device-a", "device-b", "device-d")
PACKET_SIZES = (64, 128, 256, 512, 1024)
PACKETS_PER_POINT = 4_000
WORKERS = 4
REPEATS = 2

PLAN = SweepPlan(apps=APPS, devices=DEVICES, packet_sizes=PACKET_SIZES,
                 packets_per_point=PACKETS_PER_POINT)


def serial_seed_sweep() -> list:
    """The pre-runner shape: every point serially, seed-style.

    Mirrors what ``CloudApplication.measure`` did before the overhaul --
    build the chain, then push one Transaction per packet through the
    reference loop.  No pool, no cache, no batch fast path.
    """
    results = []
    for app_name in APPS:
        app = application_by_name(app_name)
        for device_name in DEVICES:
            device = device_by_name(device_name)
            shell = app.tailored_shell(device)
            for size in PACKET_SIZES:
                chain = app.datapath(shell, True)
                results.append(run_packet_sweep_reference(
                    chain, packet_size_bytes=size,
                    packet_count=PACKETS_PER_POINT,
                ))
    return results


def run() -> dict:
    # Warm imports/catalog outside every timing window.
    serial_seed_sweep_points = len(PLAN)
    cache = SweepCache()
    runner = SweepRunner(PLAN, workers=WORKERS, cache=cache)

    serial_s = best_of(serial_seed_sweep, REPEATS)

    def cold():
        cache.clear()
        runner.run()

    cold_s = best_of(cold, REPEATS)

    # Populate once, then time warm re-runs only.
    runner.run()
    warm_s = best_of(runner.run, REPEATS)

    result = runner.run()
    assert result.cache_hits == len(result), "warm run must be all hits"

    return {
        "workload": f"{len(APPS)} apps x {len(DEVICES)} devices x "
                    f"{len(PACKET_SIZES)} sizes x {PACKETS_PER_POINT} packets "
                    f"({serial_seed_sweep_points} points)",
        "workers": WORKERS,
        "serial_seed_s": round(serial_s, 6),
        "parallel_cold_s": round(cold_s, 6),
        "cached_warm_s": round(warm_s, 6),
        "parallel_speedup": round(serial_s / cold_s, 3),
        "cache_speedup": round(cold_s / warm_s, 3),
        "cache_entries": len(cache),
    }


def main() -> int:
    baseline = run()
    target = REPO_ROOT / "BENCH_sweep.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    failed = False
    if baseline["parallel_speedup"] < 2.5:
        print(f"FAIL: parallel sweep only {baseline['parallel_speedup']:.2f}x "
              f"faster than the serial seed path (budget 2.5x)",
              file=sys.stderr)
        failed = True
    if baseline["cache_speedup"] < 10.0:
        print(f"FAIL: warm-cache re-run only {baseline['cache_speedup']:.2f}x "
              f"faster than the cold run (budget 10x)", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
