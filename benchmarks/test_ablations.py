"""Ablations: what each design choice contributes.

Not paper figures -- these isolate the mechanisms behind them:

* address interleaving ON/OFF (Memory RBB Ex-function);
* hot cache ON/OFF (Memory RBB Ex-function);
* active-queue scheduling vs a naive full-array sweep (Host RBB);
* no tailoring vs module-level only vs hierarchical (shell);
* CDC bandwidth matching (S x M = R x U) vs a mismatched crossing.
"""

from repro.analysis.tables import format_table
from repro.core.rbb.cdc import CdcEndpoint, ParamClockDomainCrossing
from repro.core.rbb.host import DmaDescriptor, MultiQueueScheduler
from repro.core.rbb.memory import MemoryAccess, MemoryRbb
from repro.core.role import Architecture, Role, RoleDemands
from repro.core.shell import build_unified_shell
from repro.core.tailoring import HierarchicalTailor
from repro.hw.ip.ddr import DDR4_2400
from repro.platform.catalog import DEVICE_A
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import PipelineChain, PipelineStage, run_packet_sweep


def _interleaving_ablation():
    stride = DDR4_2400.row_bytes
    pattern = [MemoryAccess(address=index * stride) for index in range(3_000)]
    rows = []
    for enabled in (True, False):
        rbb = MemoryRbb()
        rbb.ex_functions["hot_cache"].enabled = False
        rbb.ex_functions["address_interleaving"].enabled = enabled
        result = rbb.run_accesses(list(pattern))
        rows.append(("interleaving " + ("on" if enabled else "off"),
                     round(result.bandwidth_gbps, 1)))
    return rows


def test_ablation_address_interleaving(benchmark, emit):
    rows = benchmark(_interleaving_ablation)
    emit("ablation_interleaving", format_table(
        ["configuration", "row-stride bandwidth Gbps"], rows,
        title="Ablation -- address interleaving on strided traffic",
    ))
    on_gbps = rows[0][1]
    off_gbps = rows[1][1]
    assert on_gbps > 3 * off_gbps   # bank parallelism vs tRC serialisation


def _hot_cache_ablation():
    pattern = [MemoryAccess(address=(index % 8) * 64) for index in range(3_000)]
    rows = []
    for enabled in (True, False):
        rbb = MemoryRbb()
        rbb.ex_functions["hot_cache"].enabled = enabled
        result = rbb.run_accesses(list(pattern))
        rows.append(("hot cache " + ("on" if enabled else "off"),
                     result.cache_hits, result.total_ps // 1_000))
    return rows


def test_ablation_hot_cache(benchmark, emit):
    rows = benchmark(_hot_cache_ablation)
    emit("ablation_hot_cache", format_table(
        ["configuration", "cache hits", "total ns"], rows,
        title="Ablation -- hot cache on a reused working set",
    ))
    cached_ns = rows[0][2]
    uncached_ns = rows[1][2]
    assert rows[0][1] > 2_900
    assert cached_ns < uncached_ns


def _naive_schedule_all(queues, descriptors):
    """The strawman: sweep every queue slot per scheduling decision."""
    import collections

    storage = [collections.deque() for _ in range(queues)]
    for descriptor in descriptors:
        storage[descriptor.queue_id].append(descriptor)
    visits = 0
    scheduled = 0
    remaining = len(descriptors)
    while remaining:
        for queue in storage:
            visits += 1
            if queue:
                queue.popleft()
                scheduled += 1
                remaining -= 1
    return visits, scheduled


def _scheduler_ablation():
    descriptors = [DmaDescriptor(queue_id=7, size_bytes=64) for _ in range(64)]
    active = MultiQueueScheduler(tenants=1)
    for descriptor in descriptors:
        active.submit(descriptor)
    active.drain()
    naive_visits, naive_scheduled = _naive_schedule_all(1_024, descriptors)
    return [
        ("active-list scheduler", active.queue_visits, active.scheduled),
        ("naive full sweep", naive_visits, naive_scheduled),
    ]


def test_ablation_active_scheduling(benchmark, emit):
    rows = benchmark(_scheduler_ablation)
    emit("ablation_active_scheduling", format_table(
        ["scheduler", "queue visits", "descriptors moved"], rows,
        title="Ablation -- active-queue scheduling (paper: 'only schedules "
              "active queues to improve the scheduling rate')",
    ))
    active_visits = rows[0][1]
    naive_visits = rows[1][1]
    assert rows[0][2] == rows[1][2] == 64
    assert active_visits * 100 < naive_visits


def _tailoring_ablation():
    role = Role("ablation", Architecture.BUMP_IN_THE_WIRE,
                RoleDemands(network_gbps=100.0, host_gbps=16.0, bulk_dma=False))
    unified = build_unified_shell(DEVICE_A)
    tailored = HierarchicalTailor(unified).tailor(role)
    # Module-level only: same RBB set, but every Ex-function kept and no
    # property split (the role faces the native config inventory).
    module_only_resources = tailored.resources()
    for rbb in tailored.rbbs.values():
        for function in rbb.ex_functions.values():
            if not function.enabled:
                module_only_resources = module_only_resources + function.resources
    return [
        ("no tailoring (unified)", unified.resources().lut,
         unified.native_config_item_count()),
        ("module-level only", module_only_resources.lut,
         tailored.native_config_item_count()),
        ("hierarchical", tailored.resources().lut,
         tailored.role_config_item_count()),
    ]


def test_ablation_tailoring_levels(benchmark, emit):
    rows = benchmark(_tailoring_ablation)
    emit("ablation_tailoring_levels", format_table(
        ["tailoring level", "shell LUTs", "role-facing config items"], rows,
        title="Ablation -- tailoring levels",
    ))
    luts = [row[1] for row in rows]
    configs = [row[2] for row in rows]
    assert luts[0] > luts[1] > luts[2]
    assert configs[0] > configs[1] > configs[2]


def _cdc_ablation():
    source = PipelineStage("rbb", ClockDomain("s", 500.0), 512, latency_cycles=4)
    rows = []
    for label, user_width in (("matched (S*M = R*U)", 1_024),
                              ("mismatched (half width)", 512)):
        crossing = ParamClockDomainCrossing(
            "cdc",
            CdcEndpoint(source.clock, 512),
            CdcEndpoint(ClockDomain("user", 250.0), user_width),
        )
        chain = PipelineChain("c", [
            PipelineStage("rbb", ClockDomain("s2", 500.0), 512, latency_cycles=4),
            crossing.stage(),
        ])
        throughput, _latency = run_packet_sweep(chain, 1_024, 800)
        rows.append((label, round(throughput / 1e9, 1), crossing.is_lossless))
    return rows


def test_ablation_cdc_matching(benchmark, emit):
    rows = benchmark(_cdc_ablation)
    emit("ablation_cdc_matching", format_table(
        ["crossing", "throughput Gbps", "lossless?"], rows,
        title="Ablation -- the S x M = R x U selection rule",
    ))
    matched, mismatched = rows
    assert matched[2] is True and mismatched[2] is False
    assert matched[1] > 1.8 * mismatched[1]


def _power_rows():
    from repro.apps import all_applications
    from repro.core.shell import build_unified_shell
    from repro.metrics.power import dynamic_power_mw

    unified = build_unified_shell(DEVICE_A).resources()
    rows = [("unified-shell", round(dynamic_power_mw(unified) / 1_000, 2), "-")]
    for app in all_applications():
        tailored = app.tailored_shell(DEVICE_A).resources()
        saving = dynamic_power_mw(unified) - dynamic_power_mw(tailored)
        rows.append((f"{app.name}-shell",
                     round(dynamic_power_mw(tailored) / 1_000, 2),
                     round(saving / 1_000, 2)))
    return rows


def test_ablation_tailoring_power(benchmark, emit):
    rows = benchmark(_power_rows)
    emit("ablation_tailoring_power", format_table(
        ["shell", "dynamic power W", "saving W"], rows,
        title="Ablation -- tailoring's dynamic-power saving (paper section 5.4)",
    ))
    savings = [row[2] for row in rows[1:]]
    assert all(saving > 0 for saving in savings)
