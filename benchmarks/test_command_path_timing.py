"""Extension: command-path round-trip timing (walkthrough of Figure 8).

Measures the discrete-event round trip of the command interface --
driver -> control DMA queue -> unified control kernel -> response --
and the queueing profile under bursts.  Quantifies the claim that the
separate control queue keeps control latency bounded and data-load
independent.
"""

from repro.analysis.tables import format_table
from repro.core.command.timing import CommandPathSimulator, burst_latency_profile


def _rtt_rows():
    path = CommandPathSimulator()
    rows = []
    for accesses, label in ((1, "status read (1 reg)"),
                            (22, "module init (22 regs)"),
                            (118, "network init (118 regs)")):
        rows.append((label, round(path.round_trip_us(accesses), 2)))
    return rows


def test_command_round_trip(benchmark, emit):
    rows = benchmark(_rtt_rows)
    emit("ext_command_rtt", format_table(
        ["command", "round trip us"], rows,
        title="Extension -- command round-trip latency (idle control path)",
    ))
    rtts = [row[1] for row in rows]
    assert rtts == sorted(rtts)
    assert rtts[0] < 2.0      # microsecond-scale control plane
    assert rtts[-1] < 10.0


def _burst_rows():
    rows = []
    for burst in (1, 8, 32):
        profile = burst_latency_profile(burst_size=burst)
        rows.append((burst, round(profile["min_us"], 2), round(profile["mean_us"], 2),
                     round(profile["max_us"], 2)))
    return rows


def test_command_burst_queueing(benchmark, emit):
    rows = benchmark(_burst_rows)
    emit("ext_command_burst", format_table(
        ["burst size", "min us", "mean us", "max us"], rows,
        title="Extension -- control-queue burst profile "
              "(sequential soft-core execution)",
    ))
    means = [row[2] for row in rows]
    assert means == sorted(means)
    mins = [row[1] for row in rows]
    assert max(mins) - min(mins) < 0.01   # first command never queues
