"""Extensions: buffer sizing (event-driven) and tenant fairness (DRR).

* Buffer-depth sweep -- how deep inter-stage FIFOs must be before a
  64-packet burst stops losing packets (what the Network RBB's queue
  monitoring is for);
* DRR fairness -- per-tenant byte shares track configured weights under
  contention while staying work-conserving.
"""

from repro.analysis.tables import format_table
from repro.core.rbb.host import DmaDescriptor
from repro.core.rbb.scheduling import DeficitRoundRobinScheduler
from repro.sim.clock import ClockDomain
from repro.sim.des_pipeline import DesPipeline, packet_train
from repro.sim.pipeline import PipelineStage


def _buffer_sweep():
    rows = []
    for depth in (4, 8, 16, 32, 64):
        stage = PipelineStage("mac", ClockDomain("mac", 100.0), 512, latency_cycles=6)
        pipeline = DesPipeline([stage], fifo_depth=depth)
        result = pipeline.run(packet_train(64, 512, gap_ps=1, burst=64))
        rows.append((depth, result.delivered, result.dropped,
                     round(result.loss_fraction * 100, 1)))
    return rows


def test_buffer_depth_sweep(benchmark, emit):
    rows = benchmark(_buffer_sweep)
    emit("ext_buffer_sweep", format_table(
        ["FIFO depth", "delivered", "dropped", "loss %"], rows,
        title="Extension -- ingress buffer sizing under a 64-packet burst",
    ))
    losses = [row[3] for row in rows]
    assert losses == sorted(losses, reverse=True)   # deeper -> less loss
    assert losses[0] > 0.0                          # shallow buffers do lose
    assert losses[-1] == 0.0                        # 64-deep absorbs the burst


def _fairness_rows():
    weights = {0: 1, 1: 2, 2: 4}
    scheduler = DeficitRoundRobinScheduler(weights)
    for tenant in weights:
        for _ in range(3_000):
            scheduler.submit(DmaDescriptor(queue_id=0, size_bytes=1_024,
                                           tenant_id=tenant))
    for _ in range(40):
        scheduler.schedule_round()
    shares = scheduler.service_shares()
    total_weight = sum(weights.values())
    return [
        (tenant, weights[tenant], round(shares[tenant], 3),
         round(weights[tenant] / total_weight, 3))
        for tenant in sorted(weights)
    ]


def test_drr_fairness(benchmark, emit):
    rows = benchmark(_fairness_rows)
    emit("ext_drr_fairness", format_table(
        ["tenant", "weight", "measured share", "ideal share"], rows,
        title="Extension -- DRR tenant fairness under contention",
    ))
    for _tenant, _weight, measured, ideal in rows:
        assert abs(measured - ideal) < 0.05
