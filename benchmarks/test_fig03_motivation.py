"""Figure 3: the heterogeneity-motivation measurements.

* 3a -- shells occupy the majority (66-87%) of handcraft FPGA logic;
* 3b -- vendor-specific IPs differ by tens-to-hundreds of interface and
  configuration properties;
* 3c -- new FPGA device types arrive yearly while the fleet grows;
* 3d -- module-initialization register programs differ across shells.
"""

from repro.analysis.tables import format_table
from repro.apps import all_applications
from repro.hw.ip import (
    intel_emif_ddr4,
    intel_etile_100g,
    intel_ptile_mcdma,
    xilinx_cmac_100g,
    xilinx_ddr4_mig,
    xilinx_qdma,
)
from repro.hw.registers import modification_cost
from repro.metrics.configs import config_disparity, interface_disparity
from repro.metrics.loc import shell_fraction
from repro.platform.catalog import DEVICE_A
from repro.platform.fleet import production_fleet


def _fig03a_rows():
    rows = []
    for app in all_applications():
        shell_loc = app.tailored_shell(DEVICE_A).loc()
        fraction = shell_fraction(shell_loc, app.role().loc)
        rows.append((app.name, round(fraction, 2), round(1 - fraction, 2)))
    return rows


def test_fig03a_shell_role_workload(benchmark, emit):
    rows = benchmark(_fig03a_rows)
    emit("fig03a_shell_role_workload", format_table(
        ["application", "shell fraction", "role fraction"], rows,
        title="Fig 3a -- handcraft development workload split (paper: shell 0.66-0.87)",
    ))
    fractions = [row[1] for row in rows]
    assert all(0.60 <= fraction <= 0.90 for fraction in fractions)
    assert max(fractions) - min(fractions) > 0.1  # real spread across apps


def _fig03b_rows():
    pairs = [
        ("MAC", xilinx_cmac_100g(), intel_etile_100g()),
        ("DMA", xilinx_qdma(), intel_ptile_mcdma()),
        ("DDR", xilinx_ddr4_mig(), intel_emif_ddr4()),
    ]
    rows = []
    for name, xilinx_ip, intel_ip in pairs:
        rows.append((
            name,
            interface_disparity(xilinx_ip.interfaces, intel_ip.interfaces),
            config_disparity(xilinx_ip.config_params, intel_ip.config_params),
        ))
    return rows


def test_fig03b_vendor_differences(benchmark, emit):
    rows = benchmark(_fig03b_rows)
    emit("fig03b_vendor_differences", format_table(
        ["vendor IP pair", "interface disparity", "config disparity"], rows,
        title="Fig 3b -- Xilinx vs Intel IP property disparities (paper: tens to hundreds)",
    ))
    for _name, interfaces, configs in rows:
        assert 10 <= interfaces <= 400
        assert 10 <= configs <= 400


def test_fig03c_fleet_growth(benchmark, emit):
    fleet = production_fleet()
    rows = benchmark(fleet.growth_table)
    emit("fig03c_fleet_growth", format_table(
        ["year", "new device types", "total active FPGAs"], rows,
        title="Fig 3c -- heterogeneous fleet growth (paper: grows every year)",
    ))
    totals = [row[2] for row in rows]
    assert totals == sorted(totals)
    assert all(row[1] >= 1 for row in rows)


def _fig03d_cost():
    shell_a_init = xilinx_cmac_100g().init_sequence()   # poll-style
    shell_b_init = intel_etile_100g().init_sequence()   # auto-init style
    return shell_a_init, shell_b_init, modification_cost(shell_a_init, shell_b_init)


def test_fig03d_init_sequences(benchmark, emit):
    shell_a, shell_b, cost = benchmark(_fig03d_cost)
    emit("fig03d_init_sequences", format_table(
        ["shell", "style", "init operations"],
        [
            ("shell A (Xilinx CMAC)", "poll status, then program", len(shell_a)),
            ("shell B (Intel E-tile)", "automation; write initial values", len(shell_b)),
            ("migration cost (ops touched)", "", cost),
        ],
        title="Fig 3d -- initialization differs across shells",
    ))
    assert len(shell_a) > 3 * len(shell_b)   # polling shells are much longer
    assert cost > 0
