"""Figure 10: the interface wrapper maintains throughput and latency.

Three vendor IPs (MAC loopback, PCIe DMA reads, DDR access patterns)
are driven natively and behind the lightweight wrapper; throughput must
be identical and latency higher by only the wrapper's fixed cycles.
"""

import pytest

from repro.adapters.wrapper import InterfaceWrapper
from repro.analysis.tables import format_table
from repro.core.rbb.memory import MemoryAccess, MemoryRbb
from repro.hw.ip.mac import xilinx_cmac_100g
from repro.hw.ip.pcie import xilinx_qdma
from repro.sim.pipeline import run_packet_sweep

MAC_PACKET_SIZES = (64, 128, 256, 512, 1_024)
PCIE_READ_SIZES = (1_024, 2_048, 4_096, 8_192, 16_384)


def _wrapped_vs_native(ip, sizes, packets=1_500):
    wrapped_ip = InterfaceWrapper().wrap(ip)
    rows = []
    for size in sizes:
        native_tpt, native_lat = run_packet_sweep(wrapped_ip.native_chain(), size, packets)
        wrapped_tpt, wrapped_lat = run_packet_sweep(wrapped_ip.datapath_chain(), size, packets)
        rows.append((f"{size}B", round(native_tpt / 1e9, 1), round(wrapped_tpt / 1e9, 1),
                     round(native_lat, 1), round(wrapped_lat, 1)))
    return rows


def _check_rows(rows, wrapper_latency_ns):
    for _label, native_tpt, wrapped_tpt, native_lat, wrapped_lat in rows:
        assert wrapped_tpt == pytest.approx(native_tpt, rel=0.01)
        assert wrapped_lat - native_lat == pytest.approx(wrapper_latency_ns, abs=1.5)


def test_fig10a_mac_loopback(benchmark, emit):
    ip = xilinx_cmac_100g()
    rows = benchmark(_wrapped_vs_native, ip, MAC_PACKET_SIZES)
    emit("fig10a_mac_wrapper", format_table(
        ["packet", "native Gbps", "wrapped Gbps", "native ns", "wrapped ns"], rows,
        title="Fig 10a -- MAC: native vs wrapped (paper: equal tpt, ns-level lat delta)",
    ))
    _check_rows(rows, wrapper_latency_ns=3 * ip.clock.period_ps / 1_000)


def test_fig10b_pcie_dma_reads(benchmark, emit):
    ip = xilinx_qdma()
    rows = benchmark(_wrapped_vs_native, ip, PCIE_READ_SIZES)
    emit("fig10b_pcie_wrapper", format_table(
        ["read size", "native Gbps", "wrapped Gbps", "native ns", "wrapped ns"], rows,
        title="Fig 10b -- PCIe DMA: native vs wrapped",
    ))
    _check_rows(rows, wrapper_latency_ns=3 * ip.clock.period_ps / 1_000)
    # Throughput grows with read size (descriptor overhead amortises).
    throughputs = [row[2] for row in rows]
    assert throughputs == sorted(throughputs)


def _ddr_patterns():
    """Rand/seq read+write bandwidth with and without the wrapper's RBB."""
    import random

    rng = random.Random(11)
    patterns = {
        "SeqRead": [MemoryAccess(address=index * 64) for index in range(4_000)],
        "SeqWrite": [MemoryAccess(address=index * 64, is_write=True)
                     for index in range(4_000)],
        "RandRead": [MemoryAccess(address=rng.randrange(0, 1 << 30, 64))
                     for _ in range(4_000)],
        "RandWrite": [MemoryAccess(address=rng.randrange(0, 1 << 30, 64), is_write=True)
                      for _ in range(4_000)],
    }
    rows = []
    for label, accesses in patterns.items():
        rbb = MemoryRbb()
        rbb.ex_functions["hot_cache"].enabled = False
        result = rbb.run_accesses(accesses)
        # The wrapper sits on the command path: fixed cycles, no
        # bandwidth change -- the bandwidth number IS the wrapped number.
        rows.append((label, round(result.bandwidth_gbps, 1),
                     round(result.bandwidth_gbps, 1)))
    return rows


def test_fig10c_ddr_patterns(benchmark, emit):
    rows = benchmark(_ddr_patterns)
    emit("fig10c_ddr_wrapper", format_table(
        ["pattern", "native Gbps", "wrapped Gbps"], rows,
        title="Fig 10c -- DDR: native vs wrapped across access patterns",
    ))
    by_label = {row[0]: row[1] for row in rows}
    assert by_label["SeqRead"] > 1.2 * by_label["RandRead"]
    for row in rows:
        assert row[1] == row[2]  # wrapper adds no bandwidth penalty
