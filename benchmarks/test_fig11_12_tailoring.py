"""Figures 11 & 12: what hierarchical shell tailoring buys.

* Fig 11 -- tailored application shells consume 3-25.1% fewer resources
  than the one-size-fits-all unified shell (device A);
* Fig 12 -- property-level tailoring cuts the configuration items a
  role must set by 8.8-19.8x.
"""

from repro.analysis.tables import format_percent, format_table
from repro.apps import all_applications
from repro.core.shell import build_unified_shell
from repro.metrics.resources import reduction_fraction, utilisation_percent
from repro.platform.catalog import DEVICE_A

#: The applications Figure 11 plots against the unified shell.
FIG11_APPS = ("sec-gateway", "layer4-lb", "retrieval")


def _fig11_rows():
    unified = build_unified_shell(DEVICE_A)
    unified_util = utilisation_percent(unified.resources(), DEVICE_A.budget)
    rows = [("unified-shell", round(unified_util["lut"], 1),
             round(unified_util["ff"], 1), round(unified_util["bram_36k"], 1), "-")]
    reductions = {}
    for app in all_applications():
        if app.name not in FIG11_APPS:
            continue
        tailored = app.tailored_shell(DEVICE_A)
        util = utilisation_percent(tailored.resources(), DEVICE_A.budget)
        reduction = reduction_fraction(unified.resources(), tailored.resources())["lut"]
        reductions[app.name] = reduction
        rows.append((f"{app.name}-shell", round(util["lut"], 1), round(util["ff"], 1),
                     round(util["bram_36k"], 1), format_percent(reduction)))
    return rows, reductions


def test_fig11_tailoring_resources(benchmark, emit):
    rows, reductions = benchmark(_fig11_rows)
    emit("fig11_tailoring_resources", format_table(
        ["shell", "LUT %", "REG %", "BRAM %", "LUT reduction"], rows,
        title="Fig 11 -- shell resource occupancy on device A (paper: 3-25.1% reduction)",
    ))
    assert 0.03 <= min(reductions.values())
    assert max(reductions.values()) <= 0.27
    # Sec-Gateway saves the most (drops the entire memory subsystem).
    assert max(reductions, key=reductions.get) == "sec-gateway"


def _fig12_rows():
    rows = []
    factors = []
    for app in all_applications():
        shell = app.tailored_shell(DEVICE_A)
        factor = shell.config_simplification_factor()
        factors.append(factor)
        rows.append((app.name, shell.native_config_item_count(),
                     shell.role_config_item_count(), round(factor, 1)))
    return rows, factors


def test_fig12_tailoring_configs(benchmark, emit):
    rows, factors = benchmark(_fig12_rows)
    emit("fig12_tailoring_configs", format_table(
        ["application", "native items", "role-oriented items", "reduction x"], rows,
        title="Fig 12 -- role configuration items (paper: 8.8-19.8x fewer)",
    ))
    assert min(factors) >= 8.0
    assert max(factors) <= 20.0
