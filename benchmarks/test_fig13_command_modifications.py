"""Figure 13: the command interface cuts software modifications 88-107x.

For every application, migrate its shell from device C to device D and
diff the full bring-up programs written against the register interface
versus the command interface.
"""

from repro.analysis.tables import format_table
from repro.apps import all_applications
from repro.core.host_software import ControlPlane
from repro.metrics.modifications import reduction_factor, trace_modifications
from repro.platform.catalog import DEVICE_C, DEVICE_D


def _migratable_apps():
    """Apps deployable on both migration endpoints (C has no DRAM)."""
    return [app for app in all_applications() if not app.role().demands.needs_memory]


def _fig13_rows():
    rows = []
    factors = []
    for app in _migratable_apps():
        traces = {}
        for device in (DEVICE_C, DEVICE_D):
            control = ControlPlane(app.tailored_shell(device))
            traces[device.name] = (
                control.register_full_init().operation_signatures(),
                control.command_full_init().invocation_signatures(),
            )
        register_mods = trace_modifications(traces["device-c"][0], traces["device-d"][0])
        command_mods = trace_modifications(traces["device-c"][1], traces["device-d"][1])
        factor = reduction_factor(register_mods, command_mods)
        factors.append(factor)
        rows.append((app.name, register_mods, command_mods, round(factor, 1)))
    return rows, factors


def test_fig13_command_modifications(benchmark, emit):
    rows, factors = benchmark(_fig13_rows)
    emit("fig13_command_modifications", format_table(
        ["application", "register mods", "command mods", "reduction x"], rows,
        title="Fig 13 -- software modifications migrating device C -> D "
              "(paper: 88-107x fewer)",
    ))
    assert min(factors) >= 60.0
    assert max(factors) <= 150.0
    for _name, register_mods, command_mods, _factor in rows:
        assert register_mods > 100
        assert command_mods <= 6
