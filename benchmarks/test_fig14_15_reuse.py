"""Figures 14 & 15: development-workload reuse.

* Fig 14 -- RBB code reuse: 69-76% cross-vendor, 84-93% cross-chip;
* Fig 15 -- application shells reuse 70-80% of their code across FPGAs.
"""

from repro.analysis.tables import format_table
from repro.apps import all_applications
from repro.core.rbb.host import HostRbb
from repro.core.rbb.memory import MemoryRbb
from repro.core.rbb.network import NetworkRbb
from repro.metrics.loc import Migration, reuse_rate
from repro.platform.catalog import DEVICE_A


def _fig14_rows():
    rows = []
    for rbb in (NetworkRbb(), HostRbb(), MemoryRbb()):
        loc = rbb.loc()
        rows.append((
            rbb.name,
            round(reuse_rate(loc, Migration.CROSS_VENDOR), 2),
            round(reuse_rate(loc, Migration.CROSS_CHIP), 2),
            loc.handcraft,
        ))
    return rows


def test_fig14_rbb_reuse(benchmark, emit):
    rows = benchmark(_fig14_rows)
    emit("fig14_rbb_reuse", format_table(
        ["RBB", "cross-vendor reuse", "cross-chip reuse", "handcraft LoC"], rows,
        title="Fig 14 -- RBB reuse rates (paper: 0.69-0.76 cross-vendor, "
              "0.84-0.93 cross-chip)",
    ))
    for _name, cross_vendor, cross_chip, _loc in rows:
        assert 0.65 <= cross_vendor <= 0.78
        assert 0.82 <= cross_chip <= 0.95
        assert cross_chip > cross_vendor


def _fig15_rows():
    rows = []
    for app in all_applications():
        loc = app.tailored_shell(DEVICE_A).loc()
        rows.append((
            app.name,
            round(reuse_rate(loc, Migration.CROSS_VENDOR), 2),
            round(reuse_rate(loc, Migration.CROSS_CHIP), 2),
        ))
    return rows


def test_fig15_app_reuse(benchmark, emit):
    rows = benchmark(_fig15_rows)
    emit("fig15_app_reuse", format_table(
        ["application", "cross-vendor reuse", "cross-chip reuse"], rows,
        title="Fig 15 -- application shell reuse (paper: 0.70-0.80)",
    ))
    for _name, cross_vendor, _cross_chip in rows:
        assert 0.65 <= cross_vendor <= 0.82
