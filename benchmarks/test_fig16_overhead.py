"""Figure 16: Harmonia's hardware additions are negligible.

Interface wrappers stay under 0.37% and the unified control kernel
under 0.67% of device resources, across every evaluation device.
"""

from repro.adapters.wrapper import InterfaceWrapper
from repro.analysis.tables import format_percent, format_table
from repro.core.shell import build_unified_shell
from repro.hw.ip.ddr import xilinx_ddr4_mig
from repro.hw.ip.mac import xilinx_cmac_100g
from repro.hw.ip.pcie import xilinx_qdma, xilinx_xdma
from repro.platform.catalog import DEVICE_A, evaluation_devices

WRAPPER_BOUND = 0.0037
UCK_BOUND = 0.0067


def _fig16_rows():
    wrapper = InterfaceWrapper()
    rows = []
    peaks = []
    for label, ip in (("MAC wrapper", xilinx_cmac_100g()),
                      ("PCIe wrapper", xilinx_qdma()),
                      ("DMA wrapper", xilinx_xdma()),
                      ("DDR wrapper", xilinx_ddr4_mig())):
        utilisation = DEVICE_A.budget.utilisation(wrapper.wrap(ip).resources)
        peak = max(utilisation.values())
        peaks.append(("wrapper", peak))
        rows.append((label, format_percent(utilisation["lut"], 2),
                     format_percent(utilisation["ff"], 2),
                     format_percent(peak, 2)))
    shell = build_unified_shell(DEVICE_A)
    uck_util = DEVICE_A.budget.utilisation(shell.control_kernel_resources())
    uck_peak = max(uck_util.values())
    peaks.append(("uck", uck_peak))
    rows.append(("unified control kernel", format_percent(uck_util["lut"], 2),
                 format_percent(uck_util["ff"], 2), format_percent(uck_peak, 2)))
    return rows, peaks


def test_fig16_overhead(benchmark, emit):
    rows, peaks = benchmark(_fig16_rows)
    emit("fig16_overhead", format_table(
        ["component", "LUT", "REG", "peak any-kind"], rows,
        title="Fig 16 -- added-hardware overhead on device A "
              "(paper: wrappers <0.37%, UCK <0.67%)",
    ))
    for kind, peak in peaks:
        bound = WRAPPER_BOUND if kind == "wrapper" else UCK_BOUND
        assert peak < bound, (kind, peak)


def test_fig16_bounds_hold_on_every_device(benchmark, emit):
    def sweep():
        rows = []
        for device in evaluation_devices():
            shell = build_unified_shell(device)
            wrapper_peak = max(
                device.budget.utilisation(shell.wrapper_resources()).values()
            )
            uck_peak = max(
                device.budget.utilisation(shell.control_kernel_resources()).values()
            )
            rows.append((device.name, format_percent(wrapper_peak, 2),
                         format_percent(uck_peak, 2), wrapper_peak, uck_peak))
        return rows

    rows = benchmark(sweep)
    emit("fig16_overhead_all_devices", format_table(
        ["device", "all wrappers peak", "UCK peak"],
        [row[:3] for row in rows],
        title="Fig 16 (extended) -- overhead bounds across the fleet",
    ))
    for _name, _w, _u, wrapper_peak, uck_peak in rows:
        assert wrapper_peak < WRAPPER_BOUND * 3   # whole-shell wrappers, summed
        assert uck_peak < UCK_BOUND
