"""Figure 17: applications keep their performance under Harmonia.

BITW applications (Sec-Gateway, L4 LB, Host Network) sweep packet sizes
with and without the framework in the data path; the look-aside
Retrieval sweeps corpus sizes.  Throughput must match natively and the
latency increase stay ~1% (nanoseconds against microseconds).
"""

import pytest

from repro.analysis.tables import format_series, format_table
from repro.apps import HostNetwork, Layer4LoadBalancer, RetrievalApp, SecGateway
from repro.platform.catalog import DEVICE_A

PACKET_SIZES = (64, 128, 256, 512, 1_024)


def _bitw_sweep(app):
    harmonia = app.measure(DEVICE_A, PACKET_SIZES, packets_per_point=800)
    native = app.measure(DEVICE_A, PACKET_SIZES, packets_per_point=800,
                         with_harmonia=False)
    rows = []
    for with_h, without_h in zip(harmonia, native):
        increase = (with_h.latency_us - without_h.latency_us) / without_h.latency_us
        rows.append((with_h.label,
                     round(without_h.throughput_gbps, 1), round(with_h.throughput_gbps, 1),
                     round(without_h.latency_us, 3), round(with_h.latency_us, 3),
                     round(increase * 100, 2)))
    return rows


def _check_bitw(rows):
    for _label, native_tpt, harmonia_tpt, _nl, _hl, increase_pct in rows:
        assert harmonia_tpt == pytest.approx(native_tpt, rel=0.02)
        assert increase_pct < 2.0   # the paper's <1%, with simulation slack
    throughputs = [row[2] for row in rows]
    assert throughputs == sorted(throughputs)   # grows with packet size


@pytest.mark.parametrize("app_factory,figure", [
    (SecGateway, "fig17a_sec_gateway"),
    (Layer4LoadBalancer, "fig17b_layer4_lb"),
    (HostNetwork, "fig17c_host_network"),
])
def test_fig17_bitw_apps(benchmark, emit, app_factory, figure):
    rows = benchmark(_bitw_sweep, app_factory())
    emit(figure, format_table(
        ["packet", "native Gbps", "harmonia Gbps", "native us", "harmonia us",
         "lat increase %"],
        rows,
        title=f"Fig 17 ({figure}) -- w/ vs w/o Harmonia (paper: full bw, <1% latency)",
    ))
    _check_bitw(rows)


def _retrieval_sweep():
    app = RetrievalApp()
    points = {}
    for exponent in (3, 5, 7, 9):
        points[f"1e{exponent}"] = round(app.queries_per_second(10 ** exponent))
    return points


def test_fig17d_retrieval(benchmark, emit):
    points = benchmark(_retrieval_sweep)
    emit("fig17d_retrieval", format_series(
        "Fig 17d -- retrieval QPS vs corpus size (paper: QPS falls with corpus)",
        points, unit="queries/s",
    ))
    values = list(points.values())
    assert values == sorted(values, reverse=True)
    assert values[0] > 100 * values[-1]
