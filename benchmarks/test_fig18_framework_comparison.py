"""Figure 18: Harmonia vs Vitis / oneAPI / Coyote.

* 18a -- Harmonia's shells use 3.5-14.9% fewer resources;
* 18b -- matrix-multiplication throughput scales with parallelism and
  is comparable across frameworks;
* 18c -- database access: sequential > fixed > random, comparable
  across frameworks;
* 18d -- TCP forwarding: throughput and latency grow with packet size,
  comparable across frameworks.
"""

import pytest

from repro.analysis.tables import format_percent, format_table
from repro.baselines import (
    CoyoteFramework,
    HarmoniaFramework,
    OneApiFramework,
    VitisFramework,
    all_frameworks,
)
from repro.core.rbb.memory import MemoryRbb
from repro.platform.catalog import DEVICE_A, DEVICE_D
from repro.workloads.database import VectorDatabase, full_sweep
from repro.workloads.matmul import MatmulThroughputModel
from repro.workloads.tcp import run_tcp_benchmark

#: (framework, device it runs the comparison on).
_COMPARISON = (
    (VitisFramework(), DEVICE_A),
    (CoyoteFramework(), DEVICE_A),
    (OneApiFramework(), DEVICE_D),
)


def _fig18a_rows():
    harmonia = HarmoniaFramework()
    rows = []
    reductions = []
    for bench in ("matmul", "database", "tcp"):
        for framework, device in _COMPARISON:
            baseline = framework.deploy(device, bench).resources
            ours = harmonia.deploy(device, bench).resources
            for kind in ("lut", "ff", "bram_36k"):
                base = getattr(baseline, kind)
                if base == 0:
                    continue
                reduction = (base - getattr(ours, kind)) / base
                reductions.append(reduction)
            lut_reduction = (baseline.lut - ours.lut) / baseline.lut
            rows.append((bench, framework.name, device.name,
                         baseline.lut, ours.lut, format_percent(lut_reduction)))
    return rows, reductions


def test_fig18a_framework_resources(benchmark, emit):
    rows, reductions = benchmark(_fig18a_rows)
    emit("fig18a_framework_resources", format_table(
        ["benchmark", "baseline", "device", "baseline LUT", "harmonia LUT",
         "reduction"],
        rows,
        title="Fig 18a -- shell resources vs baselines (paper: 3.5-14.9% lower)",
    ))
    assert 0.03 <= min(reductions)
    assert max(reductions) <= 0.16


def _fig18b_rows():
    degrees = (4, 8, 16)
    rows = []
    for framework in all_frameworks():
        # The compute kernel is identical; frameworks do not touch DSPs.
        model = MatmulThroughputModel()
        sweep = dict(model.sweep(degrees))
        rows.append((framework.name,) + tuple(round(sweep[d]) for d in degrees))
    return rows


def test_fig18b_matmul(benchmark, emit):
    rows = benchmark(_fig18b_rows)
    emit("fig18b_matmul", format_table(
        ["framework", "x4 matmul/s", "x8 matmul/s", "x16 matmul/s"], rows,
        title="Fig 18b -- matrix multiplication (paper: scales with parallelism, "
              "frameworks comparable)",
    ))
    for row in rows:
        assert row[1] < row[2] < row[3]
    # Comparable across frameworks: identical compute paths.
    assert len({row[1:] for row in rows}) == 1


def _fig18c_rows():
    rows = []
    for framework in all_frameworks():
        memory = MemoryRbb()
        # Frameworks expose the raw controller; Harmonia's hot cache is a
        # role-selectable Ex-function, disabled for the common benchmark.
        memory.ex_functions["hot_cache"].enabled = False
        results = full_sweep(memory, VectorDatabase(), vector_count=24_000)
        rows.append((
            framework.name,
            round(results[("random", "read")] / 1e6),
            round(results[("fixed", "read")] / 1e6),
            round(results[("sequential", "read")] / 1e6),
        ))
    return rows


def test_fig18c_database(benchmark, emit):
    rows = benchmark(_fig18c_rows)
    emit("fig18c_database", format_table(
        ["framework", "random Mvec/s", "fixed Mvec/s", "sequential Mvec/s"], rows,
        title="Fig 18c -- database access (paper: sequential > fixed > random, "
              "frameworks comparable)",
    ))
    for _name, random_rate, fixed_rate, sequential_rate in rows:
        assert random_rate < fixed_rate < sequential_rate


def _fig18d_rows():
    payloads = (64, 512, 1_446)
    rows = []
    for framework in all_frameworks():
        for payload in payloads:
            result = run_tcp_benchmark(
                payload, framework_latency_ns=framework.latency_offset_ns,
                packet_count=600,
            )
            rows.append((framework.name, f"{payload}B",
                         round(result.goodput_gbps, 1), round(result.latency_us, 2)))
    return rows


def test_fig18d_tcp(benchmark, emit):
    rows = benchmark(_fig18d_rows)
    emit("fig18d_tcp", format_table(
        ["framework", "payload", "goodput Gbps", "latency us"], rows,
        title="Fig 18d -- TCP forwarding (paper: tpt & lat grow with size, "
              "frameworks comparable)",
    ))
    by_framework = {}
    for name, payload, goodput, latency in rows:
        by_framework.setdefault(name, []).append((goodput, latency))
    for series in by_framework.values():
        goodputs = [point[0] for point in series]
        latencies = [point[1] for point in series]
        assert goodputs == sorted(goodputs)
        assert latencies == sorted(latencies)
    # Frameworks comparable: same payload, goodputs within 2%.
    for index in range(3):
        values = [series[index][0] for series in by_framework.values()]
        assert max(values) - min(values) <= 0.02 * max(values) + 0.2
