"""Tables 1-4: capability matrix, experimental setup, device support,
and interface simplification."""

from repro.analysis.tables import format_table
from repro.apps import all_applications
from repro.baselines import all_frameworks
from repro.baselines.base import Capability
from repro.core.host_software import ControlPlane
from repro.core.shell import build_unified_shell
from repro.platform.catalog import DEVICE_A, evaluation_devices

_MARK = {Capability.YES: "yes", Capability.NO: "no", Capability.PARTIAL: "partial"}


def _table1_rows():
    rows = []
    for framework in all_frameworks():
        row = framework.capability_row()
        rows.append((framework.name,) + tuple(_MARK[row[key]] for key in (
            "heterogeneity", "unified_shell", "portable_role",
            "consistent_host_interface")))
    return rows


def test_table1_capabilities(benchmark, emit):
    rows = benchmark(_table1_rows)
    emit("table1_capabilities", format_table(
        ["framework", "heterogeneity", "unified shell", "portable role",
         "consistent host IF"],
        rows,
        title="Table 1 -- framework capability matrix",
    ))
    by_name = {row[0]: row[1:] for row in rows}
    assert by_name["harmonia"] == ("yes", "yes", "yes", "yes")
    assert all("partial" in values or "no" in values
               for name, values in by_name.items() if name != "harmonia")


def _table2_rows():
    app_rows = [
        (app.name, app.role().architecture.value, app.role().description)
        for app in all_applications()
    ]
    device_rows = [(device.name, device.describe()) for device in evaluation_devices()]
    return app_rows, device_rows


def test_table2_setup(benchmark, emit):
    app_rows, device_rows = benchmark(_table2_rows)
    text = format_table(["application", "architecture", "function"], app_rows,
                        title="Table 2 -- applications")
    text += "\n\n" + format_table(["device", "description"], device_rows,
                                  title="Table 2 -- FPGA devices")
    emit("table2_setup", text)
    assert len(app_rows) == 5
    assert len(device_rows) == 4


def _table3_rows():
    devices = evaluation_devices()
    rows = []
    for framework in all_frameworks():
        support = framework.supported_vendor_classes(devices)
        rows.append((framework.name,
                     "yes" if support["intel"] else "no",
                     "yes" if support["xilinx"] else "no",
                     "yes" if support["inhouse"] else "no"))
    return rows


def test_table3_device_support(benchmark, emit):
    rows = benchmark(_table3_rows)
    emit("table3_device_support", format_table(
        ["framework", "Intel FPGAs", "Xilinx FPGAs", "in-house FPGAs"], rows,
        title="Table 3 -- device support matrix",
    ))
    by_name = {row[0]: row[1:] for row in rows}
    assert by_name["vitis"] == ("no", "yes", "no")
    assert by_name["oneapi"] == ("yes", "no", "no")
    assert by_name["coyote"] == ("no", "yes", "no")
    assert by_name["harmonia"] == ("yes", "yes", "yes")


def _table4_rows():
    control = ControlPlane(build_unified_shell(DEVICE_A))
    return [
        ("monitoring statistics",
         control.register_monitoring_walk().operation_count,
         control.command_monitoring_walk().invocation_count),
        ("network initialization",
         control.register_network_init().operation_count,
         control.command_network_init().invocation_count),
        ("host interaction config",
         control.register_host_interaction().operation_count,
         control.command_host_interaction().invocation_count),
    ]


def test_table4_interface_simplification(benchmark, emit):
    rows = benchmark(_table4_rows)
    rendered = [(name, registers, commands, round(registers / commands, 1))
                for name, registers, commands in rows]
    emit("table4_interface_simplification", format_table(
        ["configuration", "registers", "commands", "factor x"], rendered,
        title="Table 4 -- host interface simplification "
              "(paper: 84/115/60 registers vs 4/5/4 commands, 15-23x)",
    ))
    for _name, registers, commands, factor in rendered:
        assert commands <= 6
        assert 14.0 <= factor <= 24.0
    by_name = {row[0]: row[1:3] for row in rendered}
    assert by_name["monitoring statistics"] == (84, 4)
    assert by_name["host interaction config"] == (60, 4)
