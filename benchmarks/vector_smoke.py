"""Vector-kernel perf and exactness gate (``make bench-vector``).

Times one 100k-packet train through a real application datapath two
ways and checks the closed-form kernel against the scalar paths:

* ``scalar_batch`` -- :meth:`repro.sim.pipeline.PipelineChain.process_batch`,
  the optimised per-packet loop;
* ``vector`` -- :func:`repro.sim.vector.process_batch_vector`, the
  closed-form numpy kernel (cumsum + running maximum per stage).

Before timing, the bench spot-checks **exact equality**: the vector
sweep must reproduce :func:`repro.sim.pipeline.run_packet_sweep_reference`
bit for bit (throughput and latency floats, which derive from exact
integer per-packet completions) across several packet sizes, and a
mixed-size train must match the per-Transaction scalar loop packet for
packet.  Results land in ``BENCH_vector.json`` at the repository root;
``repro.cli report`` folds the file into the reproduction report.  The
script exits non-zero when the kernel is < 10x faster than
``process_batch`` on the 100k-packet train or any equality check fails.

Run directly: ``PYTHONPATH=src python benchmarks/vector_smoke.py``
"""

import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from perf_smoke import best_of  # noqa: E402

from repro.apps import application_by_name  # noqa: E402
from repro.platform.catalog import device_by_name  # noqa: E402
from repro.sim.pipeline import run_packet_sweep_reference  # noqa: E402
from repro.sim.vector import (  # noqa: E402
    process_batch_vector,
    run_packet_sweep_vector,
    simulate_train,
    simulate_train_reference,
)

APP_NAME = "sec-gateway"
DEVICE = "device-a"
TRAIN_PACKETS = 100_000
TRAIN_SIZE_BYTES = 512
SPOT_SIZES = (64, 256, 1024, 1500)
SPOT_PACKETS = 2_000
REPEATS = 5


def _chain():
    app = application_by_name(APP_NAME)
    device = device_by_name(DEVICE)
    return app.datapath(app.tailored_shell(device), True)


def check_exactness() -> dict:
    """Exact-equality spot checks; raises AssertionError on any mismatch."""
    chain = _chain()
    for size in SPOT_SIZES:
        expected = run_packet_sweep_reference(
            chain, packet_size_bytes=size, packet_count=SPOT_PACKETS)
        actual = run_packet_sweep_vector(
            chain, packet_size_bytes=size, packet_count=SPOT_PACKETS)
        assert actual == expected, (
            f"vector sweep diverged at {size}B: {actual} != {expected}")

    # Mixed-size train: per-packet completions vs the scalar loop.
    import numpy as np
    rng = np.random.default_rng(7)
    sizes = rng.integers(64, 1500, size=512).tolist()
    arrivals = np.arange(512, dtype=np.int64) * 41_000
    chain.reset()
    expected_completions = simulate_train_reference(chain, arrivals.tolist(), sizes)
    chain.reset()
    timing = simulate_train(chain, arrivals, np.asarray(sizes, dtype=np.int64))
    actual_completions = timing.completed_ps.tolist()
    assert actual_completions == expected_completions, (
        "mixed-size train diverged from the scalar loop")
    return {
        "spot_sizes": list(SPOT_SIZES),
        "spot_packets": SPOT_PACKETS,
        "mixed_train_packets": len(sizes),
    }


def run() -> dict:
    checks = check_exactness()
    chain = _chain()
    gap_ps = TRAIN_SIZE_BYTES * 8 / (chain.bandwidth_bps(TRAIN_SIZE_BYTES) * 0.98) * 1e12

    def scalar():
        chain.reset()
        chain.process_batch(TRAIN_SIZE_BYTES, gap_ps, 0, TRAIN_PACKETS)

    def vector():
        chain.reset()
        process_batch_vector(chain, TRAIN_SIZE_BYTES, gap_ps, 0, TRAIN_PACKETS)

    scalar_s = best_of(scalar, REPEATS)
    vector_s = best_of(vector, REPEATS)
    return {
        "workload": f"{APP_NAME}@{DEVICE}, {TRAIN_PACKETS} x "
                    f"{TRAIN_SIZE_BYTES}B packets",
        "exactness_checks": checks,
        "scalar_batch_s": round(scalar_s, 6),
        "vector_s": round(vector_s, 6),
        "vector_speedup": round(scalar_s / vector_s, 3),
    }


def main() -> int:
    baseline = run()
    target = REPO_ROOT / "BENCH_vector.json"
    target.write_text(json.dumps(baseline, indent=2, sort_keys=True) + "\n")
    print(json.dumps(baseline, indent=2, sort_keys=True))
    print(f"\nwrote {target}")
    if baseline["vector_speedup"] < 10.0:
        print(f"FAIL: vector kernel only {baseline['vector_speedup']:.2f}x "
              f"faster than process_batch (budget 10x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
