#!/usr/bin/env python3
"""Cross-platform migration: Host Network from Device C to Device D.

Reproduces the paper's flagship software story (section 5.2, Figure 13):
when an application moves to a new FPGA generation, register-level host
software needs hundreds of line changes -- new addresses, new lane
counts, new board I2C maps, reordered init -- while command-based
software changes almost nothing.

Run:  python examples/cross_platform_migration.py
"""

from repro import DEVICE_C, DEVICE_D, HierarchicalTailor, build_unified_shell
from repro.apps import HostNetwork
from repro.core.host_software import ControlPlane
from repro.metrics.modifications import reduction_factor, trace_modifications


def bring_up(device):
    """Deploy Host Network on a device; return both software traces."""
    app = HostNetwork()
    shell = HierarchicalTailor(
        build_unified_shell(device, tenants=app.role().demands.tenants)
    ).tailor(app.role())
    control = ControlPlane(shell)
    registers = control.register_full_init()
    commands = control.command_full_init()
    return shell, registers, commands


def main() -> None:
    print("Deploying Host Network on Device C (in-house Agilex board, DSFP)...")
    shell_c, registers_c, commands_c = bring_up(DEVICE_C)
    print(f"  modules: {[ip.name for ip in shell_c.modules()]}")
    print(f"  bring-up: {registers_c.operation_count} register ops / "
          f"{commands_c.invocation_count} commands")

    print("\nMigrating to Device D (Intel Agilex board, QSFP28 + DDR)...")
    shell_d, registers_d, commands_d = bring_up(DEVICE_D)
    print(f"  modules: {[ip.name for ip in shell_d.modules()]}")
    print(f"  bring-up: {registers_d.operation_count} register ops / "
          f"{commands_d.invocation_count} commands")

    register_mods = trace_modifications(
        registers_c.operation_signatures(), registers_d.operation_signatures()
    )
    command_mods = trace_modifications(
        commands_c.invocation_signatures(), commands_d.invocation_signatures()
    )
    factor = reduction_factor(register_mods, command_mods)

    print("\nMigration cost (host-software lines touched):")
    print(f"  register interface : {register_mods}")
    print(f"  command interface  : {command_mods}")
    print(f"  reduction          : {factor:.0f}x  (paper reports 88-107x)")

    print("\nWhy: the register program bakes in board knowledge --")
    profile_c = ControlPlane(shell_c).profile
    profile_d = ControlPlane(shell_d).profile
    print(f"  serdes lanes : {profile_c.serdes_lanes} -> {profile_d.serdes_lanes}")
    print(f"  I2C devices  : {len(profile_c.i2c_devices)} -> {len(profile_d.i2c_devices)}")
    print(f"  BAR0 base    : {profile_c.bar0_base:#x} -> {profile_d.bar0_base:#x}")
    print("while the command program only names modules and operations.")


if __name__ == "__main__":
    main()
