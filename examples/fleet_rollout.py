#!/usr/bin/env python3
"""Fleet rollout: one application across the heterogeneous fleet.

Combines the lifecycle (§4), the command plane, and health monitoring:
the Sec-Gateway rolls out to every compatible device in the evaluation
fleet, each instance passes integration testing, gets brought up over
commands, and is then watched by the fleet health sweep.  A device with
a failing sensor is caught before traffic lands on it.

Run:  python examples/fleet_rollout.py
"""

from repro.apps import SecGateway
from repro.core.command.codes import RbbId
from repro.core.health import HealthMonitor, Severity, fleet_health
from repro.core.host_software import ControlPlane
from repro.core.lifecycle import ApplicationProject, Lifecycle, PocEstimate
from repro.platform.catalog import evaluation_devices


def main() -> None:
    app = SecGateway()
    print(f"Rolling out {app.name!r} across the fleet...\n")

    monitors = []
    for device in evaluation_devices():
        # Stage 1-4: the full lifecycle per device.
        project = ApplicationProject(
            role=app.role(), device=device,
            poc=PocEstimate(bottleneck_fraction=0.7, offload_speedup=12.0),
        )
        Lifecycle(device).run_all(project, cluster=f"dci-{device.name}")
        stages = ", ".join(record.stage.value for record in project.records)
        print(f"  {device.name}: {stages} -> {project.deployed_cluster}")

        # Command-plane bring-up + a health monitor per card.
        control = ControlPlane(project.tailored_shell)
        control.command_full_init()
        monitors.append(HealthMonitor(control))

    print("\nFirst fleet health sweep:")
    for name, severity in fleet_health(monitors).items():
        print(f"  {name}: {severity.value}")

    # A die overheats on one card; the next sweep catches it.
    victim = monitors[1]
    sensor_id = victim.control.management_instance_id("sensor")
    regfile = victim.control.kernel.endpoint(int(RbbId.MANAGEMENT), sensor_id).regfile
    regfile.poke("TEMP_C", 97)
    print(f"\n(injecting 97C die temperature on {victim.control.device.name})")

    print("Second fleet health sweep:")
    for name, severity in fleet_health(monitors).items():
        marker = "  <-- drain traffic" if severity is not Severity.OK else ""
        print(f"  {name}: {severity.value}{marker}")

    sick = [name for name, severity in fleet_health(monitors).items()
            if severity is not Severity.OK]
    print(f"\nDevices needing attention: {sick}")


if __name__ == "__main__":
    main()
