#!/usr/bin/env python3
"""Multi-tenant SmartNIC: isolation across the whole stack (paper §6).

Four tenants share one Device B SmartNIC running the Layer-4 load
balancer.  Isolation shows up three times:

* the Network RBB's flow director confines each tenant's flows to its
  own host-queue range;
* the Host RBB's multi-queue scheduler only ever visits active queues
  and rejects cross-tenant submissions;
* partial-reconfiguration slots host independent tenant roles in the
  role region.

Run:  python examples/multi_tenant_smartnic.py
"""

from repro import DEVICE_B
from repro.apps.layer4_lb import Layer4LoadBalancer
from repro.core.multitenancy import PartialReconfigManager, even_slot_budgets
from repro.core.rbb.host import DmaDescriptor
from repro.errors import ConfigurationError
from repro.workloads.packets import PacketGenerator

TENANTS = 4


def main() -> None:
    app = Layer4LoadBalancer()
    shell = app.tailored_shell(DEVICE_B)
    network = shell.rbbs["network"]
    host = shell.rbbs["host"]
    print(f"Shell on {DEVICE_B.name}: {sorted(shell.rbbs)}; "
          f"{network.flow_director.tenants} tenants, "
          f"{network.flow_director.queues_per_tenant} queues each")

    # 1. Flow steering never crosses tenant queue ranges.
    generator = PacketGenerator(seed=1)
    packets = generator.uniform_stream(4_000, 256, flow_count=256, tenant_count=TENANTS)
    violations = 0
    for packet, queue in network.process_packets(packets):
        start, end = network.flow_director.queue_range(packet.tenant_id)
        violations += int(not start <= queue < end)
    print(f"\nFlow director steered {network.flow_director.directed} packets, "
          f"{violations} isolation violations")

    # 2. The DMA scheduler enforces queue ownership outright.
    own_queue = host.scheduler.queues_of_tenant(1)[0]
    host.scheduler.submit(DmaDescriptor(queue_id=own_queue, size_bytes=2_048, tenant_id=1))
    try:
        host.scheduler.submit(
            DmaDescriptor(queue_id=own_queue, size_bytes=2_048, tenant_id=2)
        )
    except ConfigurationError as error:
        print(f"Cross-tenant DMA rejected: {error}")
    moved = host.scheduler.drain()
    print(f"Scheduler drained {len(moved)} descriptor(s), "
          f"visiting {host.scheduler.queue_visits} queue slots "
          f"(not {host.scheduler.queue_count})")

    # 3. Tenant roles live in separate PR slots.
    manager = PartialReconfigManager(even_slot_budgets(DEVICE_B.budget, TENANTS))
    for tenant in range(TENANTS):
        slot = manager.load(f"tenant-{tenant}", app.role())
        print(f"PR slot {slot.index}: {slot.tenant} active")
    print(f"Active tenants: {manager.active_count()}")

    # And the LB still balances: load spread across backends per tenant.
    loads = app.distribute(packets)
    busiest = max(loads.values())
    idlest = min(loads.values())
    print(f"\nBackend load spread over {len(loads)} real servers: "
          f"max {busiest}, min {idlest} packets "
          f"({app.new_flows} new flows, {app.established_hits} established hits)")


if __name__ == "__main__":
    main()
