#!/usr/bin/env python3
"""Quickstart: deploy an accelerated application with Harmonia.

Walks the full paper workflow on one page:

1. pick a device from the heterogeneous catalog;
2. build the unified shell from Reusable Building Blocks;
3. tailor it to a role's demands (module + property level);
4. run the automated integration flow (dependency inspection,
   platform configuration, packaging);
5. bring the hardware up through the command-based interface; and
6. push traffic through the data path, with and without Harmonia's
   platform-specific layer, to see the performance contract hold.

Run:  python examples/quickstart.py
"""

from repro import (
    BuildFlow,
    CommandCode,
    CommandDriver,
    DEVICE_A,
    HierarchicalTailor,
    Role,
    RoleDemands,
    build_unified_shell,
)
from repro.core.host_software import ControlPlane
from repro.core.role import Architecture
from repro.metrics.resources import utilisation_percent
from repro.sim.pipeline import run_packet_sweep


def main() -> None:
    # 1. A device from the catalog (Table 2's Device A: Xilinx VU35P,
    #    HBM + DDR + 2x QSFP28 + PCIe Gen4 x8).
    device = DEVICE_A
    print(f"Device: {device.describe()}")

    # 2. The unified shell: every service the device can offer.
    unified = build_unified_shell(device)
    print(f"\nUnified shell RBBs: {sorted(unified.rbbs)}")
    print(f"Unified shell resources: {unified.resources().as_dict()}")

    # 3. A role that needs 100G networking and a modest host path.
    role = Role(
        name="my-accelerator",
        architecture=Architecture.BUMP_IN_THE_WIRE,
        demands=RoleDemands(network_gbps=100.0, host_gbps=16.0, bulk_dma=False),
    )
    tailored = HierarchicalTailor(unified).tailor(role)
    print(f"\nTailored shell RBBs: {sorted(tailored.rbbs)}")
    print(f"Tailored shell resources: {tailored.resources().as_dict()}")
    print(
        f"Role configures {tailored.role_config_item_count()} properties "
        f"instead of {tailored.native_config_item_count()} native items "
        f"({tailored.config_simplification_factor():.1f}x simpler)"
    )

    # 4. The automated integration flow.
    bundle = BuildFlow(device).build(
        "quickstart", tailored.modules(), extra_resources=role.resources
    )
    print(f"\nProject bundle: {bundle.artifact_id} on {bundle.bitstream.device_name}")
    utilisation = utilisation_percent(bundle.bitstream.resources, device.budget)
    print("Shell utilisation: " +
          ", ".join(f"{kind}={value:.1f}%" for kind, value in utilisation.items()))

    # 5. Bring-up over the command-based interface: a handful of
    #    commands instead of hundreds of register operations.
    control = ControlPlane(tailored)
    commands = control.command_full_init()
    registers = control.register_full_init()
    print(
        f"\nBring-up cost: {commands.invocation_count} commands "
        f"vs {registers.operation_count} register operations"
    )
    driver = CommandDriver(control.kernel)
    status = driver.cmd_read(CommandCode.MODULE_STATUS_READ, rbb_id=1)
    print(f"Network status registers: {status.data}")

    # 6. Traffic through the wrapped data path: same throughput as the
    #    native path, a few nanoseconds more latency.
    network = tailored.rbbs["network"]
    wrapped = network.datapath_chain(include_wrapper=True)
    native = network.datapath_chain(include_wrapper=False)
    for label, chain in (("with Harmonia", wrapped), ("native", native)):
        throughput_bps, latency_ns = run_packet_sweep(chain, 512, 2_000)
        print(f"{label:>14}: {throughput_bps / 1e9:6.1f} Gbps, {latency_ns:6.1f} ns")


if __name__ == "__main__":
    main()
