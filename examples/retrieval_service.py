#!/usr/bin/env python3
"""A look-aside embedding-retrieval service on Device A.

The Retrieval application (Table 2) accelerates similarity scoring and
top-K selection for a recommendation system.  This example builds the
service end to end: corpus in the Memory RBB's address space, queries
over the Host RBB, scoring in the role -- then shows recall sanity and
the QPS-vs-corpus-size curve of Figure 17d.

Run:  python examples/retrieval_service.py
"""

import numpy as np

from repro import DEVICE_A
from repro.apps.retrieval import EmbeddingCorpus, RetrievalApp, RetrievalEngine
from repro.core.rbb.memory import MemoryAccess
from repro.workloads.database import VECTORS_PER_BURST


def main() -> None:
    app = RetrievalApp(corpus_items=20_000, dim=64, k=10)
    shell = app.tailored_shell(DEVICE_A)
    print(f"Tailored shell for retrieval: {sorted(shell.rbbs)} "
          f"(look-aside: no network RBB)")
    memory = shell.rbbs["memory"]
    print(f"Memory instance: {memory.selected_instance_name} "
          f"({memory.channel_count} channels)")

    # Recall sanity: a query perturbed from corpus item i must rank i first.
    hits = 0
    for probe in range(100):
        index = probe * 37 % len(app.corpus)
        result = app.engine.search(app.corpus.query_like(index))
        hits += int(result.indices[0] == index)
    print(f"\nRecall@1 over 100 perturbed queries: {hits}%")

    # Corpus streaming cost through the Memory RBB (hot cache on).
    burst_bytes = VECTORS_PER_BURST * 4
    accesses = [
        MemoryAccess(address=index * burst_bytes, size_bytes=burst_bytes)
        for index in range(4_000)
    ]
    result = memory.run_accesses(accesses)
    print(f"Corpus streaming: {result.bandwidth_gbps:.1f} Gbps, "
          f"{result.row_hits} row hits / {result.row_misses} misses / "
          f"{result.cache_hits} cache hits")

    # The Figure 17d sweep: QPS falls with corpus size; latency is the
    # inverse of it plus the constant pipeline depth.
    print("\nQPS vs corpus size (Figure 17d shape):")
    for exponent in (3, 5, 7, 9):
        items = 10 ** exponent
        qps = app.queries_per_second(corpus_items=items)
        print(f"  corpus 10^{exponent}: {qps:12,.0f} queries/s")


if __name__ == "__main__":
    main()
