"""Harmonia: a unified framework for heterogeneous FPGA acceleration.

A simulation-backed reproduction of Li et al., ASPLOS 2025.  The public
API mirrors the paper's architecture:

* platform-specific layer: :mod:`repro.adapters` (device/vendor
  adapters, interface wrappers, the automated build flow);
* platform-independent layer: :mod:`repro.core` (RBBs, the unified
  shell, hierarchical tailoring, the command-based interface, the
  application lifecycle);
* substrates: :mod:`repro.sim`, :mod:`repro.hw`, :mod:`repro.platform`,
  :mod:`repro.workloads`;
* evaluation: :mod:`repro.apps` (the five production applications),
  :mod:`repro.baselines` (Vitis / oneAPI / Coyote models), and
  :mod:`repro.metrics`.

Quickstart::

    from repro import build_unified_shell, HierarchicalTailor, DEVICE_A
    from repro.apps import SecGateway

    shell = build_unified_shell(DEVICE_A)
    tailored = HierarchicalTailor(shell).tailor(SecGateway().role())
    print(tailored.resources().as_dict())
"""

from repro.adapters import (
    BuildFlow,
    DeviceAdapter,
    InterfaceWrapper,
    ProjectBundle,
    VendorAdapter,
)
from repro.core import (
    HierarchicalTailor,
    Role,
    RoleDemands,
    TailoredShell,
    UnifiedShell,
    build_unified_shell,
)
from repro.core.command import (
    CommandCode,
    CommandDriver,
    CommandPacket,
    RegisterDriver,
    UnifiedControlKernel,
)
from repro.core.host_software import ControlPlane
from repro.core.lifecycle import ApplicationProject, Lifecycle, PocEstimate
from repro.errors import HarmoniaError
from repro.platform import (
    DEVICE_A,
    DEVICE_B,
    DEVICE_C,
    DEVICE_D,
    FpgaDevice,
    Vendor,
    all_devices,
    device_by_name,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationProject",
    "BuildFlow",
    "CommandCode",
    "CommandDriver",
    "CommandPacket",
    "ControlPlane",
    "DEVICE_A",
    "DEVICE_B",
    "DEVICE_C",
    "DEVICE_D",
    "DeviceAdapter",
    "FpgaDevice",
    "HarmoniaError",
    "HierarchicalTailor",
    "InterfaceWrapper",
    "Lifecycle",
    "PocEstimate",
    "ProjectBundle",
    "RegisterDriver",
    "Role",
    "RoleDemands",
    "TailoredShell",
    "UnifiedControlKernel",
    "UnifiedShell",
    "Vendor",
    "VendorAdapter",
    "all_devices",
    "build_unified_shell",
    "device_by_name",
]
