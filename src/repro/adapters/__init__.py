"""Harmonia's platform-specific layer (paper section 3.2).

* :mod:`repro.adapters.device_adapter` -- automated device adapters
  managing hardware-resource configurations (static + dynamic groups);
* :mod:`repro.adapters.vendor_adapter` -- vendor adapters managing
  deployment differences with key-value dependency inspection;
* :mod:`repro.adapters.wrapper` -- lightweight interface wrappers
  converting vendor interfaces into the six unified types;
* :mod:`repro.adapters.toolchain` -- the automated integration flow that
  checks dependencies, configures the platform, "compiles", and packages
  bitstream + software into one project file.
"""

from repro.adapters.device_adapter import DeviceAdapter
from repro.adapters.vendor_adapter import VendorAdapter
from repro.adapters.wrapper import InterfaceWrapper, WRAPPER_LATENCY_CYCLES
from repro.adapters.toolchain import BitstreamPackage, BuildFlow, ProjectBundle

__all__ = [
    "BitstreamPackage",
    "BuildFlow",
    "DeviceAdapter",
    "InterfaceWrapper",
    "ProjectBundle",
    "VendorAdapter",
    "WRAPPER_LATENCY_CYCLES",
]
