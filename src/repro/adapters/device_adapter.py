"""Automated device adapters (hardware-resource configurations).

The paper splits resource configurations into a *static group* --
"inherent resource properties of FPGA chips and peripherals (e.g.,
channel numbers, virtual functions, etc.), which only need to be
configured once and reused anywhere" -- and a *dynamic group* of
"mapping constraints between the logic and the device, such as I/O pins
and clock mappings configured on-demand".

:class:`DeviceAdapter` derives the static group from the device model
once (cached) and manages dynamic allocations with conflict detection,
replacing the "error-prone manual operations" the paper warns about.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.platform.device import (
    FpgaDevice,
    MEMORY_BANDWIDTH_GBPS,
    MEMORY_CHANNELS,
    NETWORK_RATE_GBPS,
    Peripheral,
    PeripheralKind,
)

#: Pins provided per peripheral kind (representative package numbers).
_PINS_PER_PERIPHERAL: Dict[PeripheralKind, int] = {
    PeripheralKind.QSFP28: 38,
    PeripheralKind.QSFP56: 38,
    PeripheralKind.QSFP112: 42,
    PeripheralKind.DSFP: 40,
    PeripheralKind.DDR3: 140,
    PeripheralKind.DDR4: 160,
    PeripheralKind.HBM: 0,        # in-package; no board pins
    PeripheralKind.PCIE: 82,
    PeripheralKind.I2C: 2,
    PeripheralKind.FLASH: 6,
}

#: Global clock resources per device (simplified: one pool of MMCM/PLL).
_CLOCK_SOURCES = ("sysclk_100", "sysclk_156_25", "sysclk_161_13", "sysclk_300",
                  "pcie_refclk", "ddr_refclk", "hbm_refclk", "mgt_refclk_0",
                  "mgt_refclk_1")


@dataclass(frozen=True)
class PinAllocation:
    """A dynamic pin-bank assignment for one module."""

    module: str
    peripheral: PeripheralKind
    bank: int
    pins: int


#: Cage kinds that satisfy a peripheral requirement interchangeably.
_EQUIVALENT_CAGES: Dict[PeripheralKind, Tuple[PeripheralKind, ...]] = {
    PeripheralKind.QSFP112: (PeripheralKind.QSFP112, PeripheralKind.DSFP,
                             PeripheralKind.QSFP56),
    PeripheralKind.QSFP28: (PeripheralKind.QSFP28,),
}


def satisfying_kinds(wanted: PeripheralKind) -> Tuple[PeripheralKind, ...]:
    """Peripheral kinds that satisfy a requirement for ``wanted``."""
    return _EQUIVALENT_CAGES.get(wanted, (wanted,))


class DeviceAdapter:
    """Derives and manages hardware-resource configuration for one device."""

    def __init__(self, device: FpgaDevice) -> None:
        self.device = device
        self._static_config: Optional[Dict[str, object]] = None
        self._pin_allocations: List[PinAllocation] = []
        self._clock_mappings: Dict[str, str] = {}
        self._next_bank = 0

    # --- static group ----------------------------------------------------

    def static_config(self) -> Dict[str, object]:
        """The once-computed inherent properties of chip and peripherals.

        Computed on first use and reused afterwards, mirroring the
        paper's "configured once and reused anywhere".
        """
        if self._static_config is None:
            self._static_config = self._derive_static_config()
        return self._static_config

    def _derive_static_config(self) -> Dict[str, object]:
        device = self.device
        config: Dict[str, object] = {
            "chip": device.chip,
            "family": device.family.name,
            "process_nm": device.family.process_nm,
            "chip_vendor": device.chip_vendor.value,
            "board_vendor": device.board_vendor.value,
            "lut_budget": device.budget.lut,
            "ff_budget": device.budget.ff,
            "bram_36k_budget": device.budget.bram_36k,
            "uram_budget": device.budget.uram,
            "dsp_budget": device.budget.dsp,
            "pcie_generation": int(device.pcie.pcie_generation),
            "pcie_lanes": device.pcie.pcie_lanes,
            "pcie_virtual_functions": 16,
            "host_bandwidth_gbps": device.host_gbps,
        }
        network_channels = 0
        memory_channels: Dict[str, int] = {}
        for peripheral in device.peripherals:
            if peripheral.kind in NETWORK_RATE_GBPS:
                network_channels += peripheral.count
            if peripheral.kind in MEMORY_CHANNELS:
                key = peripheral.kind.value
                memory_channels[key] = (
                    memory_channels.get(key, 0)
                    + MEMORY_CHANNELS[peripheral.kind] * peripheral.count
                )
        config["network_channels"] = network_channels
        config["network_bandwidth_gbps"] = device.network_gbps
        config["memory_channels"] = memory_channels
        config["memory_bandwidth_gbps"] = {
            peripheral.kind.value: peripheral.memory_gbps
            for peripheral in device.peripherals
            if peripheral.kind in MEMORY_BANDWIDTH_GBPS
        }
        return config

    # --- dynamic group ---------------------------------------------------

    def allocate_pins(self, module: str, peripheral: PeripheralKind) -> PinAllocation:
        """Assign a pin bank for ``module`` driving ``peripheral``.

        Raises :class:`ConfigurationError` when the board does not carry
        the peripheral or when all instances are already allocated.
        """
        kinds = satisfying_kinds(peripheral)
        available = sum(
            p.count for kind in kinds for p in self.device.peripherals_of(kind)
        )
        if available == 0:
            raise ConfigurationError(
                f"device {self.device.name!r} has no {peripheral.value} peripheral"
            )
        taken = sum(1 for alloc in self._pin_allocations if alloc.peripheral in kinds)
        if taken >= available:
            raise ConfigurationError(
                f"all {available} {peripheral.value} instances on "
                f"{self.device.name!r} are already allocated"
            )
        allocation = PinAllocation(
            module=module,
            peripheral=peripheral,
            bank=self._next_bank,
            pins=_PINS_PER_PERIPHERAL.get(peripheral, 0),
        )
        self._next_bank += 1
        self._pin_allocations.append(allocation)
        return allocation

    def map_clock(self, logical_clock: str, source: str) -> None:
        """Bind a logical clock to a physical source, rejecting conflicts."""
        if source not in _CLOCK_SOURCES:
            raise ConfigurationError(
                f"unknown clock source {source!r}; available: {', '.join(_CLOCK_SOURCES)}"
            )
        existing = self._clock_mappings.get(logical_clock)
        if existing is not None and existing != source:
            raise ConfigurationError(
                f"logical clock {logical_clock!r} already mapped to {existing!r}"
            )
        self._clock_mappings[logical_clock] = source

    @property
    def pin_allocations(self) -> List[PinAllocation]:
        return list(self._pin_allocations)

    @property
    def clock_mappings(self) -> Dict[str, str]:
        return dict(self._clock_mappings)

    def dynamic_config(self) -> Dict[str, object]:
        """The on-demand mapping state (pins + clocks)."""
        return {
            "pin_allocations": [
                {"module": alloc.module, "peripheral": alloc.peripheral.value,
                 "bank": alloc.bank, "pins": alloc.pins}
                for alloc in self._pin_allocations
            ],
            "clock_mappings": dict(self._clock_mappings),
        }

    def reset_dynamic(self) -> None:
        """Clear dynamic allocations (new build); static config persists."""
        self._pin_allocations.clear()
        self._clock_mappings.clear()
        self._next_bank = 0
