"""Adapter-script generation (paper section 3.2, last line).

"Both adapters are generated using vendor-provided tcl and ruby
scripts, enabling easy development."  This module emits those artifacts:
a Vivado/Quartus tcl script that applies the device adapter's platform
configuration (pins, clocks, IP properties), and a ruby deployment
script that runs the vendor adapter's dependency checks and initialises
the hardware on the target host (the §4 stage-4 automation).

The scripts are deterministic text, so builds are reproducible and the
tests can assert their content.
"""

from typing import Iterable, List

from repro.adapters.device_adapter import DeviceAdapter
from repro.adapters.vendor_adapter import VendorAdapter
from repro.hw.ip.base import VendorIp
from repro.platform.device import FpgaDevice
from repro.platform.vendor import ScriptLanguage


def _tcl_header(device: FpgaDevice) -> List[str]:
    return [
        "# Auto-generated platform-adapter script -- do not edit.",
        f"# device: {device.name} ({device.chip}, {device.family.name})",
        f"# toolchain: {device.toolchain.name} {device.toolchain.version}",
        "",
    ]


def generate_device_adapter_tcl(adapter: DeviceAdapter) -> str:
    """The CAD-tool script applying static + dynamic configuration."""
    device = adapter.device
    lines = _tcl_header(device)
    lines.append("# --- static resource group (configured once) ---")
    for key, value in sorted(adapter.static_config().items(), key=lambda kv: kv[0]):
        lines.append(f"set harmonia::static({key}) {{{value}}}")
    lines.append("")
    lines.append("# --- dynamic mapping group (per build) ---")
    for allocation in adapter.pin_allocations:
        lines.append(
            f"assign_pins -module {allocation.module} "
            f"-peripheral {allocation.peripheral.value} -bank {allocation.bank} "
            f"-count {allocation.pins}"
        )
    for logical, source in sorted(adapter.clock_mappings.items()):
        lines.append(f"create_clock_mapping -logical {logical} -source {source}")
    lines.append("")
    return "\n".join(lines)


def generate_ip_config_tcl(modules: Iterable[VendorIp]) -> str:
    """Per-IP property settings, in the owning tool's idiom."""
    lines = ["# Auto-generated IP configuration -- do not edit.", ""]
    for ip in modules:
        lines.append(f"# {ip.name} ({ip.vendor.value} {ip.kind.value})")
        catalog = ip.dependencies.get("ip_catalog", ip.name)
        version = ip.dependencies.get("ip_version", "*")
        lines.append(f"create_ip -name {catalog} -version {version} "
                     f"-module_name {ip.name.replace('-', '_')}")
        for key in sorted(ip.config_params):
            value = ip.config_params[key]
            lines.append(
                f"set_property CONFIG.{key} {{{value}}} "
                f"[get_ips {ip.name.replace('-', '_')}]"
            )
        lines.append("")
    return "\n".join(lines)


def generate_deployment_ruby(
    adapter: VendorAdapter, modules: Iterable[VendorIp], cluster: str
) -> str:
    """The stage-4 deployment script: checks, configuration, init.

    "During this process, scripts in the platform adapter automate
    hardware configuration, environmental dependency checks, and
    hardware initialization based on the deployed FPGAs."
    """
    module_list = list(modules)
    lines = [
        "# Auto-generated deployment script -- do not edit.",
        f"# cluster: {cluster}",
        "require 'harmonia/deploy'",
        "",
        "environment = {",
    ]
    for key, value in sorted(adapter.environment.items()):
        lines.append(f"  {key!r} => {value!r},")
    lines.append("}")
    lines.append("")
    lines.append("dependencies = [")
    for ip in module_list:
        pairs = ", ".join(
            f"{key!r} => {value!r}" for key, value in sorted(ip.dependencies.items())
        )
        lines.append(f"  {{ 'module' => {ip.name!r}, {pairs} }},")
    lines.append("]")
    lines.append("")
    lines.append("Harmonia::Deploy.check!(environment, dependencies)")
    for ip in module_list:
        lines.append(f"Harmonia::Deploy.initialize_module({ip.name!r})")
    lines.append(f"Harmonia::Deploy.register_cluster({cluster!r})")
    lines.append("")
    return "\n".join(lines)


def script_language_for(device: FpgaDevice) -> ScriptLanguage:
    """Which language the device's CAD flow is scripted in."""
    return device.toolchain.script_language
