"""The automated integration flow (paper section 4, "Project implementation").

"Firstly, Harmonia loads the vendor adapter and checks the dependencies
between modules and environments.  After ensuring that there are no
dependency conflicts, Harmonia completes platform configurations and
invokes corresponding CAD tools for compilation.  Finally, the FPGA
executable bitstream and software are packaged together into a
consolidated project file."

Synthesis itself is out of scope for a Python reproduction; the flow
here performs every *checkable* step -- dependency inspection, resource
fitting, pin/clock configuration -- and emits a deterministic,
content-addressed package.
"""

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.adapters.device_adapter import DeviceAdapter
from repro.adapters.vendor_adapter import VendorAdapter
from repro.errors import DeploymentError
from repro.hw.ip.base import VendorIp
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice


@dataclass(frozen=True)
class BitstreamPackage:
    """The 'compiled' FPGA image: modules, configuration, resources."""

    device_name: str
    toolchain: str
    module_names: Tuple[str, ...]
    resources: ResourceUsage
    static_config: str      # canonical JSON
    dynamic_config: str     # canonical JSON
    checksum: str

    @staticmethod
    def build(
        device: FpgaDevice,
        modules: Iterable[VendorIp],
        resources: ResourceUsage,
        static_config: Dict[str, object],
        dynamic_config: Dict[str, object],
    ) -> "BitstreamPackage":
        module_names = tuple(sorted(ip.name for ip in modules))
        static_json = json.dumps(static_config, sort_keys=True, default=str)
        dynamic_json = json.dumps(dynamic_config, sort_keys=True, default=str)
        digest = hashlib.sha256()
        digest.update(device.name.encode())
        digest.update("\x00".join(module_names).encode())
        digest.update(static_json.encode())
        digest.update(dynamic_json.encode())
        return BitstreamPackage(
            device_name=device.name,
            toolchain=f"{device.toolchain.name}-{device.toolchain.version}",
            module_names=module_names,
            resources=resources,
            static_config=static_json,
            dynamic_config=dynamic_json,
            checksum=digest.hexdigest(),
        )


@dataclass(frozen=True)
class ProjectBundle:
    """Bitstream plus host software, shipped as one project file."""

    name: str
    bitstream: BitstreamPackage
    software_components: Tuple[str, ...]

    @property
    def artifact_id(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        digest.update(self.bitstream.checksum.encode())
        digest.update("\x00".join(self.software_components).encode())
        return digest.hexdigest()[:16]


class BuildFlow:
    """Runs the four automated integration steps for one device."""

    def __init__(self, device: FpgaDevice) -> None:
        self.device = device
        self.device_adapter = DeviceAdapter(device)
        self.vendor_adapter = VendorAdapter(device.toolchain)

    def build(
        self,
        project_name: str,
        modules: Iterable[VendorIp],
        extra_resources: ResourceUsage = ResourceUsage(),
        software_components: Tuple[str, ...] = (),
    ) -> ProjectBundle:
        """Check, configure, compile, and package.

        Raises :class:`DeploymentError` (wrapping the underlying adapter
        error) when any step fails, so callers see one failure type at
        the project boundary.
        """
        module_list: List[VendorIp] = list(modules)
        # Step 1: dependency inspection.
        report = self.vendor_adapter.inspect(module_list)
        if not report.passed:
            raise DeploymentError(
                f"project {project_name!r} failed dependency inspection: "
                + "; ".join(report.violations)
            )
        # Step 2: platform configuration (pins + clocks per module).
        self.device_adapter.reset_dynamic()
        for ip in module_list:
            if ip.requires_peripheral is not None:
                self.device_adapter.allocate_pins(ip.name, ip.requires_peripheral)
            self.device_adapter.map_clock(ip.clock.name, "sysclk_100")
        # Step 3: resource fitting ("compilation").
        total = ResourceUsage.total(ip.resources for ip in module_list) + extra_resources
        try:
            self.device.budget.check_fits(total, design=project_name)
        except Exception as error:
            raise DeploymentError(
                f"project {project_name!r} does not fit {self.device.name}: {error}"
            ) from error
        # Step 4: packaging.
        bitstream = BitstreamPackage.build(
            self.device,
            module_list,
            total,
            self.device_adapter.static_config(),
            self.device_adapter.dynamic_config(),
        )
        return ProjectBundle(project_name, bitstream, software_components)
