"""The automated integration flow (paper section 4, "Project implementation").

"Firstly, Harmonia loads the vendor adapter and checks the dependencies
between modules and environments.  After ensuring that there are no
dependency conflicts, Harmonia completes platform configurations and
invokes corresponding CAD tools for compilation.  Finally, the FPGA
executable bitstream and software are packaged together into a
consolidated project file."

Synthesis itself is out of scope for a Python reproduction; the flow
here performs every *checkable* step -- dependency inspection, resource
fitting, pin/clock configuration -- and emits a deterministic,
content-addressed package.

The flow is decomposed into four **resumable steps** (``inspect`` ->
``configure`` -> ``fit`` -> ``package``); :meth:`BuildFlow.compile`
runs them in order and records per-step wall-clock timings, which is
what lets :mod:`repro.runtime.buildfarm` schedule, memoise, and profile
thousands of device x role builds.  The CAD tool's compile cost itself
is represented by a deterministic :func:`run_compile_model` workload
whose result (a pseudo timing report) is a pure function of the
design's content, so two builds of the same design agree bit for bit no
matter where they ran.
"""

import hashlib
import json
import math
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.adapters.device_adapter import DeviceAdapter
from repro.adapters.vendor_adapter import VendorAdapter
from repro.errors import ConfigurationError, DeploymentError
from repro.hw.ip.base import VendorIp
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice

#: The resumable integration steps, in execution order.
BUILD_STEP_NAMES: Tuple[str, ...] = ("inspect", "configure", "fit", "package")


# ---------------------------------------------------------------------------
# Canonical configuration hashing
# ---------------------------------------------------------------------------

def _reject_non_canonical(value: object, path: str) -> None:
    raise ConfigurationError(
        f"config value at {path} is not canonically serialisable: "
        f"{type(value).__name__} (allowed: str, int, float, bool, None, "
        f"list/tuple, dict with str keys)"
    )


def _validate_canonical(value: object, path: str) -> None:
    if value is None or isinstance(value, (str, bool)):
        return
    if isinstance(value, int):
        return
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ConfigurationError(
                f"config value at {path} is a non-finite float ({value!r})"
            )
        return
    if isinstance(value, (list, tuple)):
        for index, item in enumerate(value):
            _validate_canonical(item, f"{path}[{index}]")
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"config key at {path} is not a string: {key!r} "
                    f"({type(key).__name__})"
                )
            _validate_canonical(item, f"{path}.{key}")
        return
    _reject_non_canonical(value, path)


def canonical_json(value: object) -> str:
    """Serialise ``value`` as canonical JSON, rejecting unknown types.

    The previous packaging code used ``json.dumps(..., default=str)``,
    which silently stringifies arbitrary objects: two semantically
    different configs whose ``str()`` happens to agree collide, and two
    equal configs carried by different object types diverge.  Hash
    inputs must not do either, so this encoder accepts only the JSON
    value model (strings, finite numbers, booleans, ``None``,
    lists/tuples, string-keyed dicts) and raises
    :class:`ConfigurationError` on anything else.

    Output is deterministic: sorted keys, minimal separators, and
    ``allow_nan=False`` as a backstop.
    """
    _validate_canonical(value, "$")
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def module_inventory(modules: Iterable[VendorIp]) -> List[Dict[str, object]]:
    """The identity-bearing content of a module set, canonically ordered.

    One entry per module: name plus the vendor-dependency key-value
    pairs the inspection step validates.  This is the "module
    inventory" slice of a build's content key -- two shells carrying the
    same inventory make the same demands on the CAD environment.
    """
    entries = [
        {
            "name": ip.name,
            "dependencies": {str(key): str(value)
                             for key, value in sorted(ip.dependencies.items())},
        }
        for ip in modules
    ]
    entries.sort(key=lambda entry: (entry["name"],
                                    canonical_json(entry["dependencies"])))
    return entries


# ---------------------------------------------------------------------------
# The deterministic compile-cost model
# ---------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1


@dataclass(frozen=True)
class CompileModelResult:
    """Pseudo timing report of the modelled CAD compile.

    A pure function of (seed, units, effort): re-running the model for
    the same design always reproduces the same report, which is what
    lets the report live inside a content-addressed build manifest.
    """

    units: int
    effort: int
    iterations: int
    fmax_mhz: float
    congestion: float

    def to_json(self) -> Dict[str, object]:
        return {
            "units": self.units,
            "effort": self.effort,
            "iterations": self.iterations,
            "fmax_mhz": self.fmax_mhz,
            "congestion": self.congestion,
        }


def compile_cost_units(modules: Iterable[VendorIp],
                       resources: ResourceUsage) -> int:
    """Deterministic compile-cost estimate of a design (arbitrary units).

    Scales with design size the way place-and-route wall-clock does:
    per-module fixed cost plus a term per logic/memory/DSP element.
    The build farm uses it both to size the modelled compile work and to
    schedule critical-path-first (largest remaining work first).
    """
    module_count = sum(1 for _ in modules)
    return (
        40 * module_count
        + resources.lut // 2_000
        + resources.ff // 4_000
        + resources.bram_36k // 8
        + resources.uram // 4
        + resources.dsp // 16
    )


def run_compile_model(seed_hex: str, units: int, effort: int) -> CompileModelResult:
    """Run the modelled CAD compile: ``units * effort`` xorshift rounds.

    ``seed_hex`` is the design checksum, so the pseudo timing numbers
    are content-addressed like everything else in the bundle.  With
    ``effort=0`` the model is skipped (zero iterations) and the report
    degenerates to the analytic estimate -- tests run there; benchmarks
    raise the effort until compile dominates, which is the regime the
    farm's scheduling and reuse are built for.
    """
    if units < 0 or effort < 0:
        raise ConfigurationError("compile model units/effort must be >= 0")
    iterations = units * effort
    state = (int(seed_hex[:16], 16) if seed_hex else 0) | 1
    accumulator = 0
    for _ in range(iterations):
        state = state ^ ((state << 13) & _MASK64)
        state = state ^ (state >> 7)
        state = state ^ ((state << 17) & _MASK64)
        accumulator ^= state
    blend = (accumulator or state) & 0xFFFF
    # Map the accumulator into plausible CAD outputs: an achieved fmax
    # in [350, 550) MHz and a routing-congestion score in [0, 1).
    fmax_mhz = round(350.0 + (blend / 65_536.0) * 200.0, 3)
    congestion = round(((accumulator >> 16) & 0xFFFF) / 65_536.0, 6)
    return CompileModelResult(units=units, effort=effort,
                              iterations=iterations, fmax_mhz=fmax_mhz,
                              congestion=congestion)


# ---------------------------------------------------------------------------
# Packaging
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BitstreamPackage:
    """The 'compiled' FPGA image: modules, configuration, resources."""

    device_name: str
    toolchain: str
    module_names: Tuple[str, ...]
    resources: ResourceUsage
    static_config: str      # canonical JSON
    dynamic_config: str     # canonical JSON
    checksum: str

    @staticmethod
    def build(
        device: FpgaDevice,
        modules: Iterable[VendorIp],
        resources: ResourceUsage,
        static_config: Dict[str, object],
        dynamic_config: Dict[str, object],
    ) -> "BitstreamPackage":
        module_names = tuple(sorted(ip.name for ip in modules))
        static_json = canonical_json(static_config)
        dynamic_json = canonical_json(dynamic_config)
        digest = hashlib.sha256()
        digest.update(device.name.encode())
        digest.update("\x00".join(module_names).encode())
        digest.update(static_json.encode())
        digest.update(dynamic_json.encode())
        return BitstreamPackage(
            device_name=device.name,
            toolchain=f"{device.toolchain.name}-{device.toolchain.version}",
            module_names=module_names,
            resources=resources,
            static_config=static_json,
            dynamic_config=dynamic_json,
            checksum=digest.hexdigest(),
        )


@dataclass(frozen=True)
class ProjectBundle:
    """Bitstream plus host software, shipped as one project file."""

    name: str
    bitstream: BitstreamPackage
    software_components: Tuple[str, ...]

    @property
    def artifact_id(self) -> str:
        digest = hashlib.sha256()
        digest.update(self.name.encode())
        digest.update(self.bitstream.checksum.encode())
        digest.update("\x00".join(self.software_components).encode())
        return digest.hexdigest()[:16]


# ---------------------------------------------------------------------------
# The integration flow
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StepTiming:
    """Wall-clock of one integration step in one build."""

    step: str
    wall_s: float

    def to_json(self) -> Dict[str, object]:
        return {"step": self.step, "wall_s": round(self.wall_s, 6)}


@dataclass(frozen=True)
class BuildOutcome:
    """Everything one :meth:`BuildFlow.compile` run produced.

    ``bundle`` and ``timing_report`` are deterministic (content-keyed);
    ``step_timings`` are this run's wall-clock measurements and are
    deliberately kept outside every hash and manifest.
    """

    bundle: ProjectBundle
    step_timings: Tuple[StepTiming, ...]
    timing_report: CompileModelResult


class BuildFlow:
    """Runs the four automated integration steps for one device.

    Each step is exposed as a ``step_*`` method so orchestration layers
    (the build farm) can resume, memoise, and time them individually;
    :meth:`compile` chains them all and :meth:`build` keeps the original
    one-call surface.
    """

    def __init__(self, device: FpgaDevice) -> None:
        self.device = device
        self.device_adapter = DeviceAdapter(device)
        self.vendor_adapter = VendorAdapter(device.toolchain)

    # --- the resumable steps ----------------------------------------------

    def step_inspect(self, project_name: str,
                     modules: List[VendorIp]) -> None:
        """Step 1: rigid dependency inspection (raises on any conflict)."""
        report = self.vendor_adapter.inspect(modules)
        if not report.passed:
            raise DeploymentError(
                f"project {project_name!r} failed dependency inspection: "
                + "; ".join(report.violations)
            )

    def step_configure(self, modules: List[VendorIp]) -> None:
        """Step 2: platform configuration (pins + clocks per module)."""
        self.device_adapter.reset_dynamic()
        for ip in modules:
            if ip.requires_peripheral is not None:
                self.device_adapter.allocate_pins(ip.name, ip.requires_peripheral)
            self.device_adapter.map_clock(ip.clock.name, "sysclk_100")

    def step_fit(self, project_name: str, modules: List[VendorIp],
                 extra_resources: ResourceUsage = ResourceUsage(),
                 effort: int = 0) -> Tuple[ResourceUsage, CompileModelResult]:
        """Step 3: resource fitting plus the modelled CAD compile.

        Returns the fitted total and the deterministic pseudo timing
        report; raises :class:`DeploymentError` when the design does not
        fit the device budget.
        """
        total = ResourceUsage.total(ip.resources for ip in modules) + extra_resources
        try:
            self.device.budget.check_fits(total, design=project_name)
        except Exception as error:
            raise DeploymentError(
                f"project {project_name!r} does not fit {self.device.name}: {error}"
            ) from error
        seed = hashlib.sha256(
            (self.device.name + "\x00" + project_name).encode()
        ).hexdigest()
        report = run_compile_model(seed, compile_cost_units(modules, total),
                                   effort)
        return total, report

    def step_package(self, project_name: str, modules: List[VendorIp],
                     total: ResourceUsage,
                     software_components: Tuple[str, ...] = ()) -> ProjectBundle:
        """Step 4: packaging into the consolidated project file."""
        bitstream = BitstreamPackage.build(
            self.device,
            modules,
            total,
            self.device_adapter.static_config(),
            self.device_adapter.dynamic_config(),
        )
        return ProjectBundle(project_name, bitstream, software_components)

    # --- orchestration -----------------------------------------------------

    def compile(
        self,
        project_name: str,
        modules: Iterable[VendorIp],
        extra_resources: ResourceUsage = ResourceUsage(),
        software_components: Tuple[str, ...] = (),
        effort: int = 0,
    ) -> BuildOutcome:
        """Run every step in order, timing each one.

        Raises :class:`DeploymentError` (wrapping the underlying adapter
        error) when any step fails, so callers see one failure type at
        the project boundary.
        """
        module_list: List[VendorIp] = list(modules)
        timings: List[StepTiming] = []
        clock = time.perf_counter

        start = clock()
        self.step_inspect(project_name, module_list)
        timings.append(StepTiming("inspect", clock() - start))

        start = clock()
        self.step_configure(module_list)
        timings.append(StepTiming("configure", clock() - start))

        start = clock()
        total, timing_report = self.step_fit(
            project_name, module_list, extra_resources, effort=effort)
        timings.append(StepTiming("fit", clock() - start))

        start = clock()
        bundle = self.step_package(project_name, module_list, total,
                                   software_components)
        timings.append(StepTiming("package", clock() - start))

        return BuildOutcome(bundle=bundle, step_timings=tuple(timings),
                            timing_report=timing_report)

    def build(
        self,
        project_name: str,
        modules: Iterable[VendorIp],
        extra_resources: ResourceUsage = ResourceUsage(),
        software_components: Tuple[str, ...] = (),
    ) -> ProjectBundle:
        """Check, configure, compile, and package (original surface)."""
        return self.compile(project_name, modules, extra_resources,
                            software_components).bundle
