"""Vendor adapters: key-value dependency structuring and rigid inspection.

The paper: "Harmonia incorporates the built-in handler to structure the
vendor dependencies of each module as a series of key-value pairs and
performs rigid inspections to ensure compatibility during deployment.
The key defines vendor-specific attributes such as CAD tools, IP
catalogs, etc.  The values are specified with independent version
numbers to simplify dependency checks."

Every :class:`repro.hw.ip.base.VendorIp` carries such a ``dependencies``
mapping; the adapter validates the whole module set against the
deployment environment before a build is allowed to proceed.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.errors import DependencyError
from repro.hw.ip.base import VendorIp
from repro.platform.vendor import Toolchain, Vendor


#: IP catalogs each toolchain ships (name -> available versions).
_CATALOGS: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "vivado": {
        "cmac_usplus": ("3.0", "3.1"),
        "xxv_ethernet": ("4.0", "4.1"),
        "qdma": ("4.0", "5.0"),
        "xdma": ("4.1",),
        "ddr4": ("2.2",),
        "hbm": ("1.0",),
        "axi_iic": ("2.1",),
        "axi_quad_spi": ("3.2",),
    },
    "quartus": {
        "alt_ehipc3": ("7.4", "7.5"),
        "mcdma": ("23.2",),
        "emif": ("23.2",),
        "axi_iic": ("2.1",),
        "axi_quad_spi": ("3.2",),
    },
    "inhouse-cad": {
        "bd_mac400": ("1.2",),
        "bd_bdma": ("2.0",),
        "axi_iic": ("2.1",),
        "axi_quad_spi": ("3.2",),
    },
}


@dataclass(frozen=True)
class InspectionReport:
    """Outcome of a rigid dependency inspection."""

    toolchain: Toolchain
    checked_modules: Tuple[str, ...]
    violations: Tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.violations


class VendorAdapter:
    """Inspects module dependencies against a deployment toolchain."""

    def __init__(self, toolchain: Toolchain) -> None:
        self.toolchain = toolchain
        self._environment: Dict[str, str] = {
            "tool": toolchain.name,
            "tool_version": toolchain.version,
            "script_language": toolchain.script_language.value,
            "ip_packaging": toolchain.ip_packaging.value,
        }

    @property
    def environment(self) -> Dict[str, str]:
        """The deployment environment as key-value pairs."""
        return dict(self._environment)

    def check_module(self, ip: VendorIp) -> List[str]:
        """Validate one module's dependencies; returns violation messages."""
        violations: List[str] = []
        deps = ip.dependencies
        tool = deps.get("tool", "any")
        if tool not in ("any", self.toolchain.name):
            violations.append(
                f"{ip.name}: requires tool {tool!r} but environment provides "
                f"{self.toolchain.name!r}"
            )
            return violations  # catalog checks are meaningless in a foreign tool
        wanted_version = deps.get("tool_version", "*")
        if wanted_version not in ("*", self.toolchain.version):
            violations.append(
                f"{ip.name}: requires {tool} {wanted_version} but environment has "
                f"{self.toolchain.version}"
            )
        catalog = deps.get("ip_catalog")
        if catalog is not None and tool != "any":
            available = _CATALOGS.get(self.toolchain.name, {})
            if catalog not in available:
                violations.append(
                    f"{ip.name}: IP catalog {catalog!r} not shipped with "
                    f"{self.toolchain.name} {self.toolchain.version}"
                )
            else:
                wanted_ip_version = deps.get("ip_version", "*")
                if wanted_ip_version not in ("*",) + available[catalog]:
                    versions = ", ".join(available[catalog])
                    violations.append(
                        f"{ip.name}: IP {catalog} version {wanted_ip_version} "
                        f"unavailable (has: {versions})"
                    )
        return violations

    def inspect(self, modules: Iterable[VendorIp]) -> InspectionReport:
        """Rigidly inspect a module set; never raises."""
        names: List[str] = []
        violations: List[str] = []
        for ip in modules:
            names.append(ip.name)
            violations.extend(self.check_module(ip))
        return InspectionReport(self.toolchain, tuple(names), tuple(violations))

    def require(self, modules: Iterable[VendorIp]) -> InspectionReport:
        """Inspect and raise :class:`DependencyError` on any violation."""
        report = self.inspect(modules)
        if not report.passed:
            detail = "; ".join(report.violations)
            raise DependencyError(f"dependency inspection failed: {detail}")
        return report
