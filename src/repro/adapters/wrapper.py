"""Lightweight interface wrappers (paper section 3.2).

A wrapper encapsulates a vendor IP's native interfaces (AXI4 or Avalon
flavours) into Harmonia's unified types.  Its two contractual
properties, both load-bearing for the evaluation, are reproduced
mechanically:

* **No throughput loss.**  The translation logic is fully pipelined
  (initiation interval 1), so the wrapper stage never becomes the
  bandwidth bottleneck of a chain (Figure 10's "maintains native
  throughput").
* **A few fixed cycles of latency.**  Output data is staged through a
  FIFO with sideband signals and width-converted by sequential logic;
  this costs :data:`WRAPPER_LATENCY_CYCLES` cycles of the IP's clock --
  nanoseconds against the microsecond application latency (Figure 10's
  latency curves and Figure 17's <1% increase).

The wrapper's resource cost is a small function of the data width (FIFO
+ translation registers), which is what keeps its overhead under 0.37%
of a device (Figure 16).
"""

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import InterfaceMismatchError
from repro.hw.ip.base import VendorIp
from repro.hw.protocols.base import InterfaceSpec, ProtocolFamily
from repro.hw.signal_types import (
    FAMILY_TO_UNIFIED,
    UnifiedPort,
    UnifiedType,
    make_unified_port,
)
from repro.metrics.resources import ResourceUsage
from repro.sim.pipeline import PipelineChain, PipelineStage

#: Fixed translation latency, in cycles of the wrapped IP's clock.
#: "consumes a few fixed clock cycles" -- two FIFO stages plus one
#: width-conversion register.
WRAPPER_LATENCY_CYCLES = 3

#: Depth of the staging FIFO that holds output data plus sideband.
WRAPPER_FIFO_DEPTH = 32


def wrapper_resources(data_width_bits: int, interface_count: int) -> ResourceUsage:
    """Resource cost of wrapping ``interface_count`` data interfaces.

    Per interface: a width-wide FIFO (BRAM once the buffer exceeds one
    36Kb block, LUTRAM below), translation muxes (~width/2 LUTs) and
    pipeline registers (~width FFs), plus a fixed control overhead.
    """
    if interface_count == 0:
        return ResourceUsage()
    fifo_bits = data_width_bits * WRAPPER_FIFO_DEPTH
    bram = math.ceil(fifo_bits / 36_864) if fifo_bits > 18_432 else 0
    lut_per_interface = data_width_bits // 2 + 120
    ff_per_interface = data_width_bits + 180
    return ResourceUsage(
        lut=lut_per_interface * interface_count,
        ff=ff_per_interface * interface_count,
        bram_36k=bram * interface_count,
    )


@dataclass(frozen=True)
class WrappedIp:
    """A vendor IP behind its interface wrapper."""

    ip: VendorIp
    data_ports: Tuple[UnifiedPort, ...]
    control_port: UnifiedPort
    irq_port: UnifiedPort
    resources: ResourceUsage

    @property
    def added_latency_ps(self) -> int:
        """Extra latency the wrapper adds to the data path."""
        return self.ip.clock.cycles_to_ps(WRAPPER_LATENCY_CYCLES)

    def wrapper_stage(self) -> PipelineStage:
        """The wrapper's fully pipelined translation stage."""
        return PipelineStage(
            name=f"{self.ip.name}.wrapper",
            clock=self.ip.clock,
            data_width_bits=self.ip.data_width_bits,
            latency_cycles=WRAPPER_LATENCY_CYCLES,
            initiation_interval=1,
        )

    def datapath_chain(self) -> PipelineChain:
        """IP stage followed by the wrapper stage (the wrapped data path)."""
        return PipelineChain(
            f"{self.ip.name}.wrapped",
            [self.ip.datapath_stage(), self.wrapper_stage()],
        )

    def native_chain(self) -> PipelineChain:
        """The bare IP data path, for native-vs-wrapped comparisons."""
        return PipelineChain(f"{self.ip.name}.native", [self.ip.datapath_stage()])


class InterfaceWrapper:
    """Builds :class:`WrappedIp` objects from vendor IPs."""

    def convert_stream(self, beats, target_family: ProtocolFamily):
        """Byte-exact data-plane translation between stream protocols.

        Accepts a list of AXI4-Stream or Avalon-ST beats (from
        :mod:`repro.hw.beats`) and re-frames it for the target protocol.
        This is the translation logic's functional contract; the timing
        contract lives in :meth:`WrappedIp.wrapper_stage`.
        """
        from repro.hw.beats import (
            AvalonStBeat,
            AxiStreamBeat,
            avalon_to_axi,
            axi_to_avalon,
        )

        if not beats:
            raise InterfaceMismatchError("no beats to convert")
        source_is_axi = isinstance(beats[0], AxiStreamBeat)
        if target_family is ProtocolFamily.AVALON_ST:
            return axi_to_avalon(beats) if source_is_axi else list(beats)
        if target_family is ProtocolFamily.AXI4_STREAM:
            return list(beats) if source_is_axi else avalon_to_axi(beats)
        raise InterfaceMismatchError(
            f"cannot convert a stream to {target_family.value!r}"
        )

    def convert_interface(self, spec: InterfaceSpec, width_bits: int) -> UnifiedPort:
        """Convert one vendor interface spec into a unified port."""
        unified_type = FAMILY_TO_UNIFIED.get(spec.family)
        if unified_type is None:
            raise InterfaceMismatchError(
                f"interface {spec.name!r} speaks {spec.family.value!r}, which the "
                "lightweight wrapper does not translate; add a protocol mapping"
            )
        return make_unified_port(unified_type, data_width_bits=width_bits)

    def wrap(self, ip: VendorIp) -> WrappedIp:
        """Wrap every interface of ``ip`` into unified ports."""
        data_ports: List[UnifiedPort] = []
        for spec in ip.interfaces:
            data_ports.append(self.convert_interface(spec, ip.data_width_bits))
        if ip.control_interface is not None:
            control_port = make_unified_port(UnifiedType.REG)
        else:
            control_port = make_unified_port(UnifiedType.REG)
        irq_port = make_unified_port(UnifiedType.IRQ)
        return WrappedIp(
            ip=ip,
            data_ports=tuple(data_ports),
            control_port=control_port,
            irq_port=irq_port,
            resources=wrapper_resources(ip.data_width_bits, len(ip.interfaces)),
        )
