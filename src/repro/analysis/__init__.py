"""Result formatting for the benchmark harness."""

from repro.analysis.tables import format_table, format_percent, format_series

__all__ = ["format_percent", "format_series", "format_table"]
