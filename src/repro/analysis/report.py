"""Collate benchmark artifacts into one reproduction report.

``pytest benchmarks/ --benchmark-only`` leaves one text artifact per
experiment under ``benchmarks/results/``; this module stitches them into
a single report (the machine-generated companion to EXPERIMENTS.md) and
checks completeness against the expected experiment list.
"""

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Every artifact a full benchmark run must produce.
EXPECTED_EXPERIMENTS: Tuple[str, ...] = (
    "fig03a_shell_role_workload",
    "fig03b_vendor_differences",
    "fig03c_fleet_growth",
    "fig03d_init_sequences",
    "fig10a_mac_wrapper",
    "fig10b_pcie_wrapper",
    "fig10c_ddr_wrapper",
    "fig11_tailoring_resources",
    "fig12_tailoring_configs",
    "fig13_command_modifications",
    "fig14_rbb_reuse",
    "fig15_app_reuse",
    "fig16_overhead",
    "fig16_overhead_all_devices",
    "fig17a_sec_gateway",
    "fig17b_layer4_lb",
    "fig17c_host_network",
    "fig17d_retrieval",
    "fig18a_framework_resources",
    "fig18b_matmul",
    "fig18c_database",
    "fig18d_tcp",
    "table1_capabilities",
    "table2_setup",
    "table3_device_support",
    "table4_interface_simplification",
)

#: Extension artifacts: reported when present, not required.
EXTENSION_EXPERIMENTS: Tuple[str, ...] = (
    "ablation_interleaving",
    "ablation_hot_cache",
    "ablation_active_scheduling",
    "ablation_tailoring_levels",
    "ablation_cdc_matching",
    "ablation_tailoring_power",
    "ext_command_rtt",
    "ext_command_burst",
    "ext_buffer_sweep",
    "ext_drr_fairness",
)


def default_results_dir() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def load_results(results_dir: Optional[pathlib.Path] = None) -> Dict[str, str]:
    """Read every artifact in the results directory."""
    directory = results_dir or default_results_dir()
    if not directory.is_dir():
        raise ConfigurationError(
            f"no results at {directory}; run pytest benchmarks/ --benchmark-only first"
        )
    return {
        path.stem: path.read_text().rstrip()
        for path in sorted(directory.glob("*.txt"))
    }


def missing_experiments(results: Dict[str, str]) -> List[str]:
    """Required experiments a run failed to produce."""
    return [name for name in EXPECTED_EXPERIMENTS if name not in results]


def default_perf_baseline_path() -> pathlib.Path:
    """Where ``make bench-smoke`` leaves the runtime perf baseline."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_runtime.json"


def default_sweep_baseline_path() -> pathlib.Path:
    """Where ``make bench-sweep`` leaves the sweep-runner timings."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_sweep.json"


def load_sweep_baseline(
    path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, Any]]:
    """The sweep-runner serial/parallel/cached timings, if recorded."""
    return load_perf_baseline(path or default_sweep_baseline_path())


def default_vector_baseline_path() -> pathlib.Path:
    """Where ``make bench-vector`` leaves the vector-kernel timings."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_vector.json"


def load_vector_baseline(
    path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, Any]]:
    """The vector-kernel vs scalar-batch timings, if recorded."""
    return load_perf_baseline(path or default_vector_baseline_path())


def default_fleet_baseline_path() -> pathlib.Path:
    """Where ``make bench-fleet`` leaves the fleet serving results."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_fleet.json"


def load_fleet_baseline(
    path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, Any]]:
    """The fleet-scale serving results, if a fleet run produced them."""
    return load_perf_baseline(path or default_fleet_baseline_path())


def default_obs_baseline_path() -> pathlib.Path:
    """Where ``make bench-obs`` leaves the observability overheads."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_obs.json"


def load_obs_baseline(
    path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, Any]]:
    """The tracing/streaming overhead numbers, if recorded."""
    return load_perf_baseline(path or default_obs_baseline_path())


def default_build_baseline_path() -> pathlib.Path:
    """Where ``make bench-build`` leaves the build-farm timings."""
    return pathlib.Path(__file__).resolve().parents[3] / "BENCH_build.json"


def load_build_baseline(
    path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, Any]]:
    """The build-farm naive/cold/warm timings, if recorded."""
    return load_perf_baseline(path or default_build_baseline_path())


def load_perf_baseline(
    path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, Any]]:
    """The machine-readable runtime baseline, if a smoke run produced one."""
    baseline = path or default_perf_baseline_path()
    if not baseline.is_file():
        return None
    try:
        return json.loads(baseline.read_text())
    except (ValueError, OSError):
        return None


def _baseline_lines(title: str, baseline: Dict[str, Any]) -> List[str]:
    lines = ["", "-" * 72, title, "-" * 72, ""]
    for key in sorted(baseline):
        lines.append(f"  {key}: {baseline[key]}")
    return lines


def _fleet_lines(fleet: Dict[str, Any]) -> List[str]:
    """A compact per-policy summary of a ``repro.cli fleet`` artifact."""
    lines = ["", "-" * 72, "FLEET SERVING BASELINE (repro.cli fleet)",
             "-" * 72, ""]
    spec = fleet.get("spec", {})
    lines.append(
        f"  {spec.get('flow_count', '?'):,} flows x "
        f"{spec.get('device_count', '?'):,} devices x "
        f"{spec.get('tenant_count', '?')} tenants, "
        f"{fleet.get('effective_offered_gbps', 0) / 1_000:.1f} of "
        f"{fleet.get('total_capacity_gbps', 0) / 1_000:.1f} Tbps offered"
    )
    for policy in fleet.get("policies", []):
        lines.append(
            f"  {policy.get('policy', '?'):13s} "
            f"p50 {policy.get('p50_ns', 0) / 1_000:8.1f} us  "
            f"p99 {policy.get('p99_ns', 0) / 1_000:9.1f} us  "
            f"util {policy.get('utilization_mean', 0):.2f}  "
            f"imbalance {policy.get('imbalance', 0):.2f}"
        )
    if "best_policy" in fleet:
        lines.append(f"  best policy by p99: {fleet['best_policy']}")
    return lines


def build_report(results_dir: Optional[pathlib.Path] = None) -> str:
    """The full text report, sectioned into paper results and extensions."""
    results = load_results(results_dir)
    missing = missing_experiments(results)
    lines: List[str] = ["=" * 72,
                        "Harmonia reproduction -- benchmark report",
                        "=" * 72, ""]
    if missing:
        lines.append("INCOMPLETE RUN -- missing experiments:")
        lines.extend(f"  - {name}" for name in missing)
        lines.append("")
    lines.append(f"paper experiments reproduced: "
                 f"{len(EXPECTED_EXPERIMENTS) - len(missing)}"
                 f"/{len(EXPECTED_EXPERIMENTS)}")
    extensions_present = [name for name in EXTENSION_EXPERIMENTS if name in results]
    lines.append(f"extension experiments present: {len(extensions_present)}"
                 f"/{len(EXTENSION_EXPERIMENTS)}")
    lines.append("")
    lines.append("-" * 72)
    lines.append("PAPER TABLES AND FIGURES")
    lines.append("-" * 72)
    for name in EXPECTED_EXPERIMENTS:
        if name in results:
            lines.append("")
            lines.append(results[name])
    if extensions_present:
        lines.append("")
        lines.append("-" * 72)
        lines.append("EXTENSIONS AND ABLATIONS")
        lines.append("-" * 72)
        for name in extensions_present:
            lines.append("")
            lines.append(results[name])
    baseline = load_perf_baseline()
    if baseline is not None:
        lines.extend(_baseline_lines(
            "RUNTIME PERF BASELINE (benchmarks/perf_smoke.py)", baseline))
    sweep = load_sweep_baseline()
    if sweep is not None:
        lines.extend(_baseline_lines(
            "SWEEP RUNNER BASELINE (benchmarks/sweep_smoke.py)", sweep))
    vector = load_vector_baseline()
    if vector is not None:
        lines.extend(_baseline_lines(
            "VECTOR KERNEL BASELINE (benchmarks/vector_smoke.py)", vector))
    fleet = load_fleet_baseline()
    if fleet is not None:
        lines.extend(_fleet_lines(fleet))
    obs = load_obs_baseline()
    if obs is not None:
        lines.extend(_baseline_lines(
            "OBSERVABILITY BASELINE (benchmarks/obs_smoke.py)", obs))
    build = load_build_baseline()
    if build is not None:
        lines.extend(_baseline_lines(
            "BUILD FARM BASELINE (benchmarks/build_smoke.py)", build))
    return "\n".join(lines) + "\n"
