"""Plain-text table/series formatting used by the benchmark harness.

Every benchmark prints the rows or series the corresponding paper
table/figure reports, in a stable text format that ends up in
``bench_output.txt`` (and is archived in EXPERIMENTS.md).
"""

from typing import Iterable, List, Mapping, Sequence, Tuple, Union

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1_000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]],
                 title: str = "") -> str:
    """A monospace table with aligned columns."""
    rendered = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def format_percent(fraction: float, digits: int = 1) -> str:
    """0.137 -> '13.7%'."""
    return f"{fraction * 100:.{digits}f}%"


def format_series(name: str, points: Mapping[Cell, Cell], unit: str = "") -> str:
    """A one-line x->y series ('Fig 18b vitis: x4=953 x8=1905 ...')."""
    body = " ".join(f"{x}={_render(y)}" for x, y in points.items())
    suffix = f" {unit}" if unit else ""
    return f"{name}: {body}{suffix}"
