"""The five real-world cloud applications of the evaluation (Table 2)."""

from repro.apps.base import CloudApplication, PerformanceSample
from repro.apps.sec_gateway import SecGateway
from repro.apps.layer4_lb import Layer4LoadBalancer
from repro.apps.host_network import HostNetwork
from repro.apps.retrieval import RetrievalApp
from repro.apps.board_test import BoardTest

__all__ = [
    "BoardTest",
    "CloudApplication",
    "HostNetwork",
    "Layer4LoadBalancer",
    "PerformanceSample",
    "RetrievalApp",
    "all_applications",
    "application_by_name",
    "application_names",
]

#: The evaluation's application mix, in Table 2 order.  A type registry
#: rather than an instance list: some constructors are expensive
#: (RetrievalApp builds its embedding corpus), so name lookups must not
#: pay for applications they never asked for.
_APP_TYPES = (SecGateway, Layer4LoadBalancer, HostNetwork, RetrievalApp,
              BoardTest)


def all_applications():
    """Fresh instances of the application mix, in Table 2 order."""
    return [app_type() for app_type in _APP_TYPES]


def application_names():
    """The registered names, in Table 2 order, without constructing any."""
    return [app_type.name for app_type in _APP_TYPES]


def application_by_name(name: str) -> CloudApplication:
    """Look one application up by its registered name.

    Sweep workers reconstruct applications from their names (only plain
    strings cross the process boundary), so the lookup lives here rather
    than in the CLI -- which shares this single path instead of keeping
    its own copy.  Only the named application is constructed.  Unknown
    names raise :class:`repro.errors.ConfigurationError` listing the
    valid names, the same loud contract the scenario spec uses
    everywhere.
    """
    for app_type in _APP_TYPES:
        if app_type.name == name:
            return app_type()
    from repro.errors import ConfigurationError

    known = ", ".join(application_names())
    raise ConfigurationError(f"unknown application {name!r}; known: {known}")
