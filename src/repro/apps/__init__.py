"""The five real-world cloud applications of the evaluation (Table 2)."""

from repro.apps.base import CloudApplication, PerformanceSample
from repro.apps.sec_gateway import SecGateway
from repro.apps.layer4_lb import Layer4LoadBalancer
from repro.apps.host_network import HostNetwork
from repro.apps.retrieval import RetrievalApp
from repro.apps.board_test import BoardTest

__all__ = [
    "BoardTest",
    "CloudApplication",
    "HostNetwork",
    "Layer4LoadBalancer",
    "PerformanceSample",
    "RetrievalApp",
    "all_applications",
]


def all_applications():
    """The evaluation's application mix, in Table 2 order."""
    return [SecGateway(), Layer4LoadBalancer(), HostNetwork(), RetrievalApp(), BoardTest()]
