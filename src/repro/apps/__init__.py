"""The five real-world cloud applications of the evaluation (Table 2)."""

from repro.apps.base import CloudApplication, PerformanceSample
from repro.apps.sec_gateway import SecGateway
from repro.apps.layer4_lb import Layer4LoadBalancer
from repro.apps.host_network import HostNetwork
from repro.apps.retrieval import RetrievalApp
from repro.apps.board_test import BoardTest

__all__ = [
    "BoardTest",
    "CloudApplication",
    "HostNetwork",
    "Layer4LoadBalancer",
    "PerformanceSample",
    "RetrievalApp",
    "all_applications",
    "application_by_name",
]


def all_applications():
    """The evaluation's application mix, in Table 2 order."""
    return [SecGateway(), Layer4LoadBalancer(), HostNetwork(), RetrievalApp(), BoardTest()]


def application_by_name(name: str) -> CloudApplication:
    """Look one application up by its registered name.

    Sweep workers reconstruct applications from their names (only plain
    strings cross the process boundary), so the lookup lives here rather
    than in the CLI -- which shares this single path instead of keeping
    its own copy.  Unknown names raise
    :class:`repro.errors.ConfigurationError` listing the valid names,
    the same loud contract the scenario spec uses everywhere.
    """
    for app in all_applications():
        if app.name == name:
            return app
    from repro.errors import ConfigurationError

    known = ", ".join(app.name for app in all_applications())
    raise ConfigurationError(f"unknown application {name!r}; known: {known}")
