"""Common machinery for the FPGA-accelerated cloud applications.

Every application provides:

* a :class:`repro.core.role.Role` (demands + role footprint + role LoC),
* a *role pipeline stage* modelling its on-FPGA processing, and
* a workload runner measuring throughput/latency **with** and
  **without** Harmonia's platform-specific layer in the data path
  (Figure 17's comparison).

"Without Harmonia" means the role talks to the vendor IP natively --
no interface wrapper, no Ex-function stage, no parameterised CDC;
"with Harmonia" inserts those fully pipelined stages.  Because every
inserted stage has initiation interval 1, throughput is identical and
only a fixed nanosecond-scale latency is added -- measured, not
assumed.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.rbb.base import Rbb
from repro.core.rbb.cdc import CdcEndpoint, ParamClockDomainCrossing
from repro.core.role import Role
from repro.core.shell import UnifiedShell, build_unified_shell
from repro.core.tailoring import HierarchicalTailor, TailoredShell
from repro.platform.device import FpgaDevice
from repro.runtime import SimContext, current_context
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import PipelineChain, PipelineStage, run_packet_sweep


@dataclass(frozen=True)
class PerformanceSample:
    """One (workload point, throughput, latency) measurement."""

    label: str
    throughput_gbps: float
    latency_us: float

    @property
    def latency_ns(self) -> float:
        return self.latency_us * 1_000.0


class CloudApplication:
    """Base class for the five evaluation applications."""

    #: Subclasses set these.
    name: str = "application"
    role_latency_cycles: int = 40   # the role's own processing depth

    def role(self) -> Role:
        raise NotImplementedError

    # --- deployment ------------------------------------------------------------

    def tailored_shell(self, device: FpgaDevice) -> TailoredShell:
        """This application's role-specific shell on ``device``."""
        unified = build_unified_shell(device, tenants=self.role().demands.tenants)
        return HierarchicalTailor(unified).tailor(self.role())

    # --- data-path construction ---------------------------------------------------

    def _entry_rbb(self, shell: TailoredShell) -> Rbb:
        """The RBB traffic enters through (network for BITW, host for
        look-aside)."""
        if "network" in shell.rbbs:
            return shell.rbbs["network"]
        return shell.rbbs["host"]

    def role_stage(self, rbb: Rbb) -> PipelineStage:
        """The role's processing as a fully pipelined stage.

        The role runs in its own clock domain at the demanded frequency;
        its width is chosen by the S x M = R x U rule so the CDC stays
        lossless.
        """
        from repro.core.rbb.cdc import matching_user_width

        demands = self.role().demands
        user_clock = ClockDomain(f"{self.name}_role", demands.user_clock_mhz)
        width = matching_user_width(
            rbb.instance.clock.freq_mhz, rbb.instance.data_width_bits,
            demands.user_clock_mhz,
        )
        return PipelineStage(
            name=f"{self.name}.role",
            clock=user_clock,
            data_width_bits=width,
            latency_cycles=self.role_latency_cycles,
            initiation_interval=1,
        )

    def link_stage(self, rbb: Rbb) -> PipelineStage:
        """The physical link: line-rate limited with framing overhead.

        An Ethernet cage pays 20 B preamble+IFG per frame; a PCIe link
        pays ~24 B of TLP/DLL framing per transaction.  This is what
        makes small-packet throughput sit below line rate and rise with
        packet size (the Figure 17/18d x-axis behaviour).
        """
        rate_gbps = rbb.instance.performance_gbps
        overhead = 20 if rbb.kind.value == "network" else 24
        link_clock = ClockDomain(f"{rbb.name}_line", rate_gbps * 1_000 / 64)
        return PipelineStage(
            name=f"{rbb.name}.link",
            clock=link_clock,
            data_width_bits=64,
            latency_cycles=8,
            per_transaction_overhead_bytes=overhead,
        )

    def datapath(self, shell: TailoredShell, with_harmonia: bool) -> PipelineChain:
        """Link -> RBB ingress -> (wrapper, Ex-fns, CDC) -> role -> egress."""
        rbb = self._entry_rbb(shell)
        role_stage = self.role_stage(rbb)
        stages: List[PipelineStage] = [
            self.link_stage(rbb),
            rbb.instance.datapath_stage("(ingress)"),
        ]
        if with_harmonia:
            stages.append(rbb.wrapped.wrapper_stage())
            exfn = rbb.ex_function_stage()
            if exfn is not None:
                stages.append(exfn)
            crossing = ParamClockDomainCrossing(
                f"{self.name}.cdc",
                source=CdcEndpoint(rbb.instance.clock, rbb.instance.data_width_bits),
                destination=CdcEndpoint(role_stage.clock, role_stage.data_width_bits),
            )
            crossing.require_lossless()
            stages.append(crossing.stage())
        stages.append(role_stage)
        stages.append(rbb.instance.datapath_stage("(egress)"))
        name = f"{self.name}.{'harmonia' if with_harmonia else 'native'}"
        return PipelineChain(name, stages)

    # --- measurement ----------------------------------------------------------------

    #: End-to-end deployment path outside the FPGA: host stack, NIC/PCIe
    #: round trip, and a ToR hop.  Identical with and without Harmonia;
    #: it is the microsecond baseline against which the wrapper's
    #: nanosecond addition is negligible (the paper's <1% claim).
    PATH_LATENCY_US = 2.0

    def sample_for_point(
        self,
        packet_size_bytes: int,
        throughput_bps: float,
        mean_latency_ns: float,
        include_path_latency: bool = True,
    ) -> PerformanceSample:
        """Fold one raw sweep-point measurement into a Figure-17 sample.

        This is the single place the path-latency constant is applied;
        :meth:`measure` and the parallel sweep runner
        (:mod:`repro.runtime.sweep`) both go through it, so their samples
        are identical by construction.
        """
        path_us = self.PATH_LATENCY_US if include_path_latency else 0.0
        return PerformanceSample(
            label=f"{packet_size_bytes}B",
            throughput_gbps=throughput_bps / 1e9,
            latency_us=mean_latency_ns / 1_000.0 + path_us,
        )

    def measure(
        self,
        device: FpgaDevice,
        packet_sizes: Tuple[int, ...] = (64, 128, 256, 512, 1024),
        packets_per_point: int = 2_000,
        with_harmonia: bool = True,
        include_path_latency: bool = True,
        context: Optional[SimContext] = None,
    ) -> List[PerformanceSample]:
        """Throughput/latency sweep over packet sizes (Figure 17a-c).

        Run under a :class:`~repro.runtime.SimContext` -- passed
        explicitly or active ambiently -- the sweep becomes replayable:
        shell construction and every sweep point land on the context's
        trace bus (per-stage spans through link -> RBB -> wrapper/CDC ->
        role) and the per-point results in its metrics registry under
        ``app.<name>``.  With no context the sweep is untraced and
        byte-for-byte the old behaviour.
        """
        ctx = context if context is not None else current_context()
        if ctx is not None and current_context() is not ctx:
            with ctx:
                return self._measure_in_context(
                    ctx, device, packet_sizes, packets_per_point,
                    with_harmonia, include_path_latency,
                )
        return self._measure_in_context(
            ctx, device, packet_sizes, packets_per_point, with_harmonia,
            include_path_latency,
        )

    def _measure_in_context(
        self,
        ctx: Optional[SimContext],
        device: FpgaDevice,
        packet_sizes: Tuple[int, ...],
        packets_per_point: int,
        with_harmonia: bool,
        include_path_latency: bool,
    ) -> List[PerformanceSample]:
        variant = "harmonia" if with_harmonia else "native"
        sweep_span = ns = None
        if ctx is not None:
            sweep_span = ctx.trace.begin(
                f"app.{self.name}.measure", ts_ps=0, device=device.name,
                variant=variant,
            )
            ns = ctx.metrics.namespace(f"app.{self.name}.{variant}")
        shell = self.tailored_shell(device)
        samples: List[PerformanceSample] = []
        for size in packet_sizes:
            chain = self.datapath(shell, with_harmonia)
            throughput_bps, latency_ns = run_packet_sweep(
                chain, packet_size_bytes=size, packet_count=packets_per_point,
                context=ctx,
            )
            sample = self.sample_for_point(
                size, throughput_bps, latency_ns,
                include_path_latency=include_path_latency,
            )
            samples.append(sample)
            if ns is not None:
                point = ns.namespace(sample.label)
                point.set_gauge("throughput_gbps", sample.throughput_gbps)
                point.set_gauge("latency_us", sample.latency_us)
        if ctx is not None:
            ctx.trace.end(sweep_span, points=len(samples))
        return samples

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
