"""Board Test: infrastructure validation of custom FPGA boards (Table 2).

"The Board Test serves infrastructure services to test the performance
of custom FPGA boards."  It supports diverse architectures (the Table 2
triangle) because it has to exercise every peripheral the board
carries: MAC loopback, memory march patterns, DMA echo, sensor reads.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.apps.base import CloudApplication
from repro.apps.march_test import MarchTester, MemoryModel
from repro.core.rbb.host import DmaDescriptor
from repro.core.rbb.memory import MemoryAccess
from repro.core.role import Architecture, Role, RoleDemands
from repro.core.tailoring import TailoredShell
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice
from repro.sim.pipeline import run_packet_sweep


@dataclass
class TestReport:
    """Outcome of one board-test item."""

    item: str
    passed: bool
    measured: float
    expected: float
    unit: str

    def __str__(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] {self.item}: {self.measured:.2f} {self.unit} (>= {self.expected:.2f})"


class BoardTest(CloudApplication):
    """The board-validation application."""

    name = "board-test"
    role_latency_cycles = 16

    def role(self) -> Role:
        return Role(
            name=self.name,
            architecture=Architecture.FLEXIBLE,
            demands=RoleDemands(
                network_gbps=100.0,
                memory_bandwidth_gibps=19.0,
                memory_capacity_gib=4,
                host_gbps=64.0,
                bulk_dma=True,
                needs_multicast=True,        # exercises the packet filter too
                needs_flow_steering=True,
                needs_hot_cache=True,
                tenants=2,
                user_clock_mhz=300.0,
            ),
            resources=ResourceUsage(lut=58_000, ff=84_000, bram_36k=184, uram=0, dsp=64),
            loc=LocInventory(common=9_400, vendor_specific=0, device_specific=820,
                             generated=2_100),
            description="peripheral validation for custom boards",
        )

    def run_suite(self, device: FpgaDevice,
                  shell: Optional[TailoredShell] = None) -> List[TestReport]:
        """Exercise every peripheral the board carries."""
        if shell is None:
            shell = self.tailored_shell(device)
        reports: List[TestReport] = []
        network = shell.rbbs.get("network")
        if network is not None:
            chain = network.datapath_chain()
            throughput_bps, _latency = run_packet_sweep(chain, 1_024, 500)
            expected = network.instance.performance_gbps * 0.95
            reports.append(
                TestReport("mac-loopback", throughput_bps / 1e9 >= expected,
                           throughput_bps / 1e9, expected, "Gbps")
            )
        memory = shell.rbbs.get("memory")
        if memory is not None:
            accesses = [MemoryAccess(address=index * 64) for index in range(2_000)]
            result = memory.run_accesses(accesses)
            # A sequential march should sustain a healthy share of one
            # channel's burst bandwidth.
            expected = 5.0
            reports.append(
                TestReport("memory-march", result.bandwidth_gbps >= expected,
                           result.bandwidth_gbps, expected, "Gbps")
            )
            # Pattern verification over a representative window: walking
            # ones/zeros, address-in-address, and MATS+ must all pass.
            tester = MarchTester(MemoryModel(4_096))
            tester.run_all()
            reports.append(
                TestReport("memory-patterns", tester.passed,
                           float(len(tester.faults)), 0.0, "faults")
            )
        host = shell.rbbs.get("host")
        if host is not None:
            descriptors = [
                DmaDescriptor(queue_id=host.scheduler.queues_of_tenant(0)[0],
                              size_bytes=4_096)
                for _ in range(256)
            ]
            count, total = host.transfer(descriptors)
            reports.append(
                TestReport("dma-echo", count == 256, float(count), 256.0, "descriptors")
            )
        # Sensor sanity through the management blocks.
        for ip in shell.management:
            if ip.name.startswith("sensor"):
                regfile = ip.register_file()
                temperature = regfile.read_by_name("TEMP_C")
                reports.append(
                    TestReport("sensor-read", 0 < temperature < 100,
                               float(temperature), 1.0, "degC")
                )
        return reports

    @staticmethod
    def all_passed(reports: List[TestReport]) -> bool:
        return all(report.passed for report in reports)
