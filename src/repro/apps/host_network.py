"""Host Network: network-function offloading (Table 2 row 3).

"The Host Networking offload network functions (e.g., Checksum, OVS,
etc.) into FPGAs."

The role implements an internet checksum engine and an OVS-style exact
match-action flow cache with an upcall path for misses (the classic
megaflow split: first packet of a flow goes to software, the installed
flow entry handles the rest in hardware).
"""

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.base import CloudApplication
from repro.core.role import Architecture, Role, RoleDemands
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.workloads.packets import FiveTuple, Packet


def internet_checksum(data: bytes) -> int:
    """RFC 1071 16-bit one's-complement checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for index in range(0, len(data), 2):
        total += (data[index] << 8) | data[index + 1]
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


class FlowAction(enum.Enum):
    OUTPUT = "output"
    DROP = "drop"
    TO_HOST = "to-host"


@dataclass(frozen=True)
class FlowEntry:
    action: FlowAction
    out_port: int = 0


class OvsOffload:
    """Exact-match flow cache with software upcalls on miss."""

    def __init__(self, capacity: int = 65_536) -> None:
        self.capacity = capacity
        self.flow_cache: Dict[FiveTuple, FlowEntry] = {}
        self.cache_hits = 0
        self.upcalls = 0

    def install(self, flow: FiveTuple, entry: FlowEntry) -> None:
        if len(self.flow_cache) >= self.capacity and flow not in self.flow_cache:
            # Simple eviction: drop an arbitrary (oldest-inserted) entry.
            self.flow_cache.pop(next(iter(self.flow_cache)))
        self.flow_cache[flow] = entry

    def classify(self, packet: Packet) -> FlowEntry:
        """Hardware fast path; a miss is an upcall that installs a rule."""
        entry = self.flow_cache.get(packet.flow)
        if entry is not None:
            self.cache_hits += 1
            return entry
        self.upcalls += 1
        # The "software slow path": a deterministic default action.
        entry = FlowEntry(FlowAction.OUTPUT, out_port=packet.flow.dst_port % 8)
        self.install(packet.flow, entry)
        return entry

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.upcalls
        return self.cache_hits / total if total else 0.0


class HostNetwork(CloudApplication):
    """The Host Network offloading application."""

    name = "host-network"
    role_latency_cycles = 48  # parser + match-action + checksum stages

    def __init__(self) -> None:
        self.ovs = OvsOffload()
        self.checksummed = 0

    def role(self) -> Role:
        return Role(
            name=self.name,
            architecture=Architecture.BUMP_IN_THE_WIRE,
            demands=RoleDemands(
                network_gbps=100.0,
                host_gbps=100.0,     # full packet path to the host
                bulk_dma=False,
                needs_flow_steering=True,
                tenants=4,
                user_clock_mhz=350.0,
            ),
            resources=ResourceUsage(lut=96_000, ff=142_000, bram_36k=432, uram=0, dsp=0),
            loc=LocInventory(common=10_400, vendor_specific=0, device_specific=900,
                             generated=2_400),
            description="checksum + OVS offload SmartNIC",
        )

    def process(self, packets: Iterable[Packet]) -> Dict[FlowAction, int]:
        """Classify a batch and checksum every forwarded payload."""
        outcome: Dict[FlowAction, int] = {action: 0 for action in FlowAction}
        for packet in packets:
            entry = self.ovs.classify(packet)
            outcome[entry.action] += 1
            if entry.action is FlowAction.OUTPUT:
                pseudo_header = packet.flow.src_ip.to_bytes(4, "big") + \
                    packet.flow.dst_ip.to_bytes(4, "big")
                internet_checksum(pseudo_header)
                self.checksummed += 1
        return outcome
