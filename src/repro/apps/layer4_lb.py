"""Layer-4 LB: stateful layer-4 load balancing (Table 2 row 2).

"The Layer-4 LB provides layer-4 stateful load-balancing services for
public applications.  FPGAs work as SmartNICs to distribute incoming
flows to many real servers."

The role implements Maglev-style consistent hashing for new flows plus
a connection table that pins established flows to their chosen backend
(the *stateful* part: backend changes never break existing
connections).
"""

import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.base import CloudApplication
from repro.core.role import Architecture, Role, RoleDemands
from repro.errors import ConfigurationError
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.workloads.packets import FiveTuple, Packet


def _is_prime(value: int) -> bool:
    if value < 2:
        return False
    divisor = 2
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 1
    return True


class MaglevTable:
    """Maglev consistent-hash lookup table (Eisenbud et al., NSDI'16)."""

    def __init__(self, backends: List[str], table_size: int = 251) -> None:
        if not backends:
            raise ConfigurationError("load balancer needs at least one backend")
        if not _is_prime(table_size):
            raise ConfigurationError("Maglev table size must be prime")
        self.backends = list(backends)
        self.table_size = table_size
        self.table = self._populate()

    def _populate(self) -> List[str]:
        """The Maglev population algorithm: permutation-based filling."""
        offsets = []
        skips = []
        for backend in self.backends:
            digest = zlib.crc32(backend.encode()) & 0xFFFF_FFFF
            offsets.append(digest % self.table_size)
            skips.append(digest % (self.table_size - 1) + 1)
        table: List[Optional[str]] = [None] * self.table_size
        next_index = [0] * len(self.backends)
        filled = 0
        while filled < self.table_size:
            for backend_index, backend in enumerate(self.backends):
                while True:
                    slot = (
                        offsets[backend_index]
                        + next_index[backend_index] * skips[backend_index]
                    ) % self.table_size
                    next_index[backend_index] += 1
                    if table[slot] is None:
                        table[slot] = backend
                        filled += 1
                        break
                if filled == self.table_size:
                    break
        return [entry for entry in table if entry is not None]

    def lookup(self, flow: FiveTuple) -> str:
        return self.table[flow.hash32() % self.table_size]

    def share_of(self, backend: str) -> float:
        """Fraction of table slots owned by ``backend`` (load evenness)."""
        return self.table.count(backend) / self.table_size


class Layer4LoadBalancer(CloudApplication):
    """The Layer-4 LB application."""

    name = "layer4-lb"
    role_latency_cycles = 32

    def __init__(self, backends: Optional[List[str]] = None) -> None:
        self.backends = backends or [f"rs-{index:02d}" for index in range(16)]
        self.maglev = MaglevTable(self.backends)
        self.connection_table: Dict[FiveTuple, str] = {}
        self.new_flows = 0
        self.established_hits = 0

    def role(self) -> Role:
        return Role(
            name=self.name,
            architecture=Architecture.BUMP_IN_THE_WIRE,
            demands=RoleDemands(
                network_gbps=100.0,
                memory_bandwidth_gibps=19.0,   # connection table spill
                memory_capacity_gib=8,
                host_gbps=16.0,
                bulk_dma=False,
                needs_flow_steering=True,
                tenants=4,
                user_clock_mhz=350.0,
            ),
            resources=ResourceUsage(lut=78_000, ff=104_000, bram_36k=308, uram=0, dsp=0),
            loc=LocInventory(common=6_300, vendor_specific=0, device_specific=640,
                             generated=1_500),
            description="stateful L4 load balancing as a SmartNIC",
        )

    # --- data plane ------------------------------------------------------------

    def select_backend(self, packet: Packet) -> str:
        """Connection-table hit, else Maglev + table insert."""
        backend = self.connection_table.get(packet.flow)
        if backend is not None:
            self.established_hits += 1
            return backend
        backend = self.maglev.lookup(packet.flow)
        self.connection_table[packet.flow] = backend
        self.new_flows += 1
        return backend

    def distribute(self, packets: Iterable[Packet]) -> Dict[str, int]:
        """Distribute a batch; returns packets-per-backend."""
        loads: Dict[str, int] = {backend: 0 for backend in self.backends}
        for packet in packets:
            loads[self.select_backend(packet)] += 1
        return loads

    def remove_backend(self, backend: str) -> None:
        """Drain a backend: new flows avoid it, established flows keep it.

        This is the stateful guarantee the connection table provides.
        """
        if backend not in self.backends:
            raise ConfigurationError(f"unknown backend {backend!r}")
        self.backends.remove(backend)
        self.maglev = MaglevTable(self.backends, self.maglev.table_size)
