"""Memory march tests for the Board Test application.

A real board-validation suite does not just measure bandwidth -- it
writes pattern sequences and verifies them back to catch stuck-at
bits, coupling faults, and address-decoder aliasing.  This module
implements the classic patterns over a byte-addressable memory model
with injectable faults, so the Board Test app can demonstrate an
actual failing board being caught.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError


class FaultKind(enum.Enum):
    STUCK_AT_ZERO = "stuck-at-0"
    STUCK_AT_ONE = "stuck-at-1"
    ADDRESS_ALIAS = "address-alias"


@dataclass(frozen=True)
class InjectedFault:
    """A hardware defect planted into the memory model."""

    kind: FaultKind
    address: int
    bit: int = 0
    alias_of: int = 0


class MemoryModel:
    """A byte-addressable DRAM model with optional defects."""

    def __init__(self, size_bytes: int, faults: Tuple[InjectedFault, ...] = ()) -> None:
        if size_bytes < 1:
            raise ConfigurationError("memory must have at least one byte")
        self.size_bytes = size_bytes
        self._data = np.zeros(size_bytes, dtype=np.uint8)
        self._faults = tuple(faults)
        for fault in self._faults:
            if not 0 <= fault.address < size_bytes:
                raise ConfigurationError(f"fault address {fault.address:#x} out of range")

    def _resolve(self, address: int) -> int:
        for fault in self._faults:
            if fault.kind is FaultKind.ADDRESS_ALIAS and address == fault.address:
                return fault.alias_of
        return address

    def write(self, address: int, value: int) -> None:
        address = self._resolve(address)
        self._data[address] = value & 0xFF

    def read(self, address: int) -> int:
        address = self._resolve(address)
        value = int(self._data[address])
        for fault in self._faults:
            if fault.address != address:
                continue
            if fault.kind is FaultKind.STUCK_AT_ZERO:
                value &= ~(1 << fault.bit) & 0xFF
            elif fault.kind is FaultKind.STUCK_AT_ONE:
                value |= 1 << fault.bit
        return value


@dataclass(frozen=True)
class MarchFault:
    """One mismatch found by a march element."""

    pattern: str
    address: int
    expected: int
    observed: int


class MarchTester:
    """Walking patterns + MATS+ style march over a memory model."""

    #: Patterns every qualification run applies.
    PATTERNS = ("walking-ones", "walking-zeros", "address-in-address", "mats+")

    def __init__(self, memory: MemoryModel, stride: int = 1) -> None:
        if stride < 1:
            raise ConfigurationError("stride must be positive")
        self.memory = memory
        self.stride = stride
        self.faults: List[MarchFault] = []
        self.reads = 0
        self.writes = 0

    def _addresses(self) -> range:
        return range(0, self.memory.size_bytes, self.stride)

    def _check(self, pattern: str, address: int, expected: int) -> None:
        observed = self.memory.read(address)
        self.reads += 1
        if observed != expected:
            self.faults.append(MarchFault(pattern, address, expected, observed))

    def _fill(self, value: int) -> None:
        for address in self._addresses():
            self.memory.write(address, value)
            self.writes += 1

    def run_walking(self, ones: bool) -> None:
        """Walk a single 1 (or 0) through every bit of every byte."""
        name = "walking-ones" if ones else "walking-zeros"
        for bit in range(8):
            value = (1 << bit) if ones else (0xFF ^ (1 << bit))
            self._fill(value)
            for address in self._addresses():
                self._check(name, address, value)

    def run_address_in_address(self) -> None:
        """Write each location's own address (mod 256) -- catches aliasing."""
        for address in self._addresses():
            self.memory.write(address, address & 0xFF)
            self.writes += 1
        for address in self._addresses():
            self._check("address-in-address", address, address & 0xFF)

    def run_mats_plus(self) -> None:
        """MATS+: up(w0); up(r0, w1); down(r1, w0); up(r0)."""
        self._fill(0x00)
        for address in self._addresses():
            self._check("mats+", address, 0x00)
            self.memory.write(address, 0xFF)
            self.writes += 1
        for address in reversed(self._addresses()):
            self._check("mats+", address, 0xFF)
            self.memory.write(address, 0x00)
            self.writes += 1
        for address in self._addresses():
            self._check("mats+", address, 0x00)

    def run_all(self) -> List[MarchFault]:
        """The full qualification sequence; returns every fault found."""
        self.run_walking(ones=True)
        self.run_walking(ones=False)
        self.run_address_in_address()
        self.run_mats_plus()
        return list(self.faults)

    @property
    def passed(self) -> bool:
        return not self.faults

    def fault_summary(self) -> Dict[str, int]:
        summary: Dict[str, int] = {}
        for fault in self.faults:
            summary[fault.pattern] = summary.get(fault.pattern, 0) + 1
        return summary
