"""Retrieval: look-aside embedding retrieval (Table 2 row 4).

"The Retrieval chooses relevant candidates from a large corpus for
recommendation systems and FPGAs accelerate the similarity calculation
and top-K selection."

The role scores a query embedding against the corpus (inner product)
and returns the top-K candidates.  The corpus lives in the Memory RBB's
address space; queries and results cross the Host RBB -- the classic
FAERY-style look-aside pipeline the paper cites.
"""

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import CloudApplication
from repro.core.role import Architecture, Role, RoleDemands
from repro.errors import ConfigurationError
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage


@dataclass(frozen=True)
class RetrievalResult:
    """Top-K candidates for one query."""

    indices: Tuple[int, ...]
    scores: Tuple[float, ...]


class EmbeddingCorpus:
    """A corpus of normalised embeddings, deterministic per seed."""

    def __init__(self, items: int, dim: int = 64, seed: int = 7) -> None:
        if items < 1 or dim < 1:
            raise ConfigurationError("corpus needs positive size and dimension")
        rng = np.random.default_rng(seed)
        vectors = rng.standard_normal((items, dim), dtype=np.float32)
        norms = np.linalg.norm(vectors, axis=1, keepdims=True)
        self.vectors = vectors / np.maximum(norms, 1e-12)
        self.dim = dim

    def __len__(self) -> int:
        return len(self.vectors)

    def query_like(self, index: int, noise: float = 0.1, seed: int = 11) -> np.ndarray:
        """A query vector near corpus item ``index`` (for recall checks)."""
        rng = np.random.default_rng(seed + index)
        query = self.vectors[index] + noise * rng.standard_normal(self.dim).astype(np.float32)
        return query / np.linalg.norm(query)


class RetrievalEngine:
    """Similarity scoring + top-K selection over a corpus."""

    def __init__(self, corpus: EmbeddingCorpus, k: int = 10) -> None:
        if k < 1:
            raise ConfigurationError("top-K needs K >= 1")
        self.corpus = corpus
        self.k = min(k, len(corpus))
        self.queries_served = 0

    def search(self, query: np.ndarray) -> RetrievalResult:
        """Exact inner-product search (what the FPGA pipeline computes)."""
        if query.shape != (self.corpus.dim,):
            raise ConfigurationError(
                f"query dimension {query.shape} != corpus dimension ({self.corpus.dim},)"
            )
        scores = self.corpus.vectors @ query
        top = np.argpartition(-scores, self.k - 1)[: self.k]
        ordered = top[np.argsort(-scores[top])]
        self.queries_served += 1
        return RetrievalResult(
            indices=tuple(int(index) for index in ordered),
            scores=tuple(float(scores[index]) for index in ordered),
        )

    def batch_search(self, queries: Sequence[np.ndarray]) -> List[RetrievalResult]:
        return [self.search(query) for query in queries]


class RetrievalApp(CloudApplication):
    """The embedding-retrieval application (look-aside)."""

    name = "retrieval"
    role_latency_cycles = 96   # score + top-K systolic pipeline depth

    #: Scoring throughput of the role pipeline: one corpus vector per
    #: fabric cycle per scoring lane.
    SCORING_LANES = 32

    def __init__(self, corpus_items: int = 10_000, dim: int = 64, k: int = 10) -> None:
        self.corpus = EmbeddingCorpus(corpus_items, dim)
        self.engine = RetrievalEngine(self.corpus, k=k)

    def role(self) -> Role:
        return Role(
            name=self.name,
            architecture=Architecture.LOOK_ASIDE,
            demands=RoleDemands(
                memory_bandwidth_gibps=200.0,   # corpus streaming -> HBM class
                memory_capacity_gib=8,
                host_gbps=32.0,
                bulk_dma=False,                 # many small query/result messages
                needs_hot_cache=True,
                user_clock_mhz=300.0,
            ),
            resources=ResourceUsage(lut=118_000, ff=160_000, bram_36k=466, uram=0,
                                    dsp=1_024),
            loc=LocInventory(common=6_300, vendor_specific=0, device_specific=620,
                             generated=1_400),
            description="embedding similarity + top-K for recommendations",
        )

    def queries_per_second(self, corpus_items: Optional[int] = None,
                           clock_mhz: float = 300.0) -> float:
        """Analytic QPS of the scoring pipeline for a corpus size.

        The pipeline streams the whole corpus per query at
        ``SCORING_LANES`` vectors/cycle, so QPS falls linearly with
        corpus size -- the shape of Figure 17d's x-axis sweep.
        """
        items = corpus_items if corpus_items is not None else len(self.corpus)
        cycles_per_query = items / self.SCORING_LANES + self.role_latency_cycles
        return clock_mhz * 1e6 / cycles_per_query
