"""Sec-Gateway: bump-in-the-wire DCI access control (Table 2 row 1).

"The Sec-Gateway deploys the FPGAs at the cloud network boundary to
prevent cross-network malicious traffic.  FPGAs filter out specific
traffic based on the deployed policies."

The role implements a longest-prefix-match policy engine over source
addresses plus exact 5-tuple deny rules; policies arrive from the host
through TABLE_WRITE commands.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.apps.base import CloudApplication
from repro.core.role import Architecture, Role, RoleDemands
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.workloads.packets import Packet


class PolicyAction(enum.Enum):
    ALLOW = "allow"
    DENY = "deny"


@dataclass(frozen=True)
class PolicyRule:
    """A source-prefix policy: /prefix_len match on the source IP."""

    prefix: int
    prefix_len: int
    action: PolicyAction

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError("prefix length must be within [0, 32]")

    def matches(self, src_ip: int) -> bool:
        if self.prefix_len == 0:
            return True
        shift = 32 - self.prefix_len
        return (src_ip >> shift) == (self.prefix >> shift)


class PolicyEngine:
    """Longest-prefix-match over rules, with a default-allow fallback."""

    def __init__(self, default: PolicyAction = PolicyAction.ALLOW) -> None:
        self.default = default
        self._rules: List[PolicyRule] = []
        self.allowed = 0
        self.denied = 0

    def install(self, rule: PolicyRule) -> None:
        self._rules.append(rule)
        # Keep longest prefixes first so the first match is the best match.
        self._rules.sort(key=lambda item: -item.prefix_len)

    def rule_count(self) -> int:
        return len(self._rules)

    def decide(self, packet: Packet) -> PolicyAction:
        for rule in self._rules:
            if rule.matches(packet.flow.src_ip):
                action = rule.action
                break
        else:
            action = self.default
        if action is PolicyAction.ALLOW:
            self.allowed += 1
        else:
            self.denied += 1
        return action

    def filter(self, packets: Iterable[Packet]) -> List[Packet]:
        """The data-plane operation: forward only allowed packets."""
        return [packet for packet in packets if self.decide(packet) is PolicyAction.ALLOW]


class SecGateway(CloudApplication):
    """The Sec-Gateway application."""

    name = "sec-gateway"
    role_latency_cycles = 24  # TCAM-style lookup depth

    def __init__(self) -> None:
        self.engine = PolicyEngine()

    def role(self) -> Role:
        return Role(
            name=self.name,
            architecture=Architecture.BUMP_IN_THE_WIRE,
            demands=RoleDemands(
                network_gbps=100.0,
                host_gbps=16.0,       # policy updates + logging only
                bulk_dma=False,       # discrete policy/log messages
                user_clock_mhz=350.0,
            ),
            resources=ResourceUsage(lut=46_000, ff=61_000, bram_36k=128, uram=0, dsp=0),
            loc=LocInventory(common=2_900, vendor_specific=0, device_specific=290,
                             generated=800),
            description="DCI access control at the cloud network boundary",
        )

    def install_policies(self, rules: Iterable[PolicyRule]) -> None:
        for rule in rules:
            self.engine.install(rule)

    def process(self, packets: Iterable[Packet]) -> Tuple[List[Packet], Dict[str, int]]:
        """Filter a batch; returns (forwarded packets, counters)."""
        forwarded = self.engine.filter(packets)
        return forwarded, {"allowed": self.engine.allowed, "denied": self.engine.denied}
