"""Baseline framework models for the section 5.4 comparison.

Vitis and oneAPI are the commercial frameworks, Coyote the open-source
FPGA OS; :class:`repro.baselines.harmonia.HarmoniaFramework` wraps this
library behind the same interface so all four can be swept by one
harness.
"""

from repro.baselines.base import Capability, Framework, FrameworkShell
from repro.baselines.vitis import VitisFramework
from repro.baselines.oneapi import OneApiFramework
from repro.baselines.coyote import CoyoteFramework
from repro.baselines.harmonia import HarmoniaFramework

__all__ = [
    "Capability",
    "CoyoteFramework",
    "Framework",
    "FrameworkShell",
    "HarmoniaFramework",
    "OneApiFramework",
    "VitisFramework",
    "all_frameworks",
]


def all_frameworks():
    """The comparison set, in the paper's order."""
    return [VitisFramework(), OneApiFramework(), CoyoteFramework(), HarmoniaFramework()]
