"""The common framework interface the comparison harness sweeps.

A framework deploys a *shell* for a benchmark role on a device it
supports.  The structural differences the paper measures:

* **Device support** (Table 3) -- which vendors/boards each framework
  can target at all;
* **Shell resources** (Figure 18a) -- monolithic shells carry every
  service; Harmonia tailors;
* **Host interface** (Table 4) -- register-level for the baselines,
  command-based for Harmonia;
* **Capabilities** (Table 1) -- heterogeneity / unified shell /
  portable role / consistent host interface.
"""

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import IncompatiblePlatformError
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice
from repro.platform.vendor import Vendor


class Capability(enum.Enum):
    """Table 1 capability ratings."""

    YES = "yes"
    NO = "no"
    PARTIAL = "partial"   # "requires laborious/ad-hoc work" (the triangle)


@dataclass(frozen=True)
class FrameworkShell:
    """A deployed shell: its footprint and host-interface style."""

    framework: str
    device: FpgaDevice
    resources: ResourceUsage
    host_interface: str            # "register" or "command"
    module_names: Tuple[str, ...]

    def utilisation(self) -> Dict[str, float]:
        return self.device.budget.utilisation(self.resources)


class Framework:
    """Base class for the framework models."""

    name: str = "framework"

    #: Table 1 row.
    heterogeneity: Capability = Capability.NO
    unified_shell: Capability = Capability.NO
    portable_role: Capability = Capability.NO
    consistent_host_interface: Capability = Capability.NO

    #: Benchmark latency adjustment relative to the common data path, in
    #: nanoseconds (framework plumbing differences; all are "comparable").
    latency_offset_ns: float = 0.0

    def supports(self, device: FpgaDevice) -> bool:
        """Whether the framework can target this device at all."""
        raise NotImplementedError

    def deploy(self, device: FpgaDevice, benchmark: str) -> FrameworkShell:
        """Build the shell for ``benchmark`` on ``device``."""
        raise NotImplementedError

    def _require_support(self, device: FpgaDevice) -> None:
        if not self.supports(device):
            raise IncompatiblePlatformError(
                f"{self.name} does not support {device.name} "
                f"({device.board_vendor.value} board, {device.chip_vendor.value} silicon)"
            )

    def capability_row(self) -> Dict[str, Capability]:
        """This framework's Table 1 row."""
        return {
            "heterogeneity": self.heterogeneity,
            "unified_shell": self.unified_shell,
            "portable_role": self.portable_role,
            "consistent_host_interface": self.consistent_host_interface,
        }

    def supported_vendor_classes(self, devices: List[FpgaDevice]) -> Dict[str, bool]:
        """Table 3 row over a device list, grouped by board class."""
        classes = {"intel": False, "xilinx": False, "inhouse": False}
        for device in devices:
            if not self.supports(device):
                continue
            if device.board_vendor is Vendor.INHOUSE:
                classes["inhouse"] = True
            elif device.chip_vendor is Vendor.INTEL:
                classes["intel"] = True
            elif device.chip_vendor is Vendor.XILINX:
                classes["xilinx"] = True
        return classes

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: The benchmark roles of section 5.1, with the services each needs.
BENCHMARK_SERVICES: Dict[str, Tuple[str, ...]] = {
    "matmul": ("host",),
    "database": ("host", "memory"),
    "tcp": ("host", "network"),
}
