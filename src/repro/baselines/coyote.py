"""A Coyote-style open-source FPGA OS model.

Coyote (Korolija et al., OSDI'20) runs on Xilinx Alveo boards and
provides OS services -- virtual memory (TLBs), networking (RDMA/TCP
stacks), memory striping, and vFPGA scheduling -- in a service-rich
shell that is not tailored per application.  Roles attach through
dynamic wrappers; host control is register/ioctl-level.
"""

from repro.baselines.base import Capability, Framework, FrameworkShell
from repro.baselines.vitis import monolithic_shell
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice
from repro.platform.vendor import Vendor


class CoyoteFramework(Framework):
    """The Coyote FPGA-OS model."""

    name = "coyote"
    heterogeneity = Capability.YES
    unified_shell = Capability.PARTIAL      # per-shell dynamic wrappers
    portable_role = Capability.YES
    consistent_host_interface = Capability.PARTIAL
    latency_offset_ns = 8.0                 # leaner ioctl path than XRT

    #: Always-on OS services: striping TLBs, vFPGA scheduler, network
    #: stack plumbing (public Coyote utilization reports).
    MONOLITHIC_OVERHEAD = ResourceUsage(lut=10_000, ff=15_000, bram_36k=8, uram=0, dsp=0)

    #: Coyote is published against Alveo (official Xilinx) boards.
    def supports(self, device: FpgaDevice) -> bool:
        return (
            device.chip_vendor is Vendor.XILINX
            and device.board_vendor is Vendor.XILINX
        )

    def deploy(self, device: FpgaDevice, benchmark: str) -> FrameworkShell:
        self._require_support(device)
        return monolithic_shell(self.name, device, benchmark, self.MONOLITHIC_OVERHEAD)
