"""Harmonia wrapped behind the comparison-framework interface."""

from repro.baselines.base import Capability, Framework, FrameworkShell
from repro.baselines.vitis import benchmark_role
from repro.core.shell import build_unified_shell
from repro.core.tailoring import HierarchicalTailor
from repro.platform.device import FpgaDevice


class HarmoniaFramework(Framework):
    """This library, as one of the compared frameworks."""

    name = "harmonia"
    heterogeneity = Capability.YES
    unified_shell = Capability.YES
    portable_role = Capability.YES
    consistent_host_interface = Capability.YES
    latency_offset_ns = 9.3                 # the interface wrapper's 3 cycles

    def supports(self, device: FpgaDevice) -> bool:
        """Harmonia targets every device in the catalog (Table 3)."""
        return True

    def deploy(self, device: FpgaDevice, benchmark: str) -> FrameworkShell:
        self._require_support(device)
        role = benchmark_role(benchmark, self.name)
        tailored = HierarchicalTailor(build_unified_shell(device)).tailor(role)
        return FrameworkShell(
            framework=self.name,
            device=device,
            resources=tailored.resources(),
            host_interface="command",
            module_names=tuple(ip.name for ip in tailored.modules()),
        )
