"""A oneAPI/OFS-style commercial framework model.

oneAPI with the Open FPGA Stack targets official Intel boards (Agilex,
Stratix); the FIM (FPGA interface manager) is a fixed static region
with always-on host, memory, and management services.  Host control is
register-level through OPAE.
"""

from repro.baselines.base import Capability, Framework, FrameworkShell
from repro.baselines.vitis import monolithic_shell
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice
from repro.platform.vendor import Vendor


class OneApiFramework(Framework):
    """The oneAPI/OFS model."""

    name = "oneapi"
    heterogeneity = Capability.YES          # across Intel families only
    unified_shell = Capability.PARTIAL
    portable_role = Capability.YES
    consistent_host_interface = Capability.PARTIAL
    latency_offset_ns = 15.0                # OPAE/driver path

    #: FIM extras above the minimal service set (PR region manager,
    #: partial TLB, always-on host channels).
    MONOLITHIC_OVERHEAD = ResourceUsage(lut=6_500, ff=10_500, bram_36k=5, uram=0, dsp=0)

    def supports(self, device: FpgaDevice) -> bool:
        return (
            device.chip_vendor is Vendor.INTEL
            and device.board_vendor is Vendor.INTEL
        )

    def deploy(self, device: FpgaDevice, benchmark: str) -> FrameworkShell:
        self._require_support(device)
        return monolithic_shell(self.name, device, benchmark, self.MONOLITHIC_OVERHEAD)
