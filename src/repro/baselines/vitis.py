"""A Vitis-style commercial framework model.

Vitis targets official Xilinx boards (Alveo/Zynq/Versal) with a
monolithic static-region shell: DMA, firewalls, debug bridges and
bypass paths are always present regardless of what the kernel uses.
The host interface is register-level (XRT ioctls over register maps).
"""

from typing import Tuple

from repro.baselines.base import BENCHMARK_SERVICES, Capability, Framework, FrameworkShell
from repro.core.role import Architecture, Role, RoleDemands
from repro.core.shell import build_unified_shell
from repro.core.tailoring import HierarchicalTailor
from repro.errors import IncompatiblePlatformError
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice
from repro.platform.vendor import Vendor


def benchmark_role(benchmark: str, framework: str) -> Role:
    """The section 5.1 benchmark roles, shared by every framework."""
    services = BENCHMARK_SERVICES.get(benchmark)
    if services is None:
        raise IncompatiblePlatformError(f"unknown benchmark {benchmark!r}")
    demands = RoleDemands(
        network_gbps=100.0 if "network" in services else 0.0,
        memory_bandwidth_gibps=19.0 if "memory" in services else 0.0,
        memory_capacity_gib=8 if "memory" in services else 0,
        host_gbps=32.0,
        bulk_dma=(benchmark == "matmul"),
        user_clock_mhz=300.0,
    )
    return Role(
        name=f"{benchmark}-{framework}",
        architecture=Architecture.LOOK_ASIDE if benchmark != "tcp"
        else Architecture.BUMP_IN_THE_WIRE,
        demands=demands,
    )


def monolithic_shell(
    framework_name: str,
    device: FpgaDevice,
    benchmark: str,
    monolithic_overhead: ResourceUsage,
) -> FrameworkShell:
    """A baseline shell: the benchmark's module set, untailorable extras on top.

    Baselines instantiate the same IP classes Harmonia does; the
    difference Figure 18a measures is the monolithic integration
    overhead (always-on firewalls, debug bridges, bypass paths, service
    layers) that their one-size-fits-all static regions carry and
    Harmonia's tailoring strips.
    """
    role = benchmark_role(benchmark, framework_name)
    tailored = HierarchicalTailor(build_unified_shell(device)).tailor(role)
    # Baselines also keep the Ex-function-equivalent service logic on
    # even when the benchmark does not need it.
    always_on_services = ResourceUsage.total(
        fn.resources for rbb in tailored.rbbs.values()
        for fn in rbb.ex_functions.values() if not fn.enabled
    )
    return FrameworkShell(
        framework=framework_name,
        device=device,
        resources=tailored.resources() + monolithic_overhead + always_on_services,
        host_interface="register",
        module_names=tuple(ip.name for ip in tailored.modules()),
    )


class VitisFramework(Framework):
    """The Vitis/XRT model."""

    name = "vitis"
    heterogeneity = Capability.YES          # across Xilinx families only
    unified_shell = Capability.PARTIAL
    portable_role = Capability.YES
    consistent_host_interface = Capability.PARTIAL
    latency_offset_ns = 12.0                # XRT syscall path

    #: Static-region extras: firewalls, debug bridge/ILA, bypass XDMA
    #: path, embedded scheduler (public Alveo platform reports).
    MONOLITHIC_OVERHEAD = ResourceUsage(lut=8_000, ff=12_500, bram_36k=6, uram=0, dsp=0)

    def supports(self, device: FpgaDevice) -> bool:
        return (
            device.chip_vendor is Vendor.XILINX
            and device.board_vendor is Vendor.XILINX
        )

    def deploy(self, device: FpgaDevice, benchmark: str) -> FrameworkShell:
        self._require_support(device)
        return monolithic_shell(self.name, device, benchmark, self.MONOLITHIC_OVERHEAD)
