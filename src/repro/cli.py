"""Command-line interface: ``python -m repro.cli <command>``.

Gives operators the day-to-day views the library computes:

* ``devices`` -- the heterogeneous device catalog;
* ``describe DEVICE`` -- one device's peripherals and static config;
* ``tailor DEVICE --app APP`` -- the role-specific shell summary;
* ``bringup DEVICE --app APP`` -- command vs register bring-up cost;
* ``migrate APP FROM TO`` -- software-modification cost of a move;
* ``health DEVICE`` -- one monitoring cycle over the command plane;
* ``trace DEVICE --app APP`` -- run a Fig-17 sweep under a traced
  runtime context and export the span trace as JSONL (or, with
  ``--format chrome``, as a Chrome/Perfetto ``trace_event`` array);
* ``metrics DEVICE --app APP`` -- the same sweep's hierarchical
  metrics snapshot as JSON (or Prometheus text exposition with
  ``--format prometheus``);
* ``profile`` -- run a representative sweep + fleet workload under the
  wall-clock self-profiler and print the top-N phase table;
* ``sweep --apps ... --devices ... --workers N`` -- run an
  (apps x devices x packet-sizes) sweep through the parallel cached
  :class:`repro.runtime.sweep.SweepRunner` (``--engine`` picks the
  vector/DES execution tier);
* ``fleet`` -- shard millions of Zipf-skewed flows across the
  production fleet under several load-balancing policies (``--slo``
  evaluates service objectives and exits nonzero on violations);
* ``build --workers N --cache-dir DIR`` -- compile the fleet's
  device x role matrix through the parallel content-addressed
  :class:`repro.runtime.buildfarm.BuildFarm` (warm reruns are served
  from the artifact store; manifests are byte-identical at any worker
  count);
* ``fuzz`` -- differential conformance fuzzing: generate random valid
  scenarios, cross-check the cache/vector/DES tiers for exact equality,
  and shrink any failure to a minimal JSON repro;
* ``report`` -- collate benchmark artifacts into one reproduction report.

``sweep``, ``fleet``, and ``build`` all accept ``--scenario FILE``: one
declarative :class:`repro.scenario.Scenario` JSON replaces the
subcommand's shape flags, and flag and scenario invocations of the same
run produce byte-identical results, traces, and manifests (see
``docs/scenarios.md``).
"""

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.apps import application_by_name
from repro.core.health import HealthMonitor
from repro.core.host_software import ControlPlane
from repro.core.shell import build_unified_shell
from repro.errors import ConfigurationError, HarmoniaError
from repro.metrics.modifications import reduction_factor, trace_modifications
from repro.metrics.resources import utilisation_percent
from repro.platform.catalog import all_devices


def device_by_name(name: str):
    """Catalog lookup with the CLI's loud, consistent error contract.

    Every subcommand resolves device names through this one path, so an
    unknown name always raises :class:`ConfigurationError` listing the
    catalog -- matching :func:`repro.apps.application_by_name` and the
    scenario spec's validators.
    """
    from repro.scenario import require_device

    return require_device(name)


def _load_scenario_arg(path: str, kind: str):
    """The shared ``--scenario`` loader of sweep/fleet/build."""
    from repro.scenario import load_scenario

    scenario = load_scenario(path)
    if scenario.kind != kind:
        raise ConfigurationError(
            f"{path} is a {scenario.kind!r} scenario; this subcommand "
            f"needs \"kind\": \"{kind}\""
        )
    return scenario


def _reject_scenario_conflicts(flags) -> None:
    """``--scenario`` owns the run's shape; shape flags conflict with it."""
    given = [name for name, value in flags if value not in (None, False)]
    if given:
        raise ConfigurationError(
            "--scenario already describes the run; drop the conflicting "
            "flag(s): " + ", ".join(given)
        )


def cmd_devices(_args: argparse.Namespace) -> int:
    rows = [
        (device.name, device.chip, device.board_vendor.value,
         f"{device.network_gbps:g}G" if device.network_gbps else "-",
         "/".join(kind.value for kind in device.memory_kinds) or "-",
         f"Gen{int(device.pcie.pcie_generation)}x{device.pcie.pcie_lanes}")
        for device in all_devices()
    ]
    print(format_table(
        ["device", "chip", "board", "network", "memory", "pcie"], rows,
        title="Device catalog",
    ))
    return 0


def cmd_describe(args: argparse.Namespace) -> int:
    device = device_by_name(args.device)
    print(device.describe())
    from repro.adapters.device_adapter import DeviceAdapter

    static = DeviceAdapter(device).static_config()
    rows = sorted((key, str(value)) for key, value in static.items())
    print(format_table(["property", "value"], rows, title="Static configuration"))
    return 0


def cmd_tailor(args: argparse.Namespace) -> int:
    device = device_by_name(args.device)
    app = application_by_name(args.app)
    shell = app.tailored_shell(device)
    print(f"Tailored shell for {app.name!r} on {device.name}:")
    print(f"  RBBs: {', '.join(sorted(shell.rbbs))}")
    for name, rbb in sorted(shell.rbbs.items()):
        enabled = [fn.name for fn in rbb.enabled_ex_functions()]
        print(f"  {name}: instance={rbb.selected_instance_name} "
              f"ex-functions={enabled or '[]'}")
    utilisation = utilisation_percent(shell.resources(), device.budget)
    print("  utilisation: " + ", ".join(
        f"{kind}={value:.1f}%" for kind, value in utilisation.items()))
    print(f"  role config items: {shell.role_config_item_count()} "
          f"(native {shell.native_config_item_count()}, "
          f"{shell.config_simplification_factor():.1f}x simpler)")
    return 0


def cmd_bringup(args: argparse.Namespace) -> int:
    device = device_by_name(args.device)
    app = application_by_name(args.app)
    control = ControlPlane(app.tailored_shell(device))
    registers = control.register_full_init()
    commands = control.command_full_init()
    print(f"Bring-up of {app.name!r} on {device.name}:")
    print(f"  register interface: {registers.operation_count} operations")
    print(f"  command interface : {commands.invocation_count} commands")
    if control.kernel.commands_failed:
        print(f"  WARNING: {control.kernel.commands_failed} commands failed")
        return 1
    return 0


def cmd_migrate(args: argparse.Namespace) -> int:
    app = application_by_name(args.app)
    traces = {}
    for name in (args.source, args.target):
        control = ControlPlane(app.tailored_shell(device_by_name(name)))
        traces[name] = (
            control.register_full_init().operation_signatures(),
            control.command_full_init().invocation_signatures(),
        )
    register_mods = trace_modifications(traces[args.source][0], traces[args.target][0])
    command_mods = trace_modifications(traces[args.source][1], traces[args.target][1])
    print(f"Migrating {app.name!r} {args.source} -> {args.target}:")
    print(f"  register-interface modifications: {register_mods}")
    print(f"  command-interface modifications : {command_mods}")
    print(f"  reduction: {reduction_factor(register_mods, command_mods):.0f}x")
    return 0


def cmd_report(_args: argparse.Namespace) -> int:
    from repro.analysis.report import build_report, load_results, missing_experiments

    report = build_report()
    print(report, end="")
    return 0 if not missing_experiments(load_results()) else 3


def cmd_health(args: argparse.Namespace) -> int:
    device = device_by_name(args.device)
    monitor = HealthMonitor(ControlPlane(build_unified_shell(device)))
    report = monitor.poll_once()
    rows = [(obs.name, round(obs.value, 1), obs.severity.value)
            for obs in report.observations]
    print(format_table(["observable", "value", "severity"], rows,
                       title=f"Health of {device.name} (cycle {report.cycle})"))
    return 0 if report.healthy else 2


def _traced_sweep(args: argparse.Namespace):
    """Run one application sweep under a tracing runtime context."""
    from repro.runtime import SimContext

    device = device_by_name(args.device)
    app = application_by_name(args.app)
    context = SimContext(name=f"{app.name}@{device.name}", trace=True)
    sizes = tuple(args.sizes) if args.sizes else (64, 128, 256, 512, 1024)
    samples = app.measure(
        device, packet_sizes=sizes, packets_per_point=args.packets,
        with_harmonia=not args.native, context=context,
    )
    return context, app, device, samples


def cmd_trace(args: argparse.Namespace) -> int:
    if args.target == "analyze":
        return cmd_trace_analyze(args)
    if args.target == "diff":
        return cmd_trace_diff(args)
    if args.paths:
        raise ConfigurationError(
            "unexpected extra arguments; `trace DEVICE` exports a sweep "
            "trace, `trace analyze FILE` / `trace diff A B` run analytics")
    if not args.app:
        raise ConfigurationError("trace DEVICE needs --app")
    args.device = args.target          # the legacy export path
    context, app, device, samples = _traced_sweep(args)
    if args.format == "chrome":
        from repro.obs.chrome import export_chrome_json

        payload = export_chrome_json(context.trace)
    else:
        payload = context.trace.export_jsonl()
    if args.out:
        with open(args.out, "w", encoding="utf-8", newline="\n") as handle:
            handle.write(payload)
        print(f"wrote {len(context.trace)} trace records to {args.out}")
    else:
        print(payload, end="")
    print(f"# {app.name} on {device.name}: {len(samples)} sweep points, "
          f"{len(context.trace)} trace records, "
          f"{len(context.trace.span_names())} distinct span names",
          file=sys.stderr)
    return 0


def _ms(ps: float) -> str:
    return f"{ps / 1e9:.3f}"


def cmd_trace_analyze(args: argparse.Namespace) -> int:
    from repro.obs.analyze import analyze_trace, load_trace

    if len(args.paths) != 1:
        raise ConfigurationError(
            "trace analyze takes exactly one trace JSONL file")
    analysis = analyze_trace(load_trace(args.paths[0]))
    if not len(analysis):
        print("trace is empty: no spans to analyze")
        return 0
    path = analysis.critical_path()
    rows = [
        ("  " * depth + node.name, _ms(node.start_ps),
         _ms(node.end_ps or 0), _ms(node.duration_ps), _ms(node.self_ps))
        for depth, node in enumerate(path)
    ]
    print(format_table(
        ["span", "start ms", "end ms", "duration ms", "self ms"], rows,
        title=f"Critical path: {len(path)} spans, "
              f"{_ms(path[0].duration_ps)} ms end-to-end",
    ))
    flame = analysis.flame(args.top)
    print(format_table(
        ["span name", "calls", "total ms", "self ms"],
        [(name, calls, _ms(total), _ms(self_ps))
         for name, calls, total, self_ps in flame],
        title=f"Flame fold: top {len(flame)} by self time "
              f"({len(analysis)} spans, {len(analysis.roots)} roots)",
    ))
    if args.json:
        with open(args.json, "w", encoding="utf-8", newline="\n") as handle:
            json.dump(analysis.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote analysis to {args.json}", file=sys.stderr)
    return 0


def cmd_trace_diff(args: argparse.Namespace) -> int:
    from repro.obs.analyze import analyze_trace, diff_traces, load_trace

    if len(args.paths) != 2:
        raise ConfigurationError(
            "trace diff takes exactly two trace JSONL files")
    before = analyze_trace(load_trace(args.paths[0]))
    after = analyze_trace(load_trace(args.paths[1]))
    rows = diff_traces(before, after, top=args.top)
    print(format_table(
        ["span name", "calls", "total ms before", "total ms after",
         "delta ms"],
        [(row["name"],
          f"{row['calls_before']} -> {row['calls_after']}",
          _ms(row["total_before_ps"]), _ms(row["total_after_ps"]),
          _ms(row["total_delta_ps"]))
         for row in rows],
        title=f"Trace diff: top {len(rows)} spans by |total delta| "
              f"({len(before)} -> {len(after)} spans)",
    ))
    if args.json:
        with open(args.json, "w", encoding="utf-8", newline="\n") as handle:
            json.dump(diff_traces(before, after), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"# wrote diff to {args.json}", file=sys.stderr)
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    context, _app, _device, _samples = _traced_sweep(args)
    if args.format == "prometheus":
        from repro.obs.prometheus import to_prometheus_text

        print(to_prometheus_text(context.metrics), end="")
        return 0
    snapshot = context.metrics.snapshot()
    print(json.dumps(snapshot, indent=2, sort_keys=True))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.analysis.tables import format_table as _format
    from repro.obs.profiler import SelfProfiler
    from repro.runtime import FleetSpec, SimContext, SweepPlan, run_fleet, run_plan

    profiler = SelfProfiler()
    with profiler:
        with profiler.phase("workload.sweep"):
            run_plan(
                SweepPlan(apps=(args.app,), devices=(args.device,),
                          packets_per_point=args.packets),
                use_cache=False,
            )
        with profiler.phase("workload.fleet"):
            run_fleet(
                FleetSpec(flow_count=args.flows, device_count=256),
                context=SimContext(name="profile"),
            )
    rows = [
        (stats.name, stats.calls,
         f"{stats.cumulative_s * 1e3:.2f}", f"{stats.self_s * 1e3:.2f}")
        for stats in profiler.table(args.top)
    ]
    print(_format(
        ["phase", "calls", "cumulative ms", "self ms"], rows,
        title=f"Self-profile: top {len(rows)} phases, "
              f"{profiler.total_s * 1e3:.2f} ms profiled",
    ))
    return 0


def _sweep_scenario(args):
    """The scenario a ``sweep`` invocation describes (file or flags)."""
    from repro.scenario import Scenario, WorkloadSpec

    if args.scenario:
        _reject_scenario_conflicts([
            ("--apps", args.apps), ("--devices", args.devices),
            ("--sizes", args.sizes), ("--packets", args.packets),
            ("--native", args.native), ("--engine", args.engine),
        ])
        scenario = _load_scenario_arg(args.scenario, "sweep")
        if args.trace_out and not scenario.workload.trace:
            import dataclasses

            scenario = scenario.replace(workload=dataclasses.replace(
                scenario.workload, trace=True))
        return scenario
    if not args.apps or not args.devices:
        raise ConfigurationError(
            "sweep needs --apps and --devices (or --scenario FILE)")
    scenario = Scenario(
        kind="sweep",
        apps=tuple(args.apps),
        devices=tuple(args.devices),
        engine=args.engine if args.engine is not None else "auto",
        workload=WorkloadSpec(
            packet_sizes=(tuple(args.sizes) if args.sizes
                          else (64, 128, 256, 512, 1024)),
            packets_per_point=(args.packets if args.packets is not None
                               else 2_000),
            with_harmonia=not args.native,
            trace=bool(args.trace_out),
        ),
    )
    return scenario.validate_names()   # fail fast on unknown names


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runtime.sweep import SweepCache
    from repro.service import run_sweep_service

    scenario = _sweep_scenario(args)
    cache = SweepCache()
    if args.cache_file:
        try:
            cache.load(args.cache_file)
        except FileNotFoundError:
            pass                        # first run populates it
    outcome = run_sweep_service(scenario, workers=args.workers, cache=cache,
                                use_cache=not args.no_cache, slo=args.slo)
    result = outcome.result
    rows = [
        (point.point.app, point.point.device,
         f"{point.point.packet_size_bytes}B",
         round(point.throughput_bps / 1e9, 2),
         round(point.mean_latency_ns, 1),
         "hit" if point.cached else "miss")
        for point in result.points
    ]
    print(format_table(
        ["app", "device", "packet", "Gbps", "latency ns", "cache"], rows,
        title=f"Sweep: {len(result)} points, {args.workers} worker(s)",
    ))
    print(f"# {outcome.elapsed_s:.3f}s wall, "
          f"{result.cache_hits}/{len(result)} cache hits",
          file=sys.stderr)
    if args.cache_file:
        cache.save(args.cache_file)
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8",
                  newline="\n") as handle:
            handle.write(result.merged_trace_jsonl())
        print(f"# wrote merged trace to {args.trace_out}", file=sys.stderr)
    if args.json:
        with open(args.json, "w", encoding="utf-8", newline="\n") as handle:
            json.dump(result.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote point results to {args.json}", file=sys.stderr)
    if outcome.slo is not None:
        print(outcome.slo.format())
    return outcome.exit_code


def _build_scenario(args):
    """The scenario a ``build`` invocation describes (file or flags)."""
    from repro.scenario import Scenario, BuildSpec

    if args.scenario:
        _reject_scenario_conflicts([
            ("--devices", args.devices), ("--apps", args.apps),
            ("--year", args.year), ("--effort", args.effort),
        ])
        return _load_scenario_arg(args.scenario, "build")
    scenario = Scenario(
        kind="build",
        apps=tuple(args.apps) if args.apps else (),
        devices=tuple(args.devices) if args.devices else (),
        year=args.year if args.year is not None else 2_024,
        build=BuildSpec(effort=args.effort if args.effort is not None else 0),
    )
    return scenario.validate_names()   # fail fast on unknown names


def cmd_build(args: argparse.Namespace) -> int:
    from repro.runtime.buildfarm import ArtifactStore
    from repro.service import run_build_service

    scenario = _build_scenario(args)
    store = ArtifactStore(args.cache_dir)
    outcome = run_build_service(scenario, workers=args.workers, store=store,
                                use_cache=not args.no_cache, slo=args.slo)
    report = outcome.result
    context = outcome.context
    elapsed = outcome.elapsed_s
    rows = [
        (result.target.role, result.target.device, result.status,
         result.build_key[:12] if result.build_key else "-",
         f"{result.wall_s * 1e3:.1f}" if result.status == "built" else "-")
        for result in report.targets
    ]
    print(format_table(
        ["role", "device", "status", "key", "build ms"], rows,
        title=(f"Build farm: {len(report)} targets, {args.workers} worker(s), "
               f"{report.built} built / {report.shared} shared / "
               f"{report.cached} cached / {report.failed} failed / "
               f"{report.incompatible} incompatible"),
    ))
    print(f"# {elapsed:.3f}s wall, {store.hits} store hits, "
          f"{report.tailor_memo_hits} tailor-memo hits", file=sys.stderr)
    if args.manifests_out:
        with open(args.manifests_out, "w", encoding="utf-8",
                  newline="\n") as handle:
            handle.write(report.manifests_jsonl())
        print(f"# wrote manifests to {args.manifests_out}", file=sys.stderr)
    if args.json:
        payload = report.to_json()
        payload["elapsed_s"] = round(elapsed, 3)
        with open(args.json, "w", encoding="utf-8", newline="\n") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote build report to {args.json}", file=sys.stderr)
    if args.trace_out:
        if args.trace_format == "chrome":
            from repro.obs.chrome import export_chrome_json

            payload_text = export_chrome_json(context.trace)
        else:
            payload_text = context.trace.export_jsonl()
        with open(args.trace_out, "w", encoding="utf-8",
                  newline="\n") as handle:
            handle.write(payload_text)
        print(f"# wrote build trace to {args.trace_out}", file=sys.stderr)
    if outcome.slo is not None:
        print(outcome.slo.format())
    return outcome.exit_code


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, ServingDaemon

    config = ServeConfig(
        host=args.host, port=args.port, exec_workers=args.exec_workers,
        pool_workers=args.pool_workers,
        max_queue=args.max_queue, quota_rps=args.quota_rps,
        quota_burst=args.quota_burst,
        cache_entries=args.cache_entries if args.cache_entries > 0 else None,
        cache_file=args.cache_file, artifact_dir=args.artifact_dir,
        allow_remote_shutdown=args.allow_remote_shutdown,
        telemetry=not args.no_telemetry,
        telemetry_window_s=args.telemetry_window,
        trace_ring=args.trace_ring,
        access_log=args.access_log)
    daemon = ServingDaemon(config)

    def _announce(host: str, port: int) -> None:
        print(f"serving on http://{host}:{port}", flush=True)

    code = daemon.run(on_ready=_announce)
    served = daemon.metrics.counter("serve.requests").value
    coalesce = daemon.coalescer.counters()
    print(f"# shutdown after {served} request(s), "
          f"{coalesce['executions']} execution(s), "
          f"{coalesce['attached']} coalesced, "
          f"{len(daemon.cache)} cache entr(ies) resident", file=sys.stderr)
    return code


def _fleet_scenario(args):
    """The scenario a ``fleet`` invocation describes (file or flags)."""
    from repro.scenario import EpochsSpec, Scenario, TenancySpec

    if args.scenario:
        _reject_scenario_conflicts([
            ("--flows", args.flows), ("--devices", args.devices),
            ("--tenants", args.tenants), ("--slots", args.slots),
            ("--alpha", args.alpha), ("--load", args.load),
            ("--seed", args.seed), ("--epochs", args.epochs),
            ("--churn", args.churn),
        ])
        return _load_scenario_arg(args.scenario, "fleet")
    if args.churn is not None and args.epochs is None:
        raise ConfigurationError(
            "--churn only applies to epoch runs; add --epochs N")

    def _or(value, default):
        return value if value is not None else default

    epochs = None
    if args.epochs is not None:
        epochs = EpochsSpec(epochs=args.epochs,
                            churn=_or(args.churn, 0.01))
    return Scenario(
        kind="fleet",
        seed=_or(args.seed, 2_025),
        tenancy=TenancySpec(
            flow_count=_or(args.flows, 1_000_000),
            device_count=_or(args.devices, 1_024),
            tenant_count=_or(args.tenants, 16),
            slots_per_device=_or(args.slots, 4),
            alpha=_or(args.alpha, 1.05),
            offered_load=_or(args.load, 0.65),
        ),
        epochs=epochs,
    )


def _report_fleet_epochs(args: argparse.Namespace, outcome) -> int:
    """Format one orchestrated epoch day: sampled epochs + day totals."""
    result = outcome.result
    fleet = result.fleet_spec
    spec = result.spec
    epochs = result.epochs
    # Sample at most 12 evenly spaced epochs (always first and last) so
    # a 288-epoch day prints a digestible table.
    if len(epochs) <= 12:
        sampled = list(epochs)
    else:
        step = (len(epochs) - 1) / 11
        indexes = sorted({round(index * step) for index in range(12)})
        sampled = [epochs[index] for index in indexes]
    rows = [
        (stats.epoch, f"{stats.flows:,}", stats.arrivals, stats.departures,
         stats.failures + stats.drains, stats.migrations, stats.pr_grants,
         f"+{stats.scaled_up}/-{stats.scaled_down}", stats.alive_devices,
         f"{stats.utilization_mean:.2f}", round(stats.p99_ns / 1_000, 1),
         stats.slo_violations)
        for stats in sampled
    ]
    print(format_table(
        ["epoch", "flows", "arr", "dep", "fail+drain", "migr", "pr",
         "scale", "alive", "util", "p99 us", "slo"],
        rows,
        title=(f"Orchestrated day: {spec.epochs} epochs x "
               f"{fleet.flow_count:,} flows x {fleet.device_count:,} "
               f"devices ({outcome.meta['mode']} mode, "
               f"policy {spec.policy})"),
    ))
    totals = outcome.meta["totals"]
    print(f"  totals: {totals['arrivals']:,} arrivals, "
          f"{totals['departures']:,} departures, "
          f"{totals['failures']} failures, {totals['drains']} drains, "
          f"{totals['migrations']} migrations, "
          f"{totals['pr_grants']} PR grants, "
          f"+{totals['scaled_up']}/-{totals['scaled_down']} scaling, "
          f"{totals['slo_violations']} SLO violations")
    final = result.final
    print(f"  final: {final.flows:,} flows on {final.alive_devices} "
          f"devices, util {final.utilization_mean:.2f}, "
          f"p99 {final.p99_ns / 1_000:.1f} us")
    print(f"# {outcome.elapsed_s:.2f}s wall "
          f"({outcome.elapsed_s / spec.epochs * 1_000:.1f} ms/epoch), "
          f"digest {result.aggregate_digest[:12]}", file=sys.stderr)
    if outcome.slo is not None:
        print(outcome.slo.format())
    if args.json:
        payload = result.to_json()
        payload["elapsed_s"] = round(outcome.elapsed_s, 3)
        if outcome.slo is not None:
            payload["slo"] = outcome.slo.to_json()
        with open(args.json, "w", encoding="utf-8", newline="\n") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote orchestrator results to {args.json}",
              file=sys.stderr)
    return outcome.exit_code


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.service import run_fleet_service

    scenario = _fleet_scenario(args)
    # The service layer runs the simulation, streams the trace through
    # the flight recorder when asked, and evaluates SLOs while the
    # recorder is still attached -- identical semantics over HTTP.
    # Scenarios with an epochs section dispatch to the orchestrator.
    outcome = run_fleet_service(
        scenario, policies=args.policies, slo=args.slo,
        trace_out=args.trace_out, trace_ring=args.trace_ring,
        mode=args.epoch_mode,
    )
    if scenario.epochs is not None:
        return _report_fleet_epochs(args, outcome)
    result = outcome.result
    slo_report = outcome.slo
    context = outcome.context
    spec = result.spec
    elapsed = outcome.elapsed_s
    if args.trace_out:
        print(f"# streamed {context.trace.total_records} trace records "
              f"to {args.trace_out} "
              f"({len(context.trace)} resident)", file=sys.stderr)
    rows = [
        (policy.policy,
         round(policy.p50_ns / 1_000, 1), round(policy.p99_ns / 1_000, 1),
         f"{policy.utilization_mean:.2f}", f"{policy.utilization_max:.2f}",
         round(policy.imbalance, 2), policy.overloaded_devices,
         f"{policy.non_resident_flows / spec.flow_count:.0%}")
        for policy in result.policies
    ]
    print(format_table(
        ["policy", "p50 us", "p99 us", "util mean", "util max",
         "imbalance", "overloaded", "non-resident"],
        rows,
        title=(f"Fleet: {spec.flow_count:,} flows x {result.spec.device_count:,} "
               f"devices x {spec.tenant_count} tenants "
               f"({result.effective_offered_gbps / 1_000:.1f} of "
               f"{result.total_capacity_gbps / 1_000:.1f} Tbps offered)"),
    ))
    for policy in result.policies:
        hottest = ", ".join(f"{label}={value:.2f}"
                            for label, value in policy.hottest[:3])
        print(f"  {policy.policy}: hottest devices {hottest}")
    best = result.best_policy()
    print(f"  best policy by p99: {best.policy} "
          f"({best.p99_ns / 1_000:.1f} us)")
    print(f"# {elapsed:.2f}s wall, {len(result.policies)} policies, "
          f"{len(context.trace)} trace records", file=sys.stderr)
    if slo_report is not None:
        print(slo_report.format())
    if args.json:
        payload = result.to_json()
        payload["elapsed_s"] = round(elapsed, 3)
        if slo_report is not None:
            payload["slo"] = slo_report.to_json()
        with open(args.json, "w", encoding="utf-8", newline="\n") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote fleet results to {args.json}", file=sys.stderr)
    return outcome.exit_code


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.scenario.fuzz import DifferentialFuzzer

    fuzzer = DifferentialFuzzer(
        seed=args.seed, repro_dir=args.repro_dir,
        inject_size_threshold=args.inject_failure,
        epoch_rate=args.epoch_rate,
        inject_epoch_threshold=args.inject_epoch,
    )
    start = time.perf_counter()
    report = fuzzer.run(args.budget)
    elapsed = time.perf_counter() - start
    print(f"Fuzz: {report.scenarios_run} scenarios, "
          f"{report.points_checked} points, {report.checks_run} checks, "
          f"coverage {report.coverage} keys, "
          f"{len(report.failures)} failure(s)")
    for failure in report.failures:
        where = failure.repro_path or "(repro not written)"
        print(f"  FAIL {failure.check}: {failure.detail}")
        print(f"       minimized scenario {failure.shrunk.scenario_id()[:12]} "
              f"-> {where}")
    print(f"# {elapsed:.2f}s wall, seed {report.seed}", file=sys.stderr)
    if args.json:
        payload = report.to_json()
        payload["elapsed_s"] = round(elapsed, 3)
        with open(args.json, "w", encoding="utf-8", newline="\n") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"# wrote fuzz report to {args.json}", file=sys.stderr)
    return 5 if report.failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Harmonia reproduction -- operator tooling",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("devices", help="list the device catalog")

    describe = commands.add_parser("describe", help="show one device")
    describe.add_argument("device")

    tailor = commands.add_parser("tailor", help="tailor a shell for an app")
    tailor.add_argument("device")
    tailor.add_argument("--app", required=True)

    bringup = commands.add_parser("bringup", help="compare bring-up interfaces")
    bringup.add_argument("device")
    bringup.add_argument("--app", required=True)

    migrate = commands.add_parser("migrate", help="migration cost between devices")
    migrate.add_argument("app")
    migrate.add_argument("source")
    migrate.add_argument("target")

    health = commands.add_parser("health", help="poll one device's health")
    health.add_argument("device")

    def _sweep_args(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("device")
        sub.add_argument("--app", required=True)
        sub.add_argument("--packets", type=int, default=500,
                         help="packets per sweep point (default 500)")
        sub.add_argument("--sizes", type=int, nargs="+",
                         help="packet sizes in bytes (default paper sweep)")
        sub.add_argument("--native", action="store_true",
                         help="sweep the native (no-Harmonia) data path")

    trace = commands.add_parser(
        "trace", help="export a traced app sweep as JSONL or Chrome JSON, "
                      "or analyze/diff exported traces")
    trace.add_argument("target",
                       help="a device name to export a traced sweep, or "
                            "'analyze' / 'diff' to run trace analytics")
    trace.add_argument("paths", nargs="*",
                       help="trace JSONL file(s): one for analyze, "
                            "two for diff")
    trace.add_argument("--app", help="application for the sweep export")
    trace.add_argument("--packets", type=int, default=500,
                       help="packets per sweep point (default 500)")
    trace.add_argument("--sizes", type=int, nargs="+",
                       help="packet sizes in bytes (default paper sweep)")
    trace.add_argument("--native", action="store_true",
                       help="sweep the native (no-Harmonia) data path")
    trace.add_argument("--out", help="write the export here instead of stdout")
    trace.add_argument("--format", choices=("jsonl", "chrome"),
                       default="jsonl",
                       help="jsonl (native records) or chrome "
                            "(trace_event JSON for chrome://tracing/Perfetto)")
    trace.add_argument("--top", type=int, default=15,
                       help="rows in the analyze/diff tables (default 15)")
    trace.add_argument("--json",
                       help="write the analyze/diff result JSON here")

    metrics = commands.add_parser(
        "metrics", help="print a sweep's hierarchical metrics snapshot")
    _sweep_args(metrics)
    metrics.add_argument("--format", choices=("json", "prometheus"),
                         default="json",
                         help="json (nested snapshot) or prometheus "
                              "(text exposition format)")

    profile = commands.add_parser(
        "profile", help="self-profile the simulator's own hot phases")
    profile.add_argument("--app", default="sec-gateway",
                         help="application for the sweep workload")
    profile.add_argument("--device", default="device-a",
                         help="device for the sweep workload")
    profile.add_argument("--packets", type=int, default=500,
                         help="packets per sweep point (default 500)")
    profile.add_argument("--flows", type=int, default=100_000,
                         help="flows for the fleet workload (default 100,000)")
    profile.add_argument("--top", type=int, default=10,
                         help="show the top-N phases by cumulative time")

    sweep = commands.add_parser(
        "sweep", help="run an (apps x devices x sizes) sweep, optionally parallel")
    sweep.add_argument("--scenario",
                       help="declarative scenario JSON describing the sweep "
                            "(replaces --apps/--devices/--sizes/--packets/"
                            "--native/--engine; see docs/scenarios.md)")
    sweep.add_argument("--apps", nargs="+",
                       help="application names (see `devices`/docs)")
    sweep.add_argument("--devices", nargs="+",
                       help="device names from the catalog")
    sweep.add_argument("--sizes", type=int, nargs="+",
                       help="packet sizes in bytes (default paper sweep)")
    sweep.add_argument("--packets", type=int,
                       help="packets per sweep point (default 2000)")
    sweep.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = in-process serial)")
    sweep.add_argument("--native", action="store_true",
                       help="sweep the native (no-Harmonia) data path")
    sweep.add_argument("--no-cache", action="store_true",
                       help="bypass the content-keyed result cache")
    sweep.add_argument("--cache-file",
                       help="load/save the result cache at this JSON path")
    sweep.add_argument("--trace-out",
                       help="trace every point; write merged JSONL here")
    sweep.add_argument("--json", help="write per-point results JSON here")
    sweep.add_argument("--engine", choices=("auto", "vector", "des"),
                       help="execution tier for cache misses: auto picks the "
                            "vector kernel when the chain is analytic")
    sweep.add_argument("--slo",
                       help="check results against SLO specs: a JSON file "
                            "or 'default'; violations exit with code 4")

    build = commands.add_parser(
        "build", help="compile the fleet's device x role matrix in parallel")
    build.add_argument("--scenario",
                       help="declarative scenario JSON describing the build "
                            "matrix (replaces --devices/--apps/--year/"
                            "--effort; see docs/scenarios.md)")
    build.add_argument("--devices", nargs="+",
                       help="device names (default: the production fleet's "
                            "active types for --year)")
    build.add_argument("--apps", nargs="+",
                       help="application roles (default: all five)")
    build.add_argument("--year", type=int,
                       help="fleet deployment year when --devices is not "
                            "given (default 2024)")
    build.add_argument("--workers", type=int, default=1,
                       help="worker processes (1 = in-process serial)")
    build.add_argument("--effort", type=int,
                       help="modelled CAD compile effort (0 = skip the "
                            "compile model's iteration loop)")
    build.add_argument("--cache-dir",
                       help="content-addressed artifact store directory "
                            "(default: in-memory, this run only)")
    build.add_argument("--no-cache", action="store_true",
                       help="bypass the artifact store")
    build.add_argument("--manifests-out",
                       help="write the deterministic manifests JSONL here")
    build.add_argument("--json", help="write the build report JSON here")
    build.add_argument("--trace-out",
                       help="write the build Gantt trace here")
    build.add_argument("--trace-format", choices=("jsonl", "chrome"),
                       default="jsonl",
                       help="jsonl (native records) or chrome "
                            "(trace_event JSON for chrome://tracing)")
    build.add_argument("--slo",
                       help="check build metrics against SLO specs: a JSON "
                            "file or 'default'; violations exit with code 4")

    fleet = commands.add_parser(
        "fleet", help="serve Zipf-skewed flows across the production fleet")
    fleet.add_argument("--scenario",
                       help="declarative scenario JSON describing the fleet "
                            "run (replaces --flows/--devices/--tenants/"
                            "--slots/--alpha/--load/--seed; see "
                            "docs/scenarios.md)")
    fleet.add_argument("--flows", type=int,
                       help="flow population size (default 1,000,000)")
    fleet.add_argument("--devices", type=int,
                       help="device instances to shard across (default 1024)")
    fleet.add_argument("--tenants", type=int,
                       help="tenant count sharing the fleet (default 16)")
    fleet.add_argument("--slots", type=int,
                       help="PR slots per device (default 4)")
    fleet.add_argument("--alpha", type=float,
                       help="Zipf skew of flow popularity (default 1.05)")
    fleet.add_argument("--load", type=float,
                       help="offered load as a fraction of fleet capacity")
    fleet.add_argument("--seed", type=int,
                       help="deterministic scenario seed")
    fleet.add_argument("--epochs", type=int,
                       help="orchestrate N churn epochs (arrivals, "
                            "departures, failures, drains, migration, "
                            "PR scheduling, autoscaling) instead of the "
                            "one-shot policy comparison")
    fleet.add_argument("--churn", type=float,
                       help="per-epoch arrival/departure fraction of the "
                            "flow population (default 0.01; needs --epochs)")
    fleet.add_argument("--epoch-mode",
                       choices=("incremental", "full", "verify"),
                       default="incremental",
                       help="aggregate maintenance for epoch runs: "
                            "delta-incremental (default), the O(flows) "
                            "full-recompute oracle, or verify (both, "
                            "asserting bit-exact equality every epoch)")
    fleet.add_argument("--policies", nargs="+",
                       choices=("round-robin", "least-loaded", "flow-hash"),
                       help="policies to evaluate (default: all three)")
    fleet.add_argument("--json", help="write fleet results JSON here")
    fleet.add_argument("--slo",
                       help="check metrics against SLO specs: a JSON file "
                            "or 'default'; violations exit with code 4")
    fleet.add_argument("--trace-out",
                       help="stream the run's trace to this JSONL file "
                            "via the flight recorder")
    fleet.add_argument("--trace-ring", type=int, default=4_096,
                       help="resident trace ring size while streaming "
                            "(default 4096)")

    fuzz = commands.add_parser(
        "fuzz", help="differential conformance fuzzing across engine tiers")
    fuzz.add_argument("--budget", type=int, default=200,
                      help="scenarios to generate and cross-check "
                           "(default 200)")
    fuzz.add_argument("--seed", type=int, default=2_025,
                      help="deterministic generation seed (default 2025)")
    fuzz.add_argument("--repro-dir", default="fuzz-repros",
                      help="write minimized failing scenarios here "
                           "(default fuzz-repros/)")
    fuzz.add_argument("--json", help="write the fuzz report JSON here")
    fuzz.add_argument("--inject-failure", type=int, metavar="SIZE",
                      help="testing hook: treat any point with packet size "
                           ">= SIZE as failing, to exercise the shrinker")
    fuzz.add_argument("--epoch-rate", type=float, default=0.0,
                      help="fraction of generated scenarios carrying an "
                           "epochs section, cross-checked through the "
                           "epoch-delta differential (default 0.0)")
    fuzz.add_argument("--inject-epoch", type=int, metavar="EPOCHS",
                      help="testing hook: treat any scenario with >= EPOCHS "
                           "epochs as failing, to exercise the epoch "
                           "shrinker")

    serve = commands.add_parser(
        "serve", help="run the warm serving daemon (resident caches, "
                      "request coalescing, admission control)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8_787,
                       help="bind port; 0 picks a free port (default 8787)")
    serve.add_argument("--exec-workers", type=int, default=4,
                       help="scenario-execution threads (default 4)")
    serve.add_argument("--pool-workers", type=int, default=4,
                       help="resident sweep ProcessPool width for points "
                            "the fused planner cannot batch (default 4)")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="bounded execution queue; new work beyond this "
                            "is shed with 503 (default 32)")
    serve.add_argument("--quota-rps", type=float, default=0.0,
                       help="per-tenant token-bucket rate in requests/s; "
                            "0 disables quotas (default 0)")
    serve.add_argument("--quota-burst", type=float, default=None,
                       help="per-tenant burst capacity "
                            "(default 2x --quota-rps)")
    serve.add_argument("--cache-entries", type=int, default=4_096,
                       help="sweep-cache LRU bound; 0 means unbounded "
                            "(default 4096)")
    serve.add_argument("--cache-file",
                       help="sweep-cache JSON: loaded at boot, saved on "
                            "clean shutdown")
    serve.add_argument("--artifact-dir",
                       help="build-artifact store directory "
                            "(default: in-memory)")
    serve.add_argument("--allow-remote-shutdown", action="store_true",
                       help="enable POST /v1/shutdown (default: signals only)")
    serve.add_argument("--no-telemetry", action="store_true",
                       help="disable the sliding-window telemetry hub "
                            "(/telemetry, /metrics histograms)")
    serve.add_argument("--telemetry-window", type=float, default=60.0,
                       help="sliding telemetry window in seconds "
                            "(default 60)")
    serve.add_argument("--trace-ring", type=int, default=4_096,
                       help="resident serve-span ring size for GET /trace; "
                            "0 disables request spans (default 4096)")
    serve.add_argument("--access-log",
                       help="write one JSONL line per request here "
                            "(finalised atomically on clean shutdown)")

    commands.add_parser("report", help="collate benchmark result artifacts")
    return parser


_HANDLERS = {
    "devices": cmd_devices,
    "describe": cmd_describe,
    "tailor": cmd_tailor,
    "bringup": cmd_bringup,
    "migrate": cmd_migrate,
    "health": cmd_health,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "profile": cmd_profile,
    "sweep": cmd_sweep,
    "build": cmd_build,
    "fleet": cmd_fleet,
    "serve": cmd_serve,
    "fuzz": cmd_fuzz,
    "report": cmd_report,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except (HarmoniaError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
