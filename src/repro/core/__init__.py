"""Harmonia's platform-independent layer (paper section 3.3).

* :mod:`repro.core.rbb` -- the Reusable Building Block abstraction and
  the Network / Memory / Host RBBs;
* :mod:`repro.core.shell` -- the unified shell assembled from RBBs;
* :mod:`repro.core.tailoring` -- hierarchical (module + property level)
  shell tailoring;
* :mod:`repro.core.role` -- roles and their demands;
* :mod:`repro.core.command` -- the command-based software interface and
  the unified control kernel;
* :mod:`repro.core.lifecycle` -- the four-stage application lifecycle.
"""

from repro.core.role import Role, RoleDemands
from repro.core.shell import UnifiedShell, build_unified_shell
from repro.core.tailoring import HierarchicalTailor, TailoredShell

__all__ = [
    "HierarchicalTailor",
    "Role",
    "RoleDemands",
    "TailoredShell",
    "UnifiedShell",
    "build_unified_shell",
]
