"""The command-based software-hardware interface (paper section 3.3.3)."""

from repro.core.command.codes import CommandCode, DstId, RbbId, SrcId
from repro.core.command.packet import CommandPacket, COMMAND_VERSION
from repro.core.command.kernel import ModuleEndpoint, UnifiedControlKernel
from repro.core.command.driver import CommandDriver, RegisterDriver

__all__ = [
    "COMMAND_VERSION",
    "CommandCode",
    "CommandDriver",
    "CommandPacket",
    "DstId",
    "ModuleEndpoint",
    "RbbId",
    "RegisterDriver",
    "SrcId",
    "UnifiedControlKernel",
]
