"""Command, module, and controller identifiers (paper Figure 9).

The first five command codes are the paper's published examples; the
rest are the extension codes the walkthrough mentions (flash erase,
time count, sensor reads) plus table reads -- the format explicitly
supports "extension to new hardware modules and software".
"""

import enum


class CommandCode(enum.IntEnum):
    """Dedicated control operations defined by the RBBs."""

    MODULE_STATUS_READ = 0x0000
    MODULE_STATUS_WRITE = 0x0001
    MODULE_INIT = 0x0002
    MODULE_RESET = 0x0003
    TABLE_WRITE = 0x0004
    # Extension codes beyond the paper's published examples.
    TABLE_READ = 0x0005
    FLASH_ERASE = 0x0006
    TIME_COUNT = 0x0007
    SENSOR_READ = 0x0008
    QUEUE_ENABLE = 0x0009
    QUEUE_DISABLE = 0x000A
    MULTICAST_JOIN = 0x000B
    MULTICAST_LEAVE = 0x000C


class SrcId(enum.IntEnum):
    """Host-side controller types (who issued the command)."""

    HOST_APPLICATION = 0x01
    BMC = 0x02
    STANDALONE_TOOL = 0x03
    RESPONSE = 0x80  # set on packets travelling device -> host


class DstId(enum.IntEnum):
    """Hardware-side destinations."""

    UNIFIED_CONTROL_KERNEL = 0x01


class RbbId(enum.IntEnum):
    """Target module classes (the ModuleID field)."""

    NETWORK = 0x01
    MEMORY = 0x02
    HOST = 0x03
    MANAGEMENT = 0x04
    ROLE = 0x05


class StatusCode(enum.IntEnum):
    """Response status carried in the options field of replies."""

    OK = 0x0
    UNKNOWN_MODULE = 0x1
    UNKNOWN_COMMAND = 0x2
    EXECUTION_FAILED = 0x3
