"""Host-side drivers: the command interface and the register baseline.

:class:`CommandDriver` implements the paper's ``cmd_read``/``cmd_write``
interface (walkthrough steps 1-2 and 7): it builds command packets,
ships them over a *separate control DMA queue* (performance-isolated
from the data path), and routes responses back to the issuing
controller by SrcID.

:class:`RegisterDriver` is the traditional register read/write interface
commercial frameworks expose; it exists so software-modification and
configuration-count comparisons (Figure 13, Table 4) diff two real
operation traces.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.command.codes import CommandCode, DstId, SrcId
from repro.core.command.kernel import UnifiedControlKernel
from repro.core.command.packet import CommandPacket
from repro.errors import CommandError
from repro.hw.registers import InitSequence, RegisterFile
from repro.sim.fifo import SyncFifo


@dataclass(frozen=True)
class CommandResult:
    """The outcome of one command round trip."""

    status: int
    data: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        return self.status == 0


class CommandDriver:
    """cmd_read / cmd_write over a dedicated control queue."""

    def __init__(
        self,
        kernel: UnifiedControlKernel,
        src_id: SrcId = SrcId.HOST_APPLICATION,
        control_queue_depth: int = 128,
    ) -> None:
        self.kernel = kernel
        self.src_id = src_id
        # "a separate control queue in the DMA engine to ensure
        # performance isolation from the data path"
        self.control_queue = SyncFifo("driver.ctrl_queue", depth=control_queue_depth)
        self.invocations: List[Tuple[str, int, int, int, Tuple[int, ...]]] = []
        self.responses_by_src: Dict[int, List[CommandResult]] = {}

    # --- public interface ------------------------------------------------------

    def cmd_write(
        self,
        cmd_code: CommandCode,
        rbb_id: int,
        instance_id: int = 0,
        data: Tuple[int, ...] = (),
        options: int = 0,
    ) -> CommandResult:
        """Issue a state-changing command; one call = one software line."""
        return self._round_trip("cmd_write", cmd_code, rbb_id, instance_id, data, options)

    def cmd_read(
        self,
        cmd_code: CommandCode,
        rbb_id: int,
        instance_id: int = 0,
        data: Tuple[int, ...] = (),
        options: int = 0,
    ) -> CommandResult:
        """Issue a querying command and return its response data."""
        return self._round_trip("cmd_read", cmd_code, rbb_id, instance_id, data, options)

    @property
    def invocation_count(self) -> int:
        """Software lines issued through this driver (the Table 4 metric)."""
        return len(self.invocations)

    def invocation_signatures(self) -> List[Tuple[str, int, int, int, Tuple[int, ...]]]:
        """(kind, code, rbb, instance, data) per call -- diffable across platforms."""
        return list(self.invocations)

    # --- walkthrough steps 1, 2, 7 ---------------------------------------------

    def _round_trip(
        self,
        kind: str,
        cmd_code: CommandCode,
        rbb_id: int,
        instance_id: int,
        data: Tuple[int, ...],
        options: int,
    ) -> CommandResult:
        # Step 1: command generation.
        packet = CommandPacket(
            src_id=int(self.src_id),
            dst_id=int(DstId.UNIFIED_CONTROL_KERNEL),
            rbb_id=rbb_id,
            instance_id=instance_id,
            command_code=int(cmd_code),
            options=options,
            data=data,
        )
        self.invocations.append((kind, int(cmd_code), rbb_id, instance_id, tuple(data)))
        # Step 2: transfer over the control queue to the kernel buffer.
        self.control_queue.push(packet.encode())
        self.kernel.submit(self.control_queue.pop())
        # Steps 3-6 happen inside the kernel.
        raw_response = self.kernel.process_one()
        if raw_response is None:
            raise CommandError("control kernel returned no response")
        # Step 7: upload + delivery by the SrcID recorded in the command.
        response = CommandPacket.decode(raw_response)
        result = CommandResult(status=response.options, data=response.data)
        self.responses_by_src.setdefault(response.dst_id, []).append(result)
        return result


class RegisterDriver:
    """The traditional register read/write host interface (baseline).

    Every ``reg_read``/``reg_write``/init-program line is recorded so the
    migration cost between two platforms can be measured by diffing the
    traces (see :mod:`repro.metrics.modifications`).
    """

    def __init__(self) -> None:
        self._modules: Dict[str, RegisterFile] = {}
        self.operations: List[Tuple[str, str, str, int]] = []

    def attach(self, name: str, regfile: RegisterFile) -> None:
        if name in self._modules:
            raise CommandError(f"module {name!r} already attached")
        self._modules[name] = regfile

    def _regfile(self, module: str) -> RegisterFile:
        try:
            return self._modules[module]
        except KeyError:
            raise CommandError(f"no module {module!r} attached") from None

    def reg_write(self, module: str, register: str, value: int) -> None:
        regfile = self._regfile(module)
        regfile.write_by_name(register, value)
        self.operations.append(("write", module, register, value))

    def reg_read(self, module: str, register: str) -> int:
        regfile = self._regfile(module)
        value = regfile.read_by_name(register)
        self.operations.append(("read", module, register, 0))
        return value

    def run_init_program(self, module: str, sequence: InitSequence) -> int:
        """Run a module init program, logging every register operation."""
        regfile = self._regfile(module)
        before = len(regfile.trace)
        sequence.execute(regfile)
        executed = regfile.trace[before:]
        for kind, offset, value in executed:
            self.operations.append((kind, module, f"@{offset:#06x}", value))
        return len(executed)

    @property
    def operation_count(self) -> int:
        """Register-level software lines (the Table 4 baseline metric)."""
        return len(self.operations)

    def operation_signatures(self) -> List[Tuple[str, str, str, int]]:
        return list(self.operations)
