"""Command firmware: user-defined processing logic for the control kernel.

Paper section 3.3.3: commands are executed by the soft core, "each of
which defines its own processing logic", and the format must "support
the extension to new hardware modules ... and software".  This module
makes that extensibility concrete: a new command code is *programmed*,
not hard-coded -- a small stack-machine program is installed on the
unified control kernel and runs when its code arrives.

The instruction set is deliberately tiny (the soft core is a Nios-class
device): register read/write, packet-argument access, constants, a few
ALU ops, table access, and response emission.  A step limit bounds
execution, so a buggy program cannot wedge the kernel.
"""

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.command.kernel import ModuleEndpoint, UnifiedControlKernel
from repro.core.command.packet import CommandPacket
from repro.errors import CommandError


class Op(enum.Enum):
    """Stack-machine opcodes."""

    PUSH = "push"            # operand: constant -> stack
    ARG = "arg"              # operand: packet data index -> stack
    REG_READ = "reg_read"    # operand: register name -> stack
    REG_WRITE = "reg_write"  # operand: register name; value popped
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    SHL = "shl"              # operand: shift amount
    TABLE_GET = "table_get"  # key popped -> value pushed
    TABLE_SET = "table_set"  # value, key popped
    EMIT = "emit"            # pop -> response data word
    DUP = "dup"


@dataclass(frozen=True)
class Instruction:
    op: Op
    operand: object = None


class FirmwareProgram:
    """A validated sequence of instructions for one command code."""

    MAX_STEPS = 4_096
    MAX_STACK = 64

    def __init__(self, name: str, instructions: List[Instruction]) -> None:
        if not instructions:
            raise CommandError(f"firmware {name!r} has no instructions")
        self.name = name
        self.instructions = list(instructions)
        self._validate()

    def _validate(self) -> None:
        """Static stack-depth check: no underflow, bounded depth."""
        depth = 0
        effects = {
            Op.PUSH: 1, Op.ARG: 1, Op.REG_READ: 1, Op.REG_WRITE: -1,
            Op.ADD: -1, Op.SUB: -1, Op.AND: -1, Op.OR: -1, Op.SHL: 0,
            Op.TABLE_GET: 0, Op.TABLE_SET: -2, Op.EMIT: -1, Op.DUP: 1,
        }
        minimum_needed = {
            Op.REG_WRITE: 1, Op.ADD: 2, Op.SUB: 2, Op.AND: 2, Op.OR: 2,
            Op.SHL: 1, Op.TABLE_GET: 1, Op.TABLE_SET: 2, Op.EMIT: 1, Op.DUP: 1,
        }
        for index, instruction in enumerate(self.instructions):
            needed = minimum_needed.get(instruction.op, 0)
            if depth < needed:
                raise CommandError(
                    f"firmware {self.name!r}: stack underflow at step {index} "
                    f"({instruction.op.value})"
                )
            depth += effects[instruction.op]
            if depth > self.MAX_STACK:
                raise CommandError(f"firmware {self.name!r}: stack overflow")

    def execute(self, packet: CommandPacket, endpoint: ModuleEndpoint) -> Tuple[int, ...]:
        """Run against a module endpoint; returns the response data."""
        stack: List[int] = []
        emitted: List[int] = []
        steps = 0
        for instruction in self.instructions:
            steps += 1
            if steps > self.MAX_STEPS:
                raise CommandError(f"firmware {self.name!r} exceeded its step budget")
            op = instruction.op
            if op is Op.PUSH:
                stack.append(int(instruction.operand) & 0xFFFF_FFFF)
            elif op is Op.ARG:
                index = int(instruction.operand)
                if index >= len(packet.data):
                    raise CommandError(
                        f"firmware {self.name!r}: command carries no argument {index}"
                    )
                stack.append(packet.data[index])
            elif op is Op.REG_READ:
                stack.append(endpoint.regfile.read_by_name(str(instruction.operand)))
            elif op is Op.REG_WRITE:
                endpoint.regfile.write_by_name(str(instruction.operand), stack.pop())
            elif op is Op.ADD:
                right, left = stack.pop(), stack.pop()
                stack.append((left + right) & 0xFFFF_FFFF)
            elif op is Op.SUB:
                right, left = stack.pop(), stack.pop()
                stack.append((left - right) & 0xFFFF_FFFF)
            elif op is Op.AND:
                right, left = stack.pop(), stack.pop()
                stack.append(left & right)
            elif op is Op.OR:
                right, left = stack.pop(), stack.pop()
                stack.append(left | right)
            elif op is Op.SHL:
                stack.append((stack.pop() << int(instruction.operand)) & 0xFFFF_FFFF)
            elif op is Op.TABLE_GET:
                stack.append(endpoint.table.get(stack.pop(), 0))
            elif op is Op.TABLE_SET:
                value, key = stack.pop(), stack.pop()
                endpoint.table[key] = value
            elif op is Op.EMIT:
                emitted.append(stack.pop())
            elif op is Op.DUP:
                stack.append(stack[-1])
        return tuple(emitted)


def install_firmware(
    kernel: UnifiedControlKernel,
    rbb_id: int,
    instance_id: int,
    command_code: int,
    program: FirmwareProgram,
) -> None:
    """Bind a program to a command code on one module endpoint."""
    endpoint = kernel.endpoint(rbb_id, instance_id)
    if command_code in endpoint.hooks:
        raise CommandError(
            f"command {command_code:#06x} already has firmware on {endpoint.name!r}"
        )
    endpoint.hooks[command_code] = lambda packet: program.execute(packet, endpoint)
