"""The unified control kernel (paper section 3.3.3 walkthrough, steps 3-6).

Runs on the in-FPGA soft core; parses incoming command packets, executes
them against the registered module endpoints (register read/write, init,
reset, table ops, flash erase, time count, sensor reads), and
encapsulates responses.  One kernel centralises command execution for
every controller -- host applications, BMC, standalone tools.
"""

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.command.codes import CommandCode, SrcId, StatusCode
from repro.core.command.packet import CommandPacket
from repro.errors import CommandError, HarmoniaError
from repro.hw.registers import InitSequence, RegisterFile
from repro.sim.fifo import SyncFifo


@dataclass
class ModuleEndpoint:
    """One controllable module: its registers, init program, and tables.

    ``status_registers`` names the registers a STATUS_READ returns, in
    order; ``table`` is the module's match/action or lookup table that
    TABLE_WRITE/TABLE_READ operate on (policy tables, LB mappings,
    embedding routing, ...).
    """

    name: str
    regfile: RegisterFile
    init_sequence: Optional[InitSequence] = None
    status_registers: Tuple[str, ...] = ()
    control_registers: Tuple[str, ...] = ()
    table: Dict[int, int] = field(default_factory=dict)
    hooks: Dict[int, Callable[[CommandPacket], Tuple[int, ...]]] = field(default_factory=dict)
    init_runs: int = 0
    resets: int = 0


class UnifiedControlKernel:
    """Command parser + executor + response encapsulator."""

    def __init__(self, buffer_depth: int = 64) -> None:
        self._endpoints: Dict[Tuple[int, int], ModuleEndpoint] = {}
        self.buffer = SyncFifo("uck.cmd_buffer", depth=buffer_depth)
        self.commands_executed = 0
        self.commands_failed = 0
        self._boot_count = 0

    # --- registration ------------------------------------------------------

    def register_module(self, rbb_id: int, instance_id: int, endpoint: ModuleEndpoint) -> None:
        key = (int(rbb_id), int(instance_id))
        if key in self._endpoints:
            raise CommandError(
                f"module (rbb={rbb_id:#x}, instance={instance_id:#x}) already registered"
            )
        self._endpoints[key] = endpoint

    def endpoint(self, rbb_id: int, instance_id: int) -> ModuleEndpoint:
        try:
            return self._endpoints[(int(rbb_id), int(instance_id))]
        except KeyError:
            raise CommandError(
                f"no module registered at (rbb={rbb_id:#x}, instance={instance_id:#x})"
            ) from None

    @property
    def registered_modules(self) -> List[Tuple[int, int]]:
        return sorted(self._endpoints)

    # --- the walkthrough ------------------------------------------------------

    def submit(self, raw: bytes) -> None:
        """Step 2 tail: a command lands in the kernel's buffer."""
        self.buffer.push(raw)

    def process_one(self) -> Optional[bytes]:
        """Steps 3-6: parse, execute, distribute, encapsulate.

        Returns the encoded response packet, or None when idle.
        Malformed packets that cannot be parsed raise; execution
        failures return an error-status response instead (the host can
        always observe the failure).
        """
        if self.buffer.is_empty:
            return None
        raw = self.buffer.pop()
        packet = CommandPacket.decode(raw)  # step 3: parsing
        try:
            endpoint = self._endpoints.get((packet.rbb_id, packet.instance_id))
            if endpoint is None:
                response = packet.response(status=int(StatusCode.UNKNOWN_MODULE))
                self.commands_failed += 1
            else:
                data = self._execute(packet, endpoint)  # steps 4-5
                response = packet.response(data=data, status=int(StatusCode.OK))
                self.commands_executed += 1
        except HarmoniaError:
            response = packet.response(status=int(StatusCode.EXECUTION_FAILED))
            self.commands_failed += 1
        return response.encode()  # step 6: encapsulation

    def process_all(self) -> List[bytes]:
        """Drain the buffer, executing commands sequentially."""
        responses: List[bytes] = []
        while not self.buffer.is_empty:
            response = self.process_one()
            if response is not None:
                responses.append(response)
        return responses

    # --- command execution (step 4) -------------------------------------------

    def _execute(self, packet: CommandPacket, endpoint: ModuleEndpoint) -> Tuple[int, ...]:
        code = packet.command_code
        hook = endpoint.hooks.get(code)
        if hook is not None:
            return hook(packet)
        if code == CommandCode.MODULE_STATUS_READ:
            return tuple(
                endpoint.regfile.read_by_name(name) for name in endpoint.status_registers
            )
        if code == CommandCode.MODULE_STATUS_WRITE:
            names = endpoint.control_registers or tuple(endpoint.regfile.names())
            for name, value in zip(names, packet.data):
                endpoint.regfile.write_by_name(name, value)
            return ()
        if code == CommandCode.MODULE_INIT:
            if endpoint.init_sequence is None:
                raise CommandError(f"module {endpoint.name!r} has no init program")
            endpoint.init_sequence.execute(endpoint.regfile)
            endpoint.init_runs += 1
            return ()
        if code == CommandCode.MODULE_RESET:
            endpoint.regfile.reset_all()
            endpoint.resets += 1
            return ()
        if code == CommandCode.TABLE_WRITE:
            for index in range(0, len(packet.data) - 1, 2):
                endpoint.table[packet.data[index]] = packet.data[index + 1]
            return ()
        if code == CommandCode.TABLE_READ:
            return tuple(endpoint.table.get(key, 0) for key in packet.data)
        if code == CommandCode.FLASH_ERASE:
            if "SECTOR_ADDR" not in endpoint.regfile:
                raise CommandError(f"module {endpoint.name!r} is not a flash device")
            for sector in packet.data:
                endpoint.regfile.write_by_name("SECTOR_ADDR", sector)
                endpoint.regfile.write_by_name("ERASE_CMD", 0x1)
            return ()
        if code in (CommandCode.QUEUE_ENABLE, CommandCode.QUEUE_DISABLE):
            state = 1 if code == CommandCode.QUEUE_ENABLE else 0
            for queue in packet.data:
                endpoint.table[0x1_0000 | queue] = state
            return ()
        if code in (CommandCode.MULTICAST_JOIN, CommandCode.MULTICAST_LEAVE):
            state = 1 if code == CommandCode.MULTICAST_JOIN else 0
            for group in packet.data:
                endpoint.table[0x2_0000 | group] = state
            return ()
        if code == CommandCode.TIME_COUNT:
            self._boot_count += 1
            return (self._boot_count,)
        if code == CommandCode.SENSOR_READ:
            sensor_names = tuple(
                name for name in ("TEMP_C", "VCCINT_MV", "VCCAUX_MV")
                if name in endpoint.regfile
            )
            if not sensor_names:
                raise CommandError(f"module {endpoint.name!r} exposes no sensors")
            return tuple(endpoint.regfile.read_by_name(name) for name in sensor_names)
        raise CommandError(f"unknown command code {code:#06x}")
