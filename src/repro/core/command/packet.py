"""Byte-exact command packet encoding (paper Figure 9).

Layout (big-endian, 32-bit words, lengths in 4-byte units):

====  =======================================================
word  fields
====  =======================================================
0     Version[4] HdLen[4] PayloadLen[8] SrcID[8] DstID[8]
1     RbbID[8] InstanceID[8] CommandCode[16]
2     Options[32]
3..   Data words (PayloadLen of them)
last  Checksum[32]
====  =======================================================

The checksum is the two's-complement of the 32-bit sum of all preceding
words, so a valid packet sums to zero -- the classic IP-style header
check, fitting the paper's "widely used packet format in communication".
"""

import struct
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ChecksumError, CommandError

COMMAND_VERSION = 1

#: Header words (version/len/ids, module operation code, options).
HEADER_WORDS = 3

_MAX_PAYLOAD_WORDS = 255  # PayloadLen is an 8-bit field


def _fold32(value: int) -> int:
    return value & 0xFFFF_FFFF


def _checksum(words: Tuple[int, ...]) -> int:
    return _fold32(-sum(words))


@dataclass(frozen=True)
class CommandPacket:
    """One command (or response) packet."""

    src_id: int
    dst_id: int
    rbb_id: int
    instance_id: int
    command_code: int
    options: int = 0
    data: Tuple[int, ...] = ()
    version: int = COMMAND_VERSION

    def __post_init__(self) -> None:
        if not 0 <= self.version < 16:
            raise CommandError("version is a 4-bit field")
        for name, width in (("src_id", 8), ("dst_id", 8), ("rbb_id", 8),
                            ("instance_id", 8), ("command_code", 16)):
            value = getattr(self, name)
            if not 0 <= value < (1 << width):
                raise CommandError(f"{name}={value:#x} exceeds its {width}-bit field")
        if not 0 <= self.options < (1 << 32):
            raise CommandError("options is a 32-bit field")
        if len(self.data) > _MAX_PAYLOAD_WORDS:
            raise CommandError(
                f"payload of {len(self.data)} words exceeds the 8-bit PayloadLen field"
            )
        for word in self.data:
            if not 0 <= word < (1 << 32):
                raise CommandError(f"data word {word:#x} is not a 32-bit value")

    # --- wire format -------------------------------------------------------

    @property
    def header_len_words(self) -> int:
        return HEADER_WORDS

    @property
    def payload_len_words(self) -> int:
        return len(self.data)

    @property
    def total_bytes(self) -> int:
        return (HEADER_WORDS + len(self.data) + 1) * 4

    def words(self) -> Tuple[int, ...]:
        """All 32-bit words except the checksum."""
        word0 = (
            (self.version << 28)
            | (self.header_len_words << 24)
            | (self.payload_len_words << 16)
            | (self.src_id << 8)
            | self.dst_id
        )
        word1 = (self.rbb_id << 24) | (self.instance_id << 16) | self.command_code
        return (word0, word1, self.options) + tuple(self.data)

    def encode(self) -> bytes:
        words = self.words()
        checksum = _checksum(words)
        return struct.pack(f">{len(words) + 1}I", *words, checksum)

    @staticmethod
    def decode(raw: bytes) -> "CommandPacket":
        """Parse and validate a packet from the wire.

        Mirrors the control kernel's parsing step: HdLen and PayloadLen
        determine the boundaries, then every field is extracted and the
        checksum verified.
        """
        if len(raw) < (HEADER_WORDS + 1) * 4:
            raise CommandError(f"packet of {len(raw)} bytes is shorter than a header")
        if len(raw) % 4 != 0:
            raise CommandError("packet length is not 4-byte aligned")
        words = struct.unpack(f">{len(raw) // 4}I", raw)
        word0 = words[0]
        version = word0 >> 28
        header_len = (word0 >> 24) & 0xF
        payload_len = (word0 >> 16) & 0xFF
        src_id = (word0 >> 8) & 0xFF
        dst_id = word0 & 0xFF
        if header_len != HEADER_WORDS:
            raise CommandError(f"unsupported header length {header_len}")
        expected_words = header_len + payload_len + 1
        if len(words) != expected_words:
            raise CommandError(
                f"length fields promise {expected_words} words, packet has {len(words)}"
            )
        if _fold32(sum(words)) != 0:
            raise ChecksumError("command packet checksum mismatch")
        word1 = words[1]
        packet = CommandPacket(
            version=version,
            src_id=src_id,
            dst_id=dst_id,
            rbb_id=word1 >> 24,
            instance_id=(word1 >> 16) & 0xFF,
            command_code=word1 & 0xFFFF,
            options=words[2],
            data=tuple(words[HEADER_WORDS:HEADER_WORDS + payload_len]),
        )
        return packet

    # --- convenience ---------------------------------------------------------

    def response(self, data: Tuple[int, ...] = (), status: int = 0) -> "CommandPacket":
        """A device->host reply: src/dst swapped, status in options.

        The original ``src_id`` is preserved in the destination so the
        driver can deliver the reply "to the corresponding host software
        based on the srcID specified in the command".
        """
        return CommandPacket(
            src_id=0x80,
            dst_id=self.src_id,
            rbb_id=self.rbb_id,
            instance_id=self.instance_id,
            command_code=self.command_code,
            options=status,
            data=data,
            version=self.version,
        )
