"""Discrete-event timing of the command path.

The walkthrough (paper Figure 8) moves a command through: driver ->
PCIe control queue -> unified-control-kernel buffer -> soft-core
execution -> response DMA -> driver.  This module runs that path on the
discrete-event simulator to measure round-trip latency and to verify
the *performance isolation* claim: commands travel a separate control
queue, so data-path load does not delay them (and vice versa).
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.command.packet import CommandPacket
from repro.errors import ConfigurationError
from repro.runtime import SimContext, ensure_context
from repro.sim.clock import ClockDomain
from repro.sim.engine import Simulator
from repro.sim.fifo import SyncFifo
from repro.sim.stats import LatencyStats

#: PCIe one-way DMA latency for a small (command-sized) TLP.
PCIE_ONE_WAY_PS = 450_000          # 450 ns

#: Soft-core cycles to parse a command header and dispatch it.
PARSE_CYCLES = 40

#: Soft-core cycles per register access a command performs.
CYCLES_PER_REGISTER_ACCESS = 12


@dataclass
class TimedCommand:
    """One command moving through the timed path."""

    packet: CommandPacket
    register_accesses: int
    issued_ps: int = 0
    completed_ps: Optional[int] = None


class CommandPathSimulator:
    """Event-driven model of the command round trip.

    The soft core executes one command at a time (the paper's
    "sequentially executes commands"); the control queue in front of it
    absorbs bursts.  Data-path traffic never appears here -- that is the
    separate-queue property -- so the only queueing is command-on-command.
    """

    def __init__(
        self,
        core_clock: ClockDomain = ClockDomain("softcore", 200.0),
        buffer_depth: int = 64,
        context: Optional[SimContext] = None,
    ) -> None:
        self.context = ensure_context(context)
        self.simulator = self.context.simulator
        self._metrics = self.context.metrics.namespace("command")
        self.core_clock = core_clock
        self.buffer = SyncFifo("uck.timed_buffer", depth=buffer_depth)
        self.latency = LatencyStats("command-rtt")
        self._core_busy = False
        self.completed: List[TimedCommand] = []

    def execution_time_ps(self, command: TimedCommand) -> int:
        """Soft-core service time for one command."""
        cycles = PARSE_CYCLES + CYCLES_PER_REGISTER_ACCESS * command.register_accesses
        return self.core_clock.cycles_to_ps(cycles)

    # --- event handlers -------------------------------------------------------

    def issue(self, command: TimedCommand, at_ps: Optional[int] = None) -> None:
        """Driver-side cmd_write: schedule arrival at the kernel buffer."""
        issue_time = self.simulator.now_ps if at_ps is None else at_ps
        command.issued_ps = issue_time
        self.simulator.schedule_at(
            issue_time + PCIE_ONE_WAY_PS, lambda: self._arrive(command)
        )

    def _arrive(self, command: TimedCommand) -> None:
        if not self.buffer.try_push(command, self.simulator.now_ps):
            raise ConfigurationError("control-queue overflow; deepen the buffer")
        self._maybe_start_core()

    def _maybe_start_core(self) -> None:
        if self._core_busy or self.buffer.is_empty:
            return
        command = self.buffer.pop()
        self._core_busy = True
        service = self.execution_time_ps(command)
        self.simulator.schedule(service, lambda: self._finish(command))

    def _finish(self, command: TimedCommand) -> None:
        self._core_busy = False
        completion = self.simulator.now_ps + PCIE_ONE_WAY_PS  # response DMA
        command.completed_ps = completion
        self.latency.add(completion - command.issued_ps)
        self._metrics.increment("completed")
        self._metrics.observe("rtt_ps", completion - command.issued_ps)
        self.context.trace.complete(
            "command.rtt", command.issued_ps, completion,
            register_accesses=command.register_accesses,
        )
        self.completed.append(command)
        self._maybe_start_core()

    # --- harness ------------------------------------------------------------------

    def run(self) -> None:
        self.simulator.run()

    def round_trip_us(self, register_accesses: int = 4) -> float:
        """RTT of a single command on an idle path."""
        # The probe measures an *idle* path, so it runs on its own
        # private context rather than joining an ambient one whose
        # clock (and queue) may already be busy.
        probe = CommandPathSimulator(self.core_clock, self.buffer.depth,
                                     context=SimContext(name="rtt-probe"))
        command = TimedCommand(packet=_PROBE_PACKET, register_accesses=register_accesses)
        probe.issue(command, at_ps=0)
        probe.run()
        return probe.latency.mean_us


_PROBE_PACKET = CommandPacket(src_id=1, dst_id=1, rbb_id=1, instance_id=0,
                              command_code=0)


def burst_latency_profile(
    burst_size: int,
    register_accesses: int = 4,
    buffer_depth: int = 64,
) -> Dict[str, float]:
    """Issue a burst of simultaneous commands; report the queueing profile.

    Returns mean/max RTT in microseconds -- later commands in the burst
    wait behind the sequential soft core, which is the only head-of-line
    blocking the control path has.
    """
    path = CommandPathSimulator(buffer_depth=max(buffer_depth, burst_size))
    burst_start_ps = path.simulator.now_ps  # nonzero on a shared context
    for _ in range(burst_size):
        path.issue(TimedCommand(packet=_PROBE_PACKET,
                                register_accesses=register_accesses),
                   at_ps=burst_start_ps)
    path.run()
    return {
        "mean_us": path.latency.mean_us,
        "max_us": path.latency.max_ps / 1e6,
        "min_us": path.latency.min_ps / 1e6,
        "completed": float(path.latency.count),
    }
