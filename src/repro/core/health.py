"""Health monitoring over the command-based interface.

A production-grade shell "entails ... health monitoring" (paper §2.1);
with Harmonia it is built on the same command plane as everything else:
the monitor polls sensors and module statistics with ``cmd_read`` and
raises alarms against configured thresholds.  Because the commands are
platform-independent, one monitor implementation covers every device in
the fleet -- which is exactly the point.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.command.codes import CommandCode, RbbId, SrcId
from repro.core.command.driver import CommandDriver
from repro.core.host_software import ControlPlane
from repro.errors import ConfigurationError


class Severity(enum.Enum):
    OK = "ok"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Threshold:
    """Alarm thresholds for one observable."""

    warning: float
    critical: float

    def __post_init__(self) -> None:
        if self.critical < self.warning:
            raise ConfigurationError("critical threshold below warning threshold")

    def classify(self, value: float) -> Severity:
        if value >= self.critical:
            return Severity.CRITICAL
        if value >= self.warning:
            return Severity.WARNING
        return Severity.OK


#: Default thresholds matching common datacenter operating envelopes.
DEFAULT_THRESHOLDS: Dict[str, Threshold] = {
    "temperature_c": Threshold(warning=85.0, critical=95.0),
    "vccint_mv_delta": Threshold(warning=30.0, critical=60.0),  # from 850 mV nominal
    "command_failures": Threshold(warning=1.0, critical=10.0),
}

_VCCINT_NOMINAL_MV = 850.0


@dataclass(frozen=True)
class HealthObservation:
    """One polled observable with its classification."""

    name: str
    value: float
    severity: Severity


@dataclass
class HealthReport:
    """The outcome of one monitoring cycle on one device."""

    device_name: str
    cycle: int
    observations: List[HealthObservation] = field(default_factory=list)

    @property
    def severity(self) -> Severity:
        worst = Severity.OK
        for observation in self.observations:
            if observation.severity is Severity.CRITICAL:
                return Severity.CRITICAL
            if observation.severity is Severity.WARNING:
                worst = Severity.WARNING
        return worst

    @property
    def healthy(self) -> bool:
        return self.severity is Severity.OK

    def observation(self, name: str) -> HealthObservation:
        for candidate in self.observations:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no observation {name!r} in this report")


class HealthMonitor:
    """Polls one device's control plane and classifies what it sees.

    The monitor runs as a *standalone tool* controller (its own SrcID),
    sharing the unified control kernel with applications and the BMC --
    the multi-controller arrangement the paper's soft-core placement
    enables.
    """

    def __init__(
        self,
        control: ControlPlane,
        thresholds: Optional[Dict[str, Threshold]] = None,
    ) -> None:
        self.control = control
        self.thresholds = dict(DEFAULT_THRESHOLDS)
        if thresholds:
            self.thresholds.update(thresholds)
        self.driver = CommandDriver(control.kernel, src_id=SrcId.STANDALONE_TOOL)
        self.cycles_run = 0
        self.history: List[HealthReport] = []

    def _classify(self, name: str, value: float) -> HealthObservation:
        threshold = self.thresholds.get(name)
        severity = threshold.classify(value) if threshold else Severity.OK
        return HealthObservation(name, value, severity)

    def poll_once(self) -> HealthReport:
        """One monitoring cycle: sensors, heartbeat, failure counters."""
        self.cycles_run += 1
        report = HealthReport(self.control.device.name, self.cycles_run)
        sensor_id = self.control.management_instance_id("sensor")
        result = self.driver.cmd_read(
            CommandCode.SENSOR_READ, int(RbbId.MANAGEMENT), sensor_id
        )
        if result.ok and len(result.data) >= 2:
            temperature, vccint = result.data[0], result.data[1]
            report.observations.append(self._classify("temperature_c", temperature))
            report.observations.append(
                self._classify("vccint_mv_delta", abs(vccint - _VCCINT_NOMINAL_MV))
            )
        else:
            report.observations.append(
                HealthObservation("sensor_reachable", 0.0, Severity.CRITICAL)
            )
        report.observations.append(
            self._classify("command_failures", float(self.control.kernel.commands_failed))
        )
        self.history.append(report)
        return report

    def poll(self, cycles: int) -> List[HealthReport]:
        """Run several cycles (the cron the deployment scripts install)."""
        return [self.poll_once() for _ in range(cycles)]

    def alarm_counts(self) -> Dict[Severity, int]:
        counts = {severity: 0 for severity in Severity}
        for report in self.history:
            counts[report.severity] += 1
        return counts


def fleet_health(monitors: List[HealthMonitor]) -> Dict[str, Severity]:
    """One polling sweep across a fleet; device name -> severity."""
    return {
        monitor.control.device.name: monitor.poll_once().severity
        for monitor in monitors
    }
