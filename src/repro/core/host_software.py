"""Host-software control programs over register and command interfaces.

This module models what the paper measures in Figure 13 and Table 4:
the *full bring-up, monitoring, and host-interaction programs* a host
application runs, written once against the traditional register
interface (platform-dependent: addresses, values, lane counts, board
I2C maps, and operation ordering all vary) and once against Harmonia's
command interface (platform-independent: one command per control
operation).

Programs execute against the live register files / the unified control
kernel, and their traces are diffed to count migrations costs -- the
counts are measured, not asserted.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.core.command.codes import CommandCode, RbbId
from repro.core.command.driver import CommandDriver, RegisterDriver
from repro.core.command.kernel import ModuleEndpoint, UnifiedControlKernel
from repro.core.rbb.base import Rbb
from repro.core.shell import UnifiedShell
from repro.core.tailoring import TailoredShell
from repro.errors import ConfigurationError
from repro.platform.device import FpgaDevice, PeripheralKind
from repro.platform.vendor import Vendor

ShellLike = Union[UnifiedShell, TailoredShell]

_RBB_IDS: Dict[str, RbbId] = {
    "network": RbbId.NETWORK,
    "memory": RbbId.MEMORY,
    "host": RbbId.HOST,
}

_CONTROL_REGISTERS: Dict[str, Tuple[str, ...]] = {
    "network": ("CTRL_RX", "CTRL_TX"),
    "memory": ("CTRL_ENABLE", "REORDER_EN"),
    "host": ("GLOBAL_CTRL",),
}

_STATUS_REGISTERS: Dict[str, Tuple[str, ...]] = {
    "network": ("STAT_RX_TOTAL_PACKETS", "STAT_RX_TOTAL_BYTES", "STAT_RX_DROPPED",
                "STAT_TX_TOTAL_PACKETS"),
    "memory": ("STAT_READS", "STAT_WRITES"),
    "host": ("STAT_H2C_PACKETS", "STAT_C2H_PACKETS", "STAT_H2C_BYTES", "STAT_C2H_BYTES"),
}


@dataclass(frozen=True)
class BoardProfile:
    """Board-specific constants the register-level software must know.

    Exactly the knowledge the command interface hides: these values are
    baked into register programs and change on every board migration.
    """

    serdes_lanes: int
    i2c_devices: Tuple[int, ...]
    bar0_base: int
    dma_queues_at_init: int
    filter_table_entries: int
    director_queue_mappings: int

    @staticmethod
    def for_device(device: FpgaDevice) -> "BoardProfile":
        """Derive the profile from the board's peripherals and vendor."""
        if device.has_peripheral(PeripheralKind.QSFP112) or device.has_peripheral(
            PeripheralKind.DSFP
        ):
            lanes = 8
        else:
            lanes = 4
        i2c_base = 0x50 if device.board_vendor is Vendor.INHOUSE else 0x48
        i2c_devices = tuple(i2c_base + index for index in range(len(device.peripherals)))
        bar0 = 0xA000_0000 if device.board_vendor is Vendor.INHOUSE else 0xB000_0000
        return BoardProfile(
            serdes_lanes=lanes,
            i2c_devices=i2c_devices,
            bar0_base=bar0,
            dma_queues_at_init=4 if device.pcie.pcie_lanes == 8 else 8,
            filter_table_entries=8,
            director_queue_mappings=24,
        )


class ControlPlane:
    """Builds and runs the control programs for one shell on one device."""

    def __init__(self, shell: ShellLike, device: Optional[FpgaDevice] = None) -> None:
        self.shell = shell
        self.device = device if device is not None else shell.device
        self.profile = BoardProfile.for_device(self.device)
        self.kernel = UnifiedControlKernel()
        self._regfiles: Dict[str, object] = {}
        self._wire_modules()

    # --- wiring -----------------------------------------------------------

    def _wire_modules(self) -> None:
        for name, rbb in self.shell.rbbs.items():
            regfile = rbb.register_file()
            self._regfiles[name] = regfile
            self.kernel.register_module(
                int(_RBB_IDS[name]),
                0,
                ModuleEndpoint(
                    name=name,
                    regfile=regfile,
                    init_sequence=rbb.init_sequence(),
                    status_registers=_STATUS_REGISTERS.get(name, ()),
                    control_registers=tuple(
                        register for register in _CONTROL_REGISTERS.get(name, ())
                        if register in regfile
                    ),
                ),
            )
        for index, ip in enumerate(self.shell.management):
            regfile = ip.register_file()
            self._regfiles[ip.name] = regfile
            self.kernel.register_module(
                int(RbbId.MANAGEMENT),
                index,
                ModuleEndpoint(
                    name=ip.name,
                    regfile=regfile,
                    init_sequence=ip.init_sequence(),
                ),
            )

    def _rbb(self, name: str) -> Optional[Rbb]:
        return self.shell.rbbs.get(name)

    def management_instance_id(self, name_prefix: str) -> int:
        for index, ip in enumerate(self.shell.management):
            if ip.name.startswith(name_prefix):
                return index
        raise ConfigurationError(f"no management module named {name_prefix}*")

    # --- register-interface programs -----------------------------------------

    def register_full_init(self) -> RegisterDriver:
        """The complete platform-dependent bring-up over registers."""
        driver = RegisterDriver()
        for name, rbb in self.shell.rbbs.items():
            driver.attach(name, self._regfiles[name])
            driver.run_init_program(name, rbb.init_sequence())
        for ip in self.shell.management:
            driver.attach(ip.name, self._regfiles[ip.name])
            driver.run_init_program(ip.name, ip.init_sequence())
        self._register_board_bringup(driver)
        self._register_exfn_setup(driver)
        return driver

    def _register_board_bringup(self, driver: RegisterDriver) -> None:
        """Board-profile-specific operations (the migration pain)."""
        profile = self.profile
        # Optics/power devices on the board I2C bus.
        i2c_name = next(
            ip.name for ip in self.shell.management if ip.name.startswith("i2c")
        )
        for address in profile.i2c_devices:
            driver.reg_write(i2c_name, "TARGET_ADDR", address)
            driver.reg_write(i2c_name, "TX_DATA", 0x01)
            driver.reg_write(i2c_name, "CTRL", 0x3)
            driver.reg_read(i2c_name, "RX_DATA")
        # Per-lane serdes tuning for the network cage.
        network = self._rbb("network")
        if network is not None:
            lanes = min(profile.serdes_lanes, self._lane_count(network))
            # Equalisation values depend on the board's insertion loss,
            # so they change on every board migration.
            salt = (profile.bar0_base >> 24) & 0xFF
            for lane in range(lanes):
                driver.reg_write("network", f"LANE{lane}_TX_CFG", salt + 0x20 + lane)
                driver.reg_write("network", f"LANE{lane}_RX_CFG", salt + 0x10 + lane)
        # DMA queue contexts carry board BAR addresses.
        host = self._rbb("host")
        if host is not None:
            slots = self._context_slot_count(host)
            for queue in range(profile.dma_queues_at_init):
                for slot in range(slots):
                    driver.reg_write(
                        "host", f"QID_CTXT_DATA{slot}",
                        (self.profile.bar0_base + queue * 0x1000 + slot) & 0xFFFF_FFFF,
                    )
                driver.reg_write(
                    "host", "QID_CTXT_MASK",
                    (self.profile.bar0_base >> 16 | queue) & 0xFFFF_FFFF,
                )
                driver.reg_write("host", "QID_CTXT_CMD", queue << 7 | 0x1)

    def _register_exfn_setup(self, driver: RegisterDriver, attach: bool = False) -> None:
        """Filter/director/cache tables written entry by entry.

        Table state lives in Ex-function RAMs reached through the data
        registers of the owning module's register file; each entry is
        an address write plus a data write, which is how P4-style and
        LB tables are really programmed over a reg interface.
        """
        network = self._rbb("network")
        if network is None:
            return
        if attach:
            driver.attach("network", self._regfiles["network"])
        profile = self.profile
        if network.ex_functions["packet_filter"].enabled:
            for entry in range(profile.filter_table_entries):
                driver.reg_write("network", "FLOW_CONTROL_CFG", entry)
                driver.reg_write("network", "CTRL_RX", 0x1_0000 | entry)
        if network.ex_functions["flow_director"].enabled:
            for mapping in range(profile.director_queue_mappings):
                driver.reg_write("network", "FLOW_CONTROL_CFG", 0x8000 | mapping)
                driver.reg_write("network", "CTRL_TX", 0x1_0000 | mapping)
                driver.reg_write("network", "CTRL_RX", 0x2_0000 | mapping)

    def _lane_count(self, network: Rbb) -> int:
        regfile = self._regfiles["network"]
        lanes = 0
        while f"LANE{lanes}_TX_CFG" in regfile:
            lanes += 1
        return lanes

    def _context_slot_count(self, host: Rbb) -> int:
        regfile = self._regfiles["host"]
        if "QID_CTXT_DATA0" not in regfile:
            return 0
        slots = 0
        while f"QID_CTXT_DATA{slots}" in regfile:
            slots += 1
        return slots

    def register_network_init(self) -> RegisterDriver:
        """Full network bring-up over registers (Table 4 row 2).

        MAC init program + per-lane serdes tuning + the filter and
        director tables, entry by entry.
        """
        driver = RegisterDriver()
        network = self._rbb("network")
        if network is None:
            return driver
        driver.attach("network", self._regfiles["network"])
        driver.run_init_program("network", network.init_sequence())
        lanes = min(self.profile.serdes_lanes, self._lane_count(network))
        for lane in range(lanes):
            driver.reg_write("network", f"LANE{lane}_TX_CFG", 0x20 + lane)
            driver.reg_write("network", f"LANE{lane}_RX_CFG", 0x10 + lane)
        self._register_exfn_setup(driver, attach=False)
        return driver

    def command_network_init(self) -> CommandDriver:
        """Network bring-up over commands (Table 4 row 2)."""
        driver = CommandDriver(self.kernel)
        network = self._rbb("network")
        if network is None:
            return driver
        driver.cmd_write(CommandCode.MODULE_INIT, int(RbbId.NETWORK), 0)
        driver.cmd_write(
            CommandCode.MODULE_STATUS_WRITE, int(RbbId.NETWORK), 0,
            data=(int(network.instance.performance_gbps),),
        )
        if network.ex_functions["packet_filter"].enabled:
            entries = tuple(
                value
                for entry in range(self.profile.filter_table_entries)
                for value in (entry, 0x1)
            )
            driver.cmd_write(CommandCode.TABLE_WRITE, int(RbbId.NETWORK), 0, data=entries)
            driver.cmd_write(CommandCode.MULTICAST_JOIN, int(RbbId.NETWORK), 0,
                             data=(0x5E_00_00_01,))
        if network.ex_functions["flow_director"].enabled:
            mappings = tuple(
                value
                for mapping in range(self.profile.director_queue_mappings)
                for value in (0x8000 | mapping, mapping)
            )
            driver.cmd_write(CommandCode.TABLE_WRITE, int(RbbId.NETWORK), 0, data=mappings)
        return driver

    def register_monitoring_walk(self) -> RegisterDriver:
        """Configure + collect every statistics register (Table 4 row 1)."""
        driver = RegisterDriver()
        for name in self.shell.rbbs:
            driver.attach(name, self._regfiles[name])
        for ip in self.shell.management:
            driver.attach(ip.name, self._regfiles[ip.name])
        network = self._rbb("network")
        if network is not None:
            lanes = self._lane_count(network)
            for lane in range(lanes):
                driver.reg_read("network", f"LANE{lane}_STATUS")
                driver.reg_read("network", f"LANE{lane}_RX_CFG")
            for counter in ("STAT_RX_TOTAL_PACKETS", "STAT_RX_TOTAL_BYTES",
                            "STAT_RX_BAD_FCS", "STAT_RX_DROPPED",
                            "STAT_TX_TOTAL_PACKETS", "STAT_TX_TOTAL_BYTES",
                            "STAT_TX_UNDERFLOW"):
                driver.reg_read("network", counter)
            driver.reg_read("network", "RSFEC_CONFIG")
            driver.reg_read("network", "FLOW_CONTROL_CFG")
        host = self._rbb("host")
        if host is not None:
            for queue in range(self.profile.dma_queues_at_init):
                # Per-queue depth, packets, and speed: select, then read.
                driver.reg_write("host", "QID_CTXT_CMD", queue << 7 | 0x2)
                driver.reg_read("host", "QID_CTXT_DATA0")
                driver.reg_read("host", "QID_CTXT_DATA1")
                driver.reg_read("host", "QID_CTXT_DATA2")
            for counter in ("STAT_H2C_PACKETS", "STAT_C2H_PACKETS", "STAT_H2C_BYTES",
                            "STAT_C2H_BYTES", "STAT_DESC_FETCH_ERRORS", "STAT_WRB_DROPS"):
                driver.reg_read("host", counter)
        memory = self._rbb("memory")
        if memory is not None:
            regfile = self._regfiles["memory"]
            for counter in ("STAT_READS", "STAT_WRITES", "STAT_ROW_HITS",
                            "STAT_ROW_MISSES", "STAT_TEMP_C"):
                if counter in regfile:
                    driver.reg_read("memory", counter)
            channel = 0
            while f"MC{channel}_CTRL" in regfile:
                driver.reg_read("memory", f"MC{channel}_CTRL")
                channel += 1
        for ip in self.shell.management:
            if ip.name.startswith("sensor"):
                for register in ("TEMP_C", "VCCINT_MV", "VCCAUX_MV"):
                    driver.reg_read(ip.name, register)
            elif ip.name.startswith("flash"):
                driver.reg_read(ip.name, "STATUS")
                driver.reg_read(ip.name, "WRITE_PROTECT")
            elif ip.name.startswith("i2c"):
                driver.reg_read(ip.name, "STATUS")
            elif ip.name.startswith("softcore"):
                driver.reg_read(ip.name, "STATUS")
                driver.reg_read(ip.name, "FIRMWARE_VERSION")
                driver.reg_read(ip.name, "CMD_PROCESSED")
                driver.reg_read(ip.name, "HEARTBEAT")
        return driver

    def register_host_interaction(self) -> RegisterDriver:
        """Host interaction config: queues, doorbells, IRQs (Table 4 row 3)."""
        driver = RegisterDriver()
        host = self._rbb("host")
        if host is None:
            return driver
        driver.attach("host", self._regfiles["host"])
        profile = self.profile
        slots = self._context_slot_count(host)
        driver.reg_write("host", "GLOBAL_CTRL", 0x0)
        driver.reg_write("host", "IRQ_VECTOR_BASE", 0x20)
        driver.reg_write("host", "IRQ_FUNCTION_MAP", 0x0)
        driver.reg_write("host", "WRB_INTERVAL", 16)
        for queue in range(profile.dma_queues_at_init):
            for slot in range(slots):
                driver.reg_write(
                    "host", f"QID_CTXT_DATA{slot}",
                    (profile.bar0_base + 0x8000 + queue * 0x100 + slot) & 0xFFFF_FFFF,
                )
            driver.reg_write("host", "QID_CTXT_MASK", 0xFFFF_FFFF)
            driver.reg_write("host", "QID_CTXT_CMD", queue << 7 | 0x1)
            # Doorbell address, completion ring, and MSI-X binding per queue.
            driver.reg_write("host", "RING_SIZE_0", 1_024 + queue)
            driver.reg_write("host", "RING_SIZE_1", 4_096 + queue)
            driver.reg_write("host", "IRQ_VECTOR_BASE", 0x20 + queue)
        driver.reg_write("host", "DATA_FENCE_CTRL", 0x1)
        driver.reg_write("host", "CMPL_RING_CFG", 0x3)
        driver.reg_write("host", "GLOBAL_CTRL", 0x1)
        driver.reg_read("host", "GLOBAL_STATUS")
        return driver

    # --- command-interface programs -----------------------------------------------

    def command_full_init(self) -> CommandDriver:
        """The platform-independent bring-up: one command per operation."""
        driver = CommandDriver(self.kernel)
        for name, rbb in self.shell.rbbs.items():
            driver.cmd_write(CommandCode.MODULE_INIT, int(_RBB_IDS[name]), 0)
            # The one platform-visible knob: which instance tier the role
            # selected (25/100/400G MAC, DDR vs HBM, BDMA vs SGDMA).
            driver.cmd_write(
                CommandCode.MODULE_STATUS_WRITE, int(_RBB_IDS[name]), 0,
                data=(int(rbb.instance.performance_gbps),),
            )
        for index, _ip in enumerate(self.shell.management):
            driver.cmd_write(CommandCode.MODULE_INIT, int(RbbId.MANAGEMENT), index)
        network = self._rbb("network")
        if network is not None and network.ex_functions["packet_filter"].enabled:
            entries = tuple(
                value
                for entry in range(self.profile.filter_table_entries)
                for value in (entry, 0x1)
            )
            driver.cmd_write(CommandCode.TABLE_WRITE, int(RbbId.NETWORK), 0, data=entries)
        if network is not None and network.ex_functions["flow_director"].enabled:
            mappings = tuple(
                value
                for mapping in range(self.profile.director_queue_mappings)
                for value in (0x8000 | mapping, mapping)
            )
            driver.cmd_write(CommandCode.TABLE_WRITE, int(RbbId.NETWORK), 0, data=mappings)
        return driver

    def command_monitoring_walk(self) -> CommandDriver:
        """Monitoring over commands: one STATUS_READ per module class."""
        driver = CommandDriver(self.kernel)
        for name in self.shell.rbbs:
            driver.cmd_read(CommandCode.MODULE_STATUS_READ, int(_RBB_IDS[name]), 0)
        sensor_id = self.management_instance_id("sensor")
        driver.cmd_read(CommandCode.SENSOR_READ, int(RbbId.MANAGEMENT), sensor_id)
        return driver

    def command_host_interaction(self) -> CommandDriver:
        """Host interaction over commands."""
        driver = CommandDriver(self.kernel)
        if self._rbb("host") is None:
            return driver
        queues = tuple(range(self.profile.dma_queues_at_init))
        driver.cmd_write(CommandCode.MODULE_INIT, int(RbbId.HOST), 0)
        driver.cmd_write(CommandCode.QUEUE_ENABLE, int(RbbId.HOST), 0, data=queues)
        driver.cmd_write(CommandCode.MODULE_STATUS_WRITE, int(RbbId.HOST), 0, data=(0x1,))
        driver.cmd_read(CommandCode.MODULE_STATUS_READ, int(RbbId.HOST), 0)
        return driver
