"""The ``irq`` unified type: latency-intensive raw signals.

Paper section 3.2: "To address latency-intensive signal requirements,
Harmonia introduces a special type, irq, which exposes raw signals to
the upper-level logic."  This module gives that type behaviour:

* an MSI-X-style vector table binding module events to host vectors;
* interrupt coalescing (count + time moderation, the standard NIC
  scheme), so bursty completion events do not storm the host;
* delivery timing on the discrete-event simulator, demonstrating why
  the raw path exists at all -- an interrupt reaches the host in one
  PCIe write (~450 ns) where a polled command round trip costs ~1.3 us.
"""

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime import SimContext, ensure_context
from repro.sim.engine import Simulator

#: One posted MSI write crossing PCIe.
MSI_WRITE_PS = 450_000


@dataclass(frozen=True)
class Delivery:
    """One interrupt arriving at the host."""

    vector: int
    events_coalesced: int
    raised_ps: int            # first event in the batch
    delivered_ps: int

    @property
    def latency_ps(self) -> int:
        return self.delivered_ps - self.raised_ps


@dataclass
class _VectorState:
    module: str
    coalesce_count: int
    coalesce_time_ps: int
    masked: bool = False
    pending_events: int = 0
    first_pending_ps: Optional[int] = None
    timer_armed: bool = False


class InterruptController:
    """Vector table + coalescing + MSI delivery over the DES."""

    def __init__(self, simulator: Optional[Simulator] = None,
                 vector_count: int = 32,
                 context: Optional[SimContext] = None) -> None:
        if vector_count < 1:
            raise ConfigurationError("need at least one interrupt vector")
        self.context = ensure_context(context)
        # A caller-supplied engine still wins (legacy embedding); the
        # context then only carries tracing and metrics.
        self.simulator = simulator or self.context.simulator
        self._metrics = self.context.metrics.namespace("irq")
        self.vector_count = vector_count
        self._vectors: Dict[int, _VectorState] = {}
        self.deliveries: List[Delivery] = []
        self.events_raised = 0
        self.suppressed_while_masked = 0

    # --- vector table ---------------------------------------------------------

    def bind(self, vector: int, module: str, coalesce_count: int = 1,
             coalesce_time_ps: int = 0) -> None:
        """Bind a module's event line to an MSI-X vector.

        ``coalesce_count``/``coalesce_time_ps`` set the moderation: an
        MSI fires when either ``count`` events accumulate or ``time``
        elapses since the first pending event, whichever comes first.
        """
        if not 0 <= vector < self.vector_count:
            raise ConfigurationError(
                f"vector {vector} outside table of {self.vector_count}"
            )
        if vector in self._vectors:
            raise ConfigurationError(f"vector {vector} already bound")
        if coalesce_count < 1 or coalesce_time_ps < 0:
            raise ConfigurationError("invalid moderation parameters")
        self._vectors[vector] = _VectorState(module, coalesce_count, coalesce_time_ps)

    def mask(self, vector: int) -> None:
        self._state(vector).masked = True

    def unmask(self, vector: int) -> None:
        """Unmask; pending events deliver immediately (MSI-X semantics)."""
        state = self._state(vector)
        state.masked = False
        if state.pending_events:
            self._fire(vector)

    def _state(self, vector: int) -> _VectorState:
        try:
            return self._vectors[vector]
        except KeyError:
            raise ConfigurationError(f"vector {vector} not bound") from None

    # --- event path -------------------------------------------------------------

    def raise_event(self, vector: int) -> None:
        """A module raises its raw irq line (one event)."""
        state = self._state(vector)
        self.events_raised += 1
        self._metrics.increment("events_raised")
        if state.first_pending_ps is None:
            state.first_pending_ps = self.simulator.now_ps
        state.pending_events += 1
        if state.masked:
            self.suppressed_while_masked += 1
            self._metrics.increment("suppressed_while_masked")
            return
        if state.pending_events >= state.coalesce_count:
            self._fire(vector)
        elif state.coalesce_time_ps and not state.timer_armed:
            state.timer_armed = True
            self.simulator.schedule(
                state.coalesce_time_ps, lambda: self._timer_expired(vector)
            )

    def _timer_expired(self, vector: int) -> None:
        state = self._state(vector)
        state.timer_armed = False
        if state.pending_events and not state.masked:
            self._fire(vector)

    def _fire(self, vector: int) -> None:
        state = self._state(vector)
        events = state.pending_events
        raised = (state.first_pending_ps if state.first_pending_ps is not None
                  else self.simulator.now_ps)
        state.pending_events = 0
        state.first_pending_ps = None
        delivered = self.simulator.now_ps + MSI_WRITE_PS
        self.simulator.schedule(
            MSI_WRITE_PS,
            lambda: self._deliver(Delivery(vector, events, raised, delivered)),
        )

    def _deliver(self, delivery: Delivery) -> None:
        self.deliveries.append(delivery)
        self._metrics.increment("delivered")
        self._metrics.observe("delivery_latency_ps", delivery.latency_ps)
        self.context.trace.complete(
            f"irq.vector{delivery.vector}", delivery.raised_ps,
            delivery.delivered_ps, events=delivery.events_coalesced,
        )

    # --- introspection -----------------------------------------------------------

    def delivered_for(self, vector: int) -> List[Delivery]:
        return [d for d in self.deliveries if d.vector == vector]

    def interrupt_rate_reduction(self, vector: int) -> float:
        """Events per delivered interrupt (the coalescing win)."""
        deliveries = self.delivered_for(vector)
        if not deliveries:
            return 0.0
        return sum(d.events_coalesced for d in deliveries) / len(deliveries)
