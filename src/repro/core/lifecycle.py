"""The cloud FPGA application lifecycle (paper section 4).

Four stages: requirement analysis (PoC feasibility), design &
development (shell + role + software, automated integration),
integration test, and deployment.  Each stage produces an auditable
record; a stage failure stops the pipeline -- "ensuring that each part
is thoroughly validated before online deployment".
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adapters.toolchain import BuildFlow, ProjectBundle
from repro.core.host_software import ControlPlane
from repro.core.role import Role
from repro.core.shell import UnifiedShell, build_unified_shell
from repro.core.tailoring import HierarchicalTailor, TailoredShell
from repro.errors import DeploymentError
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice


class Stage(enum.Enum):
    REQUIREMENT_ANALYSIS = "requirement-analysis"
    DESIGN_DEVELOPMENT = "design-development"
    INTEGRATION_TEST = "integration-test"
    DEPLOYMENT = "deployment"


@dataclass(frozen=True)
class PocEstimate:
    """Stage 1 output: projected acceleration benefit.

    Uses Amdahl's law over the user-reported bottleneck fraction and the
    hardware designers' estimated speedup of the offloaded part.
    """

    bottleneck_fraction: float
    offload_speedup: float

    def __post_init__(self) -> None:
        if not 0.0 < self.bottleneck_fraction <= 1.0:
            raise ValueError("bottleneck fraction must be in (0, 1]")
        if self.offload_speedup < 1.0:
            raise ValueError("offload speedup below 1x is not an acceleration")

    @property
    def end_to_end_speedup(self) -> float:
        remaining = 1.0 - self.bottleneck_fraction
        return 1.0 / (remaining + self.bottleneck_fraction / self.offload_speedup)

    def is_worthwhile(self, threshold: float = 1.3) -> bool:
        """The go/no-go gate hardware designers apply."""
        return self.end_to_end_speedup >= threshold


@dataclass
class StageRecord:
    stage: Stage
    passed: bool
    detail: str = ""


@dataclass
class ApplicationProject:
    """One application moving through the lifecycle."""

    role: Role
    device: FpgaDevice
    poc: PocEstimate
    records: List[StageRecord] = field(default_factory=list)
    tailored_shell: Optional[TailoredShell] = None
    bundle: Optional[ProjectBundle] = None
    deployed_cluster: Optional[str] = None

    @property
    def completed_stages(self) -> List[Stage]:
        return [record.stage for record in self.records if record.passed]


class Lifecycle:
    """Drives a project through the four stages."""

    def __init__(self, device: FpgaDevice, tenants: int = 1) -> None:
        self.device = device
        self.tenants = tenants

    def run_requirement_analysis(self, project: ApplicationProject) -> None:
        """Stage 1: PoC validation of the acceleration benefit."""
        if not project.poc.is_worthwhile():
            project.records.append(
                StageRecord(
                    Stage.REQUIREMENT_ANALYSIS, False,
                    f"projected speedup {project.poc.end_to_end_speedup:.2f}x below gate",
                )
            )
            raise DeploymentError(
                f"{project.role.name}: acceleration benefit too small "
                f"({project.poc.end_to_end_speedup:.2f}x)"
            )
        project.records.append(
            StageRecord(
                Stage.REQUIREMENT_ANALYSIS, True,
                f"projected {project.poc.end_to_end_speedup:.2f}x end-to-end",
            )
        )

    def run_design_development(self, project: ApplicationProject) -> None:
        """Stage 2: unified shell, tailoring, and automated integration."""
        unified = build_unified_shell(self.device, tenants=self.tenants)
        tailored = HierarchicalTailor(unified).tailor(project.role)
        flow = BuildFlow(self.device)
        bundle = flow.build(
            project_name=project.role.name,
            modules=tailored.modules(),
            extra_resources=project.role.resources,
            software_components=(f"{project.role.name}-host", "harmonia-driver"),
        )
        project.tailored_shell = tailored
        project.bundle = bundle
        project.records.append(
            StageRecord(Stage.DESIGN_DEVELOPMENT, True, f"bundle {bundle.artifact_id}")
        )

    def run_integration_test(self, project: ApplicationProject) -> None:
        """Stage 3: exercise every component of the generated project."""
        if project.tailored_shell is None or project.bundle is None:
            raise DeploymentError("integration test requires a built project")
        shell = project.tailored_shell
        failures: List[str] = []
        # Resource fit re-check with the role placed next to the shell.
        try:
            self.device.budget.check_fits(
                shell.resources() + project.role.resources, design=project.role.name
            )
        except Exception as error:  # noqa: BLE001 - collected into the record
            failures.append(str(error))
        # Control-path bring-up over the command interface.
        control = ControlPlane(shell)
        driver = control.command_full_init()
        failed_commands = control.kernel.commands_failed
        if failed_commands:
            failures.append(f"{failed_commands} commands failed during bring-up")
        # Data-path sanity: every retained RBB sustains its line rate.
        for name, rbb in shell.rbbs.items():
            chain = rbb.datapath_chain()
            native = rbb.datapath_chain(include_wrapper=False)
            if chain.bandwidth_bps() < native.bandwidth_bps():
                failures.append(f"RBB {name} loses bandwidth behind the wrapper")
        passed = not failures
        project.records.append(
            StageRecord(Stage.INTEGRATION_TEST, passed, "; ".join(failures) or "all green")
        )
        if not passed:
            raise DeploymentError(
                f"{project.role.name} failed integration test: " + "; ".join(failures)
            )

    def run_deployment(self, project: ApplicationProject, cluster: str) -> None:
        """Stage 4: release to the application cluster."""
        if Stage.INTEGRATION_TEST not in project.completed_stages:
            raise DeploymentError("cannot deploy before integration test passes")
        project.deployed_cluster = cluster
        project.records.append(
            StageRecord(Stage.DEPLOYMENT, True, f"deployed to {cluster}")
        )

    def run_all(self, project: ApplicationProject, cluster: str) -> ApplicationProject:
        """Run the complete pipeline; raises on the first failing stage."""
        self.run_requirement_analysis(project)
        self.run_design_development(project)
        self.run_integration_test(project)
        self.run_deployment(project, cluster)
        return project
