"""Shell manifests: the serialisable description of a deployment.

The paper's build flow packages "the FPGA executable bitstream and
software ... together into a consolidated project file".  The manifest
is that file's metadata half: device, role demands, selected instances,
enabled Ex-functions, and exposed properties -- enough to rebuild the
exact tailored shell elsewhere (e.g. on the deployment host, or for an
audit diff between two releases).
"""

import json
from typing import Dict

from repro.core.role import Architecture, Role, RoleDemands
from repro.core.shell import build_unified_shell
from repro.core.tailoring import HierarchicalTailor, TailoredShell
from repro.errors import ConfigurationError
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.catalog import device_by_name

MANIFEST_VERSION = 1


def shell_manifest(shell: TailoredShell) -> Dict:
    """The JSON-serialisable description of a tailored shell."""
    demands = shell.role.demands
    return {
        "manifest_version": MANIFEST_VERSION,
        "device": shell.device.name,
        "role": {
            "name": shell.role.name,
            "architecture": shell.role.architecture.value,
            "demands": {
                "network_gbps": demands.network_gbps,
                "memory_bandwidth_gibps": demands.memory_bandwidth_gibps,
                "memory_capacity_gib": demands.memory_capacity_gib,
                "host_gbps": demands.host_gbps,
                "bulk_dma": demands.bulk_dma,
                "tenants": demands.tenants,
                "needs_multicast": demands.needs_multicast,
                "needs_flow_steering": demands.needs_flow_steering,
                "needs_hot_cache": demands.needs_hot_cache,
                "user_clock_mhz": demands.user_clock_mhz,
            },
            "resources": shell.role.resources.as_dict(),
        },
        "rbbs": {
            name: {
                "instance": rbb.selected_instance_name,
                "ex_functions": {
                    fn.name: fn.enabled for fn in rbb.ex_functions.values()
                },
            }
            for name, rbb in sorted(shell.rbbs.items())
        },
        "role_oriented_properties": sorted(shell.role_oriented_properties),
        "shell_resources": shell.resources().as_dict(),
    }


def to_json(shell: TailoredShell, indent: int = 2) -> str:
    return json.dumps(shell_manifest(shell), indent=indent, sort_keys=True)


def _role_from_manifest(data: Dict) -> Role:
    role_data = data["role"]
    demands = RoleDemands(**role_data["demands"])
    return Role(
        name=role_data["name"],
        architecture=Architecture(role_data["architecture"]),
        demands=demands,
        resources=ResourceUsage(**role_data["resources"]),
    )


def rebuild_from_manifest(data: Dict) -> TailoredShell:
    """Re-tailor the shell a manifest describes and cross-check it.

    Raises :class:`ConfigurationError` when the rebuilt shell disagrees
    with the manifest (e.g. the library's selection logic changed since
    the manifest was produced -- exactly what an audit should catch).
    """
    version = data.get("manifest_version")
    if version != MANIFEST_VERSION:
        raise ConfigurationError(
            f"unsupported manifest version {version!r} (expected {MANIFEST_VERSION})"
        )
    device = device_by_name(data["device"])
    role = _role_from_manifest(data)
    unified = build_unified_shell(device, tenants=role.demands.tenants)
    shell = HierarchicalTailor(unified).tailor(role)
    rebuilt = shell_manifest(shell)
    for key in ("rbbs", "role_oriented_properties"):
        if rebuilt[key] != data[key]:
            raise ConfigurationError(
                f"rebuilt shell disagrees with manifest on {key!r}: "
                f"{rebuilt[key]!r} != {data[key]!r}"
            )
    return shell


def from_json(text: str) -> TailoredShell:
    return rebuild_from_manifest(json.loads(text))
