"""Multi-tenancy support (paper section 6).

"Harmonia utilizes the Ex-function in RBBs to achieve resource
isolation in the shell, while employing typical partial reconfiguration
techniques to enable multi-tenancy deployment in the role.  Moreover,
Harmonia provides multiple independent queues to isolate host software
belonging to different users."

This module adds the role-side piece: partial-reconfiguration slots
that host independent tenant roles, with resource-budgeted loading and
the decouple-reconfigure-enable sequence real PR flows use.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

try:  # numpy is a declared dependency, but degrade instead of crashing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.core.role import Role
from repro.errors import ConfigurationError, ResourceExhaustedError
from repro.metrics.resources import ResourceBudget, ResourceUsage


class SlotState(enum.Enum):
    EMPTY = "empty"
    DECOUPLED = "decoupled"        # isolation asserted, ready to program
    PROGRAMMING = "programming"
    ACTIVE = "active"


@dataclass
class PrSlot:
    """One partial-reconfiguration region."""

    index: int
    budget: ResourceBudget
    state: SlotState = SlotState.EMPTY
    tenant: Optional[str] = None
    role: Optional[Role] = None
    reconfigurations: int = 0


class PartialReconfigManager:
    """Loads tenant roles into PR slots with budget and state checks."""

    def __init__(self, slot_budgets: List[ResourceBudget]) -> None:
        if not slot_budgets:
            raise ConfigurationError("need at least one PR slot")
        self.slots = [PrSlot(index, budget) for index, budget in enumerate(slot_budgets)]

    def slot(self, index: int) -> PrSlot:
        try:
            return self.slots[index]
        except IndexError:
            raise ConfigurationError(f"no PR slot {index}") from None

    def find_free_slot(self, usage: ResourceUsage) -> PrSlot:
        """The first empty slot the role fits in."""
        for slot in self.slots:
            if slot.state is not SlotState.EMPTY:
                continue
            try:
                slot.budget.check_fits(usage, design="tenant role")
            except ResourceExhaustedError:
                continue
            return slot
        raise ResourceExhaustedError("no free PR slot fits the role")

    def load(self, tenant: str, role: Role, slot_index: Optional[int] = None) -> PrSlot:
        """Decouple, program, and activate a tenant role."""
        if slot_index is None:
            slot = self.find_free_slot(role.resources)
        else:
            slot = self.slot(slot_index)
            if slot.state is not SlotState.EMPTY:
                raise ConfigurationError(
                    f"slot {slot.index} is {slot.state.value}, not empty"
                )
            slot.budget.check_fits(role.resources, design=role.name)
        # The PR sequence: decouple (isolate shell from the region),
        # program the partial bitstream, re-enable.
        slot.state = SlotState.DECOUPLED
        slot.state = SlotState.PROGRAMMING
        slot.tenant = tenant
        slot.role = role
        slot.reconfigurations += 1
        slot.state = SlotState.ACTIVE
        return slot

    def unload(self, slot_index: int) -> None:
        """Evict a tenant; the slot returns to empty."""
        slot = self.slot(slot_index)
        if slot.state is not SlotState.ACTIVE:
            raise ConfigurationError(f"slot {slot.index} has no active tenant")
        slot.state = SlotState.EMPTY
        slot.tenant = None
        slot.role = None

    def tenants(self) -> Dict[int, str]:
        """slot index -> tenant for every active slot."""
        return {
            slot.index: slot.tenant
            for slot in self.slots
            if slot.state is SlotState.ACTIVE and slot.tenant is not None
        }

    def active_count(self) -> int:
        return sum(1 for slot in self.slots if slot.state is SlotState.ACTIVE)


def residency_matrix(tenant_load, slots: int):
    """Which tenants keep their partial bitstream resident, per device.

    ``tenant_load`` is a ``(devices, tenants)`` array of offered load;
    on each device the ``slots`` heaviest tenants hold the PR slots
    (their roles stay programmed), everyone else pays a partial
    reconfiguration on arrival.  Returns a boolean mask of the same
    shape.  Ties break toward the lower tenant index (stable sort), so
    the residency plan is deterministic for a given load matrix.  This
    is the fleet-scale, vectorized companion to
    :class:`PartialReconfigManager`, which models one device's slots in
    full mechanical detail.
    """
    if _np is None:
        raise ConfigurationError("numpy is required for residency_matrix")
    if slots < 1:
        raise ConfigurationError("need at least one slot")
    loads = _np.asarray(tenant_load, dtype=_np.float64)
    if loads.ndim != 2:
        raise ConfigurationError("tenant_load must be (devices, tenants)")
    tenants = loads.shape[1]
    if tenants <= slots:
        return _np.ones(loads.shape, dtype=bool)
    order = _np.argsort(-loads, axis=1, kind="stable")
    resident = _np.zeros(loads.shape, dtype=bool)
    _np.put_along_axis(resident, order[:, :slots], True, axis=1)
    return resident


def even_slot_budgets(total: ResourceBudget, slots: int,
                      role_fraction: float = 0.6) -> List[ResourceBudget]:
    """Split the role region of a device into equal PR slots.

    ``role_fraction`` is the share of the device left to roles after the
    shell; it is divided evenly among ``slots``.
    """
    if slots < 1:
        raise ConfigurationError("need at least one slot")
    if not 0.0 < role_fraction <= 1.0:
        raise ConfigurationError("role fraction must be in (0, 1]")
    share = role_fraction / slots
    return [
        ResourceBudget(
            lut=int(total.lut * share),
            ff=int(total.ff * share),
            bram_36k=int(total.bram_36k * share),
            uram=int(total.uram * share),
            dsp=int(total.dsp * share),
        )
        for _ in range(slots)
    ]
