"""Reusable Building Blocks (paper section 3.3.1)."""

from repro.core.rbb.base import ExFunction, Rbb, RbbKind
from repro.core.rbb.cdc import ParamClockDomainCrossing
from repro.core.rbb.host import HostRbb, MultiQueueScheduler
from repro.core.rbb.memory import AddressInterleaver, HotCache, MemoryRbb
from repro.core.rbb.network import FlowDirector, NetworkRbb, PacketFilter
from repro.core.rbb.transport import LossyLink, ReliableTransport

__all__ = [
    "AddressInterleaver",
    "ExFunction",
    "FlowDirector",
    "HostRbb",
    "HotCache",
    "MemoryRbb",
    "MultiQueueScheduler",
    "NetworkRbb",
    "LossyLink",
    "PacketFilter",
    "ParamClockDomainCrossing",
    "ReliableTransport",
    "Rbb",
    "RbbKind",
]
