"""The Reusable Building Block abstraction.

Each RBB consists of two parts (paper Figure 6):

* the **specific instance** -- a selectable vendor IP providing the raw
  connectivity (25/100/400G MAC, DDR/HBM controller, PCIe DMA flavour);
* the **reusable logic** -- common logic extending beyond the instance:
  *Ex-functions* for performance/feature enhancement, plus *control*
  (initialization etc.) and *monitoring* logic for hardware management.

The reusable part is what survives migration; the instance is swapped
per platform behind the interface wrapper.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adapters.wrapper import InterfaceWrapper, WrappedIp
from repro.errors import ConfigurationError, TailoringError
from repro.hw.ip.base import VendorIp
from repro.hw.registers import InitSequence, RegisterFile
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.runtime import (
    CounterDictView,
    GaugeDictView,
    MetricsRegistry,
    current_context,
)
from repro.sim.pipeline import PipelineChain, PipelineStage
from repro.sim.stats import MonitorSnapshot


class RbbKind(enum.Enum):
    """The RBB classes Harmonia provides."""

    NETWORK = "network"
    MEMORY = "memory"
    HOST = "host"
    MANAGEMENT = "management"


@dataclass
class ExFunction:
    """One Ex-function: optional reusable enhancement logic.

    Concrete behaviour (packet filtering, interleaving, ...) lives in
    the RBB subclasses; this dataclass carries the bookkeeping that
    tailoring and accounting operate on.
    """

    name: str
    resources: ResourceUsage
    role_properties: Tuple[str, ...] = ()
    enabled: bool = True
    latency_cycles: int = 1


class Rbb:
    """Base class for all Reusable Building Blocks."""

    kind: RbbKind = RbbKind.MANAGEMENT

    #: Reusable-logic code inventory (Ex-functions + control + monitor).
    #: Subclasses override; mostly ``common`` by construction -- that is
    #: the point of the abstraction.
    reusable_loc: LocInventory = LocInventory()

    #: Fabric cost of the always-present control + monitoring logic.
    control_monitor_resources: ResourceUsage = ResourceUsage(lut=450, ff=700, bram_36k=1)

    def __init__(self, name: str, instances: Dict[str, VendorIp], default: str) -> None:
        if not instances:
            raise ConfigurationError(f"RBB {name!r} needs at least one instance")
        if default not in instances:
            raise ConfigurationError(f"default instance {default!r} not in catalog")
        self.name = name
        self._instances = dict(instances)
        self._selected = default
        self._wrapper = InterfaceWrapper()
        self._wrapped: Optional[WrappedIp] = None
        self.ex_functions: Dict[str, ExFunction] = {}
        # Monitoring publishes into the runtime metrics registry -- the
        # ambient context's when one is active (so a whole shell scrapes
        # from one tree), else a private registry.  ``counters`` and
        # ``gauges`` stay dict-compatible live views over it.
        registry = (current_context().metrics if current_context() is not None
                    else MetricsRegistry())
        self.metrics = registry.namespace(f"rbb.{name}")
        self.counters = CounterDictView(self.metrics)
        self.gauges = GaugeDictView(self.metrics)

    # --- instance selection ------------------------------------------------

    @property
    def instance_names(self) -> List[str]:
        return sorted(self._instances)

    @property
    def instance(self) -> VendorIp:
        """The currently selected specific instance."""
        return self._instances[self._selected]

    @property
    def selected_instance_name(self) -> str:
        return self._selected

    def select_instance(self, name: str) -> VendorIp:
        """Pick a specific instance matching the role's performance needs."""
        if name not in self._instances:
            available = ", ".join(self.instance_names)
            raise TailoringError(
                f"RBB {self.name!r} has no instance {name!r}; available: {available}"
            )
        self._selected = name
        self._wrapped = None
        return self.instance

    # --- wrapped data path ---------------------------------------------------

    @property
    def wrapped(self) -> WrappedIp:
        """The selected instance behind its interface wrapper (cached)."""
        if self._wrapped is None or self._wrapped.ip is not self.instance:
            self._wrapped = self._wrapper.wrap(self.instance)
        return self._wrapped

    def ex_function_stage(self) -> Optional[PipelineStage]:
        """The enabled Ex-functions as one fully pipelined stage."""
        enabled = [fn for fn in self.ex_functions.values() if fn.enabled]
        if not enabled:
            return None
        return PipelineStage(
            name=f"{self.name}.exfn",
            clock=self.instance.clock,
            data_width_bits=self.instance.data_width_bits,
            latency_cycles=sum(fn.latency_cycles for fn in enabled),
            initiation_interval=1,
        )

    def datapath_chain(self, include_wrapper: bool = True) -> PipelineChain:
        """Instance (+ wrapper) (+ Ex-functions) as a pipeline chain."""
        stages: List[PipelineStage] = [self.instance.datapath_stage()]
        if include_wrapper:
            stages.append(self.wrapped.wrapper_stage())
        exfn_stage = self.ex_function_stage()
        if exfn_stage is not None:
            stages.append(exfn_stage)
        return PipelineChain(f"{self.name}.datapath", stages)

    # --- Ex-function management ---------------------------------------------

    def add_ex_function(self, function: ExFunction) -> None:
        if function.name in self.ex_functions:
            raise ConfigurationError(f"duplicate Ex-function {function.name!r}")
        self.ex_functions[function.name] = function

    def disable_ex_function(self, name: str) -> None:
        """Tailoring hook: drop an Ex-function the role does not need."""
        try:
            self.ex_functions[name].enabled = False
        except KeyError:
            raise TailoringError(f"RBB {self.name!r} has no Ex-function {name!r}") from None

    def enabled_ex_functions(self) -> List[ExFunction]:
        return [fn for fn in self.ex_functions.values() if fn.enabled]

    # --- accounting ------------------------------------------------------------

    def resources(self, include_wrapper: bool = True) -> ResourceUsage:
        """Fabric cost of instance + wrapper + enabled reusable logic."""
        total = self.instance.resources + self.control_monitor_resources
        if include_wrapper:
            total = total + self.wrapped.resources
        for function in self.enabled_ex_functions():
            total = total + function.resources
        return total

    def loc(self) -> LocInventory:
        """Development-workload inventory: instance glue + reusable logic."""
        return self.instance.loc + self.reusable_loc

    def native_config_item_count(self) -> int:
        """Configuration items the bare vendor instance exposes."""
        return self.instance.config_item_count

    def role_properties(self) -> List[str]:
        """The role-oriented property subset (property-level tailoring)."""
        properties = [f"{self.name}.instance_select", f"{self.name}.data_width"]
        for function in self.enabled_ex_functions():
            properties.extend(f"{self.name}.{prop}" for prop in function.role_properties)
        return properties

    # --- control & monitoring ----------------------------------------------

    def register_file(self) -> RegisterFile:
        return self.instance.register_file()

    def init_sequence(self) -> InitSequence:
        return self.instance.init_sequence()

    def publish_monitors(self, regfile: RegisterFile) -> int:
        """Poke monitoring counters into the module's STAT_* registers.

        This is what the hardware statistics block does continuously;
        calling it before a MODULE_STATUS_READ makes the command return
        live traffic numbers.  Returns how many registers were updated.
        """
        mapping = {
            "rx_packets": "STAT_RX_TOTAL_PACKETS",
            "rx_bytes": "STAT_RX_TOTAL_BYTES",
            "rx_dropped": "STAT_RX_DROPPED",
            "filtered_packets": "STAT_RX_DROPPED",
            "tx_packets": "STAT_TX_TOTAL_PACKETS",
            "tx_bytes": "STAT_TX_TOTAL_BYTES",
            "reads": "STAT_READS",
            "writes": "STAT_WRITES",
            "row_hits": "STAT_ROW_HITS",
            "row_misses": "STAT_ROW_MISSES",
            "submitted": "STAT_H2C_PACKETS",
            "transferred": "STAT_C2H_PACKETS",
            "transferred_bytes": "STAT_C2H_BYTES",
        }
        updated = 0
        for counter, register in mapping.items():
            if counter in self.counters and register in regfile:
                regfile.poke(register, self.counters[counter])
                updated += 1
        return updated

    def monitor_snapshot(self) -> MonitorSnapshot:
        """Current monitoring state (what STATUS_READ commands return)."""
        return MonitorSnapshot(
            module=self.name, counters=dict(self.counters), gauges=dict(self.gauges)
        )

    def _bump(self, counter: str, amount: int = 1) -> None:
        self.metrics.increment(counter, amount)

    def reset_monitoring(self) -> None:
        self.metrics.clear()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, instance={self._selected!r})"
