"""Parameterised clock-domain crossing (paper section 3.3.1, Figure 6).

"To synchronize an RBB at S MHz clock and M bits data width with a user
application at R MHz clock and U bits data width, Harmonia employs the
widely used asynchronous FIFO to perform cross-domain data read and
write ...  Users can select instances that match S x M = R x U to
achieve lossless bandwidth."

The crossing is built on :class:`repro.sim.fifo.AsyncFifo` (gray-code
pointer timing) and exposes itself as a fully pipelined stage on the
destination clock, so it adds fixed latency and -- when the bandwidth
rule holds -- no throughput loss.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.sim.clock import ClockDomain
from repro.sim.fifo import AsyncFifo
from repro.sim.pipeline import PipelineStage


@dataclass(frozen=True)
class CdcEndpoint:
    """One side of the crossing: a clock and a data width."""

    clock: ClockDomain
    data_width_bits: int

    @property
    def bandwidth_bps(self) -> float:
        return self.clock.bandwidth_bps(self.data_width_bits)


class ParamClockDomainCrossing:
    """A configurable dual-clock, dual-width crossing."""

    def __init__(
        self,
        name: str,
        source: CdcEndpoint,
        destination: CdcEndpoint,
        fifo_depth: int = 64,
        sync_stages: int = 2,
    ) -> None:
        if source.data_width_bits <= 0 or destination.data_width_bits <= 0:
            raise ConfigurationError("CDC data widths must be positive")
        self.name = name
        self.source = source
        self.destination = destination
        self.fifo = AsyncFifo(
            f"{name}.fifo",
            depth=fifo_depth,
            write_clock=source.clock,
            read_clock=destination.clock,
            sync_stages=sync_stages,
        )

    @property
    def is_lossless(self) -> bool:
        """True when the destination can drain at least the source rate.

        The paper's selection rule is the equality S x M = R x U; any
        faster destination is equally lossless, so this is an
        inequality check.
        """
        return self.destination.bandwidth_bps >= self.source.bandwidth_bps

    @property
    def width_ratio(self) -> float:
        """Destination/source width ratio handled by the converter."""
        return self.destination.data_width_bits / self.source.data_width_bits

    @property
    def added_latency_ps(self) -> int:
        """Fixed latency: pointer synchronisation + output register."""
        return self.fifo.crossing_latency_ps

    def stage(self) -> PipelineStage:
        """The crossing as a pipeline stage on the destination clock.

        Latency is the synchroniser depth; the stage runs at the
        destination's width and frequency, so a bandwidth-mismatched
        crossing correctly becomes the chain's bottleneck.
        """
        latency_cycles = self.fifo.sync_stages + 1
        return PipelineStage(
            name=self.name,
            clock=self.destination.clock,
            data_width_bits=self.destination.data_width_bits,
            latency_cycles=latency_cycles,
            initiation_interval=1,
        )

    def require_lossless(self) -> None:
        """Raise :class:`ConfigurationError` when the S*M <= R*U rule fails."""
        if not self.is_lossless:
            raise ConfigurationError(
                f"CDC {self.name!r} loses bandwidth: source "
                f"{self.source.bandwidth_bps / 1e9:.1f} Gbps > destination "
                f"{self.destination.bandwidth_bps / 1e9:.1f} Gbps; select a "
                "faster destination instance (S x M = R x U)"
            )


def matching_user_width(
    rbb_clock_mhz: float, rbb_width_bits: int, user_clock_mhz: float
) -> int:
    """Smallest power-of-two user width satisfying S x M <= R x U."""
    required = rbb_clock_mhz * rbb_width_bits / user_clock_mhz
    width = 1
    while width < required:
        width *= 2
    return width
