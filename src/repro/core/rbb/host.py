"""Host RBB: PCIe DMA connectivity (paper section 3.3.1).

Ex-function: *multi-queue isolation* -- "provides 1K DMA queues to
isolate the transmitted data from different tenants.  Harmonia
maintains an active/inactive state for each queue, and only schedules
active queues to improve the scheduling rate."

Monitoring covers per-queue depth, transmitted packets and speed.  Data
moves over mem-map and stream interfaces; control is a 32-bit reg
interface; instances are PCIe DMA engines whose data width and clock
double per PCIe generation.
"""

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.rbb.base import ExFunction, Rbb, RbbKind
from repro.errors import ConfigurationError
from repro.hw.ip.base import DmaEngineKind
from repro.hw.ip.pcie import (
    inhouse_bdma,
    intel_ptile_mcdma,
    xilinx_qdma,
    xilinx_xdma,
)
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import PcieGeneration
from repro.platform.vendor import Vendor

#: The paper's Ex-function provides 1K isolated DMA queues.
DEFAULT_QUEUE_COUNT = 1_024


@dataclass
class DmaDescriptor:
    """One queued DMA transfer."""

    queue_id: int
    size_bytes: int
    tenant_id: int = 0


class MultiQueueScheduler:
    """Active-list round-robin over per-tenant isolated queues.

    Keeping an explicit active list means scheduling cost is O(active
    queues) rather than O(all queues) -- the paper's "only schedules
    active queues to improve the scheduling rate" -- which the unit
    tests verify by counting queue visits.
    """

    def __init__(self, queue_count: int = DEFAULT_QUEUE_COUNT, tenants: int = 1) -> None:
        if queue_count < 1 or tenants < 1 or queue_count < tenants:
            raise ConfigurationError("need at least one queue per tenant")
        self.queue_count = queue_count
        self.tenants = tenants
        self.queues: List[Deque[DmaDescriptor]] = [deque() for _ in range(queue_count)]
        self._active: Deque[int] = deque()
        self._active_set: set = set()
        self.queue_visits = 0
        self.scheduled = 0

    def queues_of_tenant(self, tenant_id: int) -> range:
        per_tenant = self.queue_count // self.tenants
        start = tenant_id * per_tenant
        return range(start, start + per_tenant)

    def submit(self, descriptor: DmaDescriptor) -> None:
        """Enqueue a descriptor; tenant isolation is enforced here."""
        if descriptor.queue_id not in self.queues_of_tenant(descriptor.tenant_id):
            raise ConfigurationError(
                f"tenant {descriptor.tenant_id} may not use queue {descriptor.queue_id}"
            )
        queue = self.queues[descriptor.queue_id]
        queue.append(descriptor)
        if descriptor.queue_id not in self._active_set:
            self._active_set.add(descriptor.queue_id)
            self._active.append(descriptor.queue_id)

    @property
    def active_queue_count(self) -> int:
        return len(self._active)

    def depth(self, queue_id: int) -> int:
        return len(self.queues[queue_id])

    def schedule(self) -> Optional[DmaDescriptor]:
        """Pop the next descriptor in round-robin over active queues."""
        while self._active:
            self.queue_visits += 1
            queue_id = self._active.popleft()
            queue = self.queues[queue_id]
            if not queue:
                self._active_set.discard(queue_id)
                continue
            descriptor = queue.popleft()
            if queue:
                self._active.append(queue_id)
            else:
                self._active_set.discard(queue_id)
            self.scheduled += 1
            return descriptor
        return None

    def drain(self) -> List[DmaDescriptor]:
        """Schedule until every queue is empty."""
        result: List[DmaDescriptor] = []
        while True:
            descriptor = self.schedule()
            if descriptor is None:
                return result
            result.append(descriptor)


class HostRbb(Rbb):
    """The Host Reusable Building Block."""

    kind = RbbKind.HOST

    reusable_loc = LocInventory(common=3_700, vendor_specific=150, device_specific=120)

    control_monitor_resources = ResourceUsage(lut=1_500, ff=2_400, bram_36k=6)

    reg_width_bits = 32

    def __init__(
        self,
        generation: PcieGeneration = PcieGeneration.GEN4,
        lanes: int = 16,
        tenants: int = 1,
        default_instance: str = "sgdma-xilinx",
    ) -> None:
        instances = {
            "sgdma-xilinx": xilinx_qdma(generation, min(lanes, 8)),
            "bdma-xilinx": xilinx_xdma(PcieGeneration.GEN3, lanes),
            "sgdma-intel": intel_ptile_mcdma(generation, lanes),
            "bdma-inhouse": inhouse_bdma(generation, lanes),
        }
        super().__init__("host", instances, default_instance)
        self.scheduler = MultiQueueScheduler(DEFAULT_QUEUE_COUNT, tenants=tenants)
        self.add_ex_function(
            ExFunction(
                name="multi_queue_isolation",
                resources=ResourceUsage(lut=4_200, ff=5_500, bram_36k=20),
                role_properties=("queue_count", "tenant_count", "active_scheduling"),
                latency_cycles=2,
            )
        )

    def instance_for_transfer(self, bulk: bool, vendor: Vendor) -> str:
        """BDMA for bulk transfers, SGDMA for discrete transfers.

        The silicon vendor's own engine is preferred; in-house IP is the
        fallback for vendors without a matching engine style.
        """
        wanted = DmaEngineKind.BDMA if bulk else DmaEngineKind.SGDMA
        fallback = None
        for name in self.instance_names:
            ip = self._instances[name]
            if ip.dma_engine is not wanted:
                continue
            if ip.vendor is vendor:
                return name
            if ip.vendor is Vendor.INHOUSE:
                fallback = name
        if fallback is not None:
            return fallback
        raise ConfigurationError(f"no {wanted.value} engine for vendor {vendor.value}")

    def transfer(self, descriptors: Iterable[DmaDescriptor]) -> Tuple[int, int]:
        """Submit + drain descriptors; returns (count, bytes) moved."""
        for descriptor in descriptors:
            self.scheduler.submit(descriptor)
            self._bump("submitted")
        moved = self.scheduler.drain()
        total_bytes = sum(d.size_bytes for d in moved)
        self._bump("transferred", len(moved))
        self._bump("transferred_bytes", total_bytes)
        self.gauges["active_queues"] = float(self.scheduler.active_queue_count)
        return len(moved), total_bytes
