"""Memory RBB: DDR/HBM management (paper section 3.3.1).

Ex-functions:

* :class:`AddressInterleaver` -- "maps data into different bank groups
  to improve the efficiency of read/write operations";
* :class:`HotCache` -- "stores consecutively accessed data on-chip for
  fast access, avoiding situations where interleaved access is
  impossible".

The RBB owns a bank-state machine per channel built on the
:class:`repro.hw.ip.ddr.DdrTiming` model, so the access-pattern effects
the paper's storage benchmark shows (sequential > fixed > random,
Figure 18c) come out of actual open-row/bank-group simulation.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.rbb.base import ExFunction, Rbb, RbbKind
from repro.errors import ConfigurationError
from repro.hw.ip.ddr import (
    DDR3_1600,
    DDR4_2400,
    DdrTiming,
    intel_emif_ddr4,
    xilinx_ddr3_mig,
    xilinx_ddr4_mig,
)
from repro.hw.ip.hbm import xilinx_hbm_stack
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.vendor import Vendor


@dataclass(frozen=True)
class MemoryAccess:
    """One read or write of ``size_bytes`` at ``address``."""

    address: int
    size_bytes: int = 64
    is_write: bool = False


@dataclass
class AccessResult:
    """Aggregate outcome of a batch of accesses."""

    total_ps: int
    row_hits: int
    row_misses: int
    cache_hits: int
    bytes_moved: int

    @property
    def bandwidth_gbps(self) -> float:
        if self.total_ps == 0:
            return 0.0
        return self.bytes_moved * 8 / (self.total_ps / 1e12) / 1e9

    def accesses_per_second(self) -> float:
        count = self.row_hits + self.row_misses + self.cache_hits
        if self.total_ps == 0:
            return 0.0
        return count / (self.total_ps / 1e12)


class AddressInterleaver:
    """Bank-group (and channel) interleaving via XOR bit folding.

    Without interleaving, the bank group comes from high address bits,
    so nearby addresses pile into one group and pay the long tCCD_L gap
    back to back.  With interleaving, the group is the XOR of a low and
    a high bit field, spreading consecutive rows across groups.
    """

    def __init__(self, timing: DdrTiming, channels: int, enabled: bool = True) -> None:
        self.timing = timing
        self.channels = channels
        self.enabled = enabled

    def map(self, address: int) -> Tuple[int, int, int, int]:
        """address -> (channel, bank_group, bank, row).

        The mapping is bijective on (group, bank, row) for a fixed
        channel: distinct rows of the device never alias.  Interleaved
        mode spreads consecutive rows across bank groups and banks
        (bank-group-level parallelism); the naive mode is the classic
        ROW-BANK-COLUMN layout where nearby rows share a bank and every
        consecutive access re-activates it.
        """
        timing = self.timing
        burst = address // timing.burst_bytes
        row_index = address // timing.row_bytes
        banks = timing.banks_per_group
        groups = timing.bank_groups
        if self.enabled:
            channel = (burst ^ (burst >> 7)) % max(self.channels, 1)
            group = row_index % groups
            bank = (row_index // groups) % banks
            row = row_index // (groups * banks)
        else:
            channel = (address >> 28) % max(self.channels, 1)
            group = (row_index >> 10) % groups
            bank = (row_index >> 8) % banks
            row = row_index
        return channel, group, bank, row


class HotCache:
    """A direct-mapped on-chip cache for consecutively accessed data."""

    def __init__(self, lines: int = 1_024, line_bytes: int = 64, enabled: bool = True) -> None:
        if lines < 1 or line_bytes < 1:
            raise ConfigurationError("hot cache needs positive geometry")
        self.lines = lines
        self.line_bytes = line_bytes
        self.enabled = enabled
        self._tags: Dict[int, int] = {}
        self.hits = 0
        self.misses = 0

    #: On-chip access time for a cache hit (a couple of fabric cycles).
    HIT_TIME_PS = 6_000

    def lookup(self, address: int, is_write: bool) -> bool:
        """True on hit.  Writes allocate; reads allocate on miss."""
        if not self.enabled:
            return False
        line = address // self.line_bytes
        index = line % self.lines
        if self._tags.get(index) == line and not is_write:
            self.hits += 1
            return True
        self.misses += 1
        self._tags[index] = line
        return False

    def flush(self) -> None:
        self._tags.clear()


class _ChannelState:
    """Open-row, bank, and command-bus timing state for one channel.

    Constraints modelled per JEDEC DDR4 semantics:

    * the data bus carries one burst per BL/2 cycles;
    * consecutive column commands to the same bank group wait tCCD_L,
      across groups only tCCD_S;
    * a row miss activates: activates to the same bank wait tRC, to any
      bank tRRD, and at most four activates fit in a tFAW window.

    Bank-level parallelism falls out: misses to different banks overlap,
    misses hammering one bank serialise on tRC -- which is exactly what
    the address-interleaving Ex-function exploits.
    """

    def __init__(self, timing: DdrTiming) -> None:
        self.timing = timing
        self.open_rows: Dict[Tuple[int, int], int] = {}
        self.bank_free_ps: Dict[Tuple[int, int], int] = {}
        self.activate_window: List[int] = []
        self.last_issue_ps = 0
        self.last_group: Optional[int] = None
        self.bus_free_ps = 0

    def service(self, group: int, bank: int, row: int, now_ps: int) -> Tuple[int, bool]:
        """Issue one burst; returns (completion_ps, row_hit)."""
        timing = self.timing
        issue = max(now_ps, self.bus_free_ps)
        if self.last_group is not None:
            gap = (
                timing.same_group_gap_ps
                if group == self.last_group
                else timing.cross_group_gap_ps
            )
            issue = max(issue, self.last_issue_ps + gap)
        key = (group, bank)
        row_hit = self.open_rows.get(key) == row
        if not row_hit:
            issue = max(issue, self.bank_free_ps.get(key, 0))
            if self.activate_window:
                issue = max(issue, self.activate_window[-1] + timing.trrd_ps)
            if len(self.activate_window) == 4:
                issue = max(issue, self.activate_window[0] + timing.tfaw_ps)
                self.activate_window.pop(0)
            self.activate_window.append(issue)
            self.bank_free_ps[key] = issue + timing.trc_ps
        self.open_rows[key] = row
        self.last_issue_ps = issue
        self.last_group = group
        self.bus_free_ps = issue + timing.burst_transfer_ps
        service = timing.row_hit_ps if row_hit else timing.row_miss_ps
        return issue + service, row_hit


class MemoryRbb(Rbb):
    """The Memory Reusable Building Block."""

    kind = RbbKind.MEMORY

    reusable_loc = LocInventory(common=3_030, vendor_specific=160, device_specific=150)

    control_monitor_resources = ResourceUsage(lut=1_100, ff=1_700, bram_36k=3)

    #: Paper: 512-bit mem map data interface, 32-bit reg control.
    mem_map_width_bits = 512
    reg_width_bits = 32

    def __init__(
        self,
        default_instance: str = "ddr4-xilinx",
        timing: DdrTiming = DDR4_2400,
        cache_lines: int = 1_024,
    ) -> None:
        instances = {
            "ddr3-xilinx": xilinx_ddr3_mig(),
            "ddr4-xilinx": xilinx_ddr4_mig(),
            "ddr4-intel": intel_emif_ddr4(),
            "hbm-xilinx": xilinx_hbm_stack(),
        }
        super().__init__("memory", instances, default_instance)
        self.timing = timing
        self.interleaver = AddressInterleaver(timing, channels=self.channel_count)
        self.hot_cache = HotCache(lines=cache_lines)
        self.add_ex_function(
            ExFunction(
                name="address_interleaving",
                resources=ResourceUsage(lut=1_900, ff=2_300),
                role_properties=("interleave_mode",),
                latency_cycles=1,
            )
        )
        self.add_ex_function(
            ExFunction(
                name="hot_cache",
                resources=ResourceUsage(lut=2_600, ff=3_000, bram_36k=32),
                role_properties=("cache_lines", "cache_line_bytes"),
                latency_cycles=1,
            )
        )

    @property
    def channel_count(self) -> int:
        """Channels of the selected instance (2 DDR dies -> 2; HBM -> 32)."""
        return self.instance.channels

    def select_instance(self, name: str):
        ip = super().select_instance(name)
        # Legacy DDR3 devices run the slower JEDEC timing set.
        self.timing = DDR3_1600 if name.startswith("ddr3") else DDR4_2400
        self.interleaver = AddressInterleaver(
            self.timing, channels=self.channel_count, enabled=self.interleaver.enabled
        )
        return ip

    def instance_for_bandwidth(self, gbps: float, vendor: Vendor, device=None) -> str:
        """Pick DDR vs HBM by required GB/s on the vendor's silicon.

        When a device is given, only instances whose memory kind the
        board actually carries are considered.
        """
        candidates = []
        for name in self.instance_names:
            ip = self._instances[name]
            if ip.performance_gbps / 8 < gbps:
                continue
            if ip.vendor not in (vendor, Vendor.INHOUSE):
                continue
            if device is not None and ip.requires_peripheral is not None:
                if not device.has_peripheral(ip.requires_peripheral):
                    continue
            candidates.append((ip.performance_gbps, name))
        if not candidates:
            raise ConfigurationError(
                f"no {vendor.value} memory instance reaches {gbps} GB/s"
                + (f" on {device.name}" if device is not None else "")
            )
        return min(candidates)[1]

    def run_accesses(self, accesses: Sequence[MemoryAccess]) -> AccessResult:
        """Simulate a batch of accesses through cache + interleaved banks."""
        interleave_on = self.ex_functions["address_interleaving"].enabled
        cache_on = self.ex_functions["hot_cache"].enabled
        self.interleaver.enabled = interleave_on
        self.hot_cache.enabled = cache_on
        channels = [_ChannelState(self.timing) for _ in range(max(self.channel_count, 1))]
        now_ps = 0
        finish_ps = 0
        row_hits = 0
        row_misses = 0
        cache_hits = 0
        bytes_moved = 0
        for access in accesses:
            bytes_moved += access.size_bytes
            self._bump("writes" if access.is_write else "reads")
            if self.hot_cache.lookup(access.address, access.is_write):
                cache_hits += 1
                finish_ps = max(finish_ps, now_ps + HotCache.HIT_TIME_PS)
                now_ps += HotCache.HIT_TIME_PS // 4  # pipelined on-chip hits
                continue
            channel, group, bank, row = self.interleaver.map(access.address)
            completion, hit = channels[channel].service(group, bank, row, now_ps)
            if hit:
                row_hits += 1
            else:
                row_misses += 1
            finish_ps = max(finish_ps, completion)
            # The front end issues one access per controller cycle; the
            # channels absorb them in parallel.
            now_ps += self.instance.clock.period_ps
        self.counters["row_hits"] = self.counters.get("row_hits", 0) + row_hits
        self.counters["row_misses"] = self.counters.get("row_misses", 0) + row_misses
        return AccessResult(
            total_ps=max(finish_ps, 1),
            row_hits=row_hits,
            row_misses=row_misses,
            cache_hits=cache_hits,
            bytes_moved=bytes_moved,
        )
