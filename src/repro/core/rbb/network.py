"""Network RBB: packet- and flow-level processing (paper section 3.3.1).

Ex-functions:

* :class:`PacketFilter` -- "intercepts packets with destination
  addresses that do not belong to the local machine, thereby supporting
  multicast scenarios";
* :class:`FlowDirector` -- "effectively directs incoming flows to their
  corresponding host queues, ensuring network isolation for multi-tenant
  environments".

Monitoring covers "real-time throughput, packet loss, queue usage, and
processing rate".  The data interface is a stream; control is a 32-bit
reg interface; the instance catalog spans 25/100/400G MACs whose data
width scales 128/512/2048 bits.
"""

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.rbb.base import ExFunction, Rbb, RbbKind
from repro.errors import ConfigurationError
from repro.hw.ip.mac import (
    inhouse_mac_200g,
    inhouse_mac_400g,
    intel_etile_100g,
    xilinx_cmac_100g,
    xilinx_xxv_25g,
)
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.vendor import Vendor
from repro.workloads.packets import Packet


class PacketFilter:
    """Destination-MAC filter with multicast group membership."""

    def __init__(self, local_macs: Iterable[int]) -> None:
        self.local_macs: Set[int] = set(local_macs)
        if not self.local_macs:
            raise ConfigurationError("packet filter needs at least one local MAC")
        self.multicast_groups: Set[int] = set()
        self.passed = 0
        self.intercepted = 0

    def join_group(self, group_mac: int) -> None:
        """Subscribe to a multicast group (its frames then pass)."""
        self.multicast_groups.add(group_mac)

    def leave_group(self, group_mac: int) -> None:
        self.multicast_groups.discard(group_mac)

    def admit(self, packet: Packet) -> bool:
        """True when the packet should continue up the pipeline."""
        if packet.dst_mac in self.local_macs:
            self.passed += 1
            return True
        if packet.is_multicast and packet.dst_mac in self.multicast_groups:
            self.passed += 1
            return True
        self.intercepted += 1
        return False


class FlowDirector:
    """Hash-based flow-to-host-queue steering with per-tenant isolation.

    Each tenant owns a disjoint queue range; flows are spread inside the
    owner tenant's range by a stable flow hash, so one tenant's traffic
    can never land in another tenant's queues.
    """

    def __init__(self, total_queues: int = 1_024, tenants: int = 1) -> None:
        if tenants < 1 or total_queues < tenants:
            raise ConfigurationError("need at least one queue per tenant")
        self.total_queues = total_queues
        self.tenants = tenants
        self.queues_per_tenant = total_queues // tenants
        self.flow_table: Dict[int, int] = {}
        self.directed = 0

    def queue_range(self, tenant_id: int) -> Tuple[int, int]:
        """[start, end) queue indices owned by ``tenant_id``."""
        if not 0 <= tenant_id < self.tenants:
            raise ConfigurationError(f"tenant {tenant_id} out of range [0, {self.tenants})")
        start = tenant_id * self.queues_per_tenant
        return start, start + self.queues_per_tenant

    def direct(self, packet: Packet) -> int:
        """The host queue this packet's flow maps to."""
        start, end = self.queue_range(packet.tenant_id)
        flow_hash = packet.flow.hash32()
        queue = start + flow_hash % (end - start)
        self.flow_table[flow_hash] = queue
        self.directed += 1
        return queue


def _cage_compatible(device, ip) -> bool:
    """Whether the board's optical cages can host this MAC instance."""
    from repro.platform.device import PeripheralKind

    high_rate_cages = device.has_peripheral(PeripheralKind.QSFP112) or device.has_peripheral(
        PeripheralKind.DSFP
    )
    if ip.requires_peripheral is PeripheralKind.QSFP112:
        return high_rate_cages
    return device.has_peripheral(PeripheralKind.QSFP28)


class NetworkRbb(Rbb):
    """The Network Reusable Building Block."""

    kind = RbbKind.NETWORK

    #: Reusable logic: stream framing, filter, director, statistics --
    #: mostly platform-independent by design; the redeveloped slice is
    #: the control/monitor hookup into the selected MAC.
    reusable_loc = LocInventory(common=3_720, vendor_specific=290, device_specific=480)

    control_monitor_resources = ResourceUsage(lut=1_350, ff=2_100, bram_36k=4)

    #: The reg control interface is 32 bits wide (paper section 3.3.1).
    reg_width_bits = 32

    def __init__(
        self,
        local_macs: Iterable[int] = (0x02_AA_BB_CC_DD_EE,),
        tenants: int = 1,
        host_queues: int = 1_024,
        default_instance: str = "100g-xilinx",
    ) -> None:
        instances = {
            "25g-xilinx": xilinx_xxv_25g(),
            "100g-xilinx": xilinx_cmac_100g(),
            "100g-intel": intel_etile_100g(),
            "200g-inhouse": inhouse_mac_200g(),
            "400g-inhouse": inhouse_mac_400g(),
        }
        super().__init__("network", instances, default_instance)
        self.packet_filter = PacketFilter(local_macs)
        self.flow_director = FlowDirector(total_queues=host_queues, tenants=tenants)
        self.add_ex_function(
            ExFunction(
                name="packet_filter",
                resources=ResourceUsage(lut=2_400, ff=3_100, bram_36k=8),
                role_properties=("local_macs", "multicast_groups"),
                latency_cycles=1,
            )
        )
        self.add_ex_function(
            ExFunction(
                name="flow_director",
                resources=ResourceUsage(lut=3_800, ff=4_600, bram_36k=24),
                role_properties=("tenant_count", "queues_per_tenant"),
                latency_cycles=2,
            )
        )

    def instance_for_rate(self, gbps: float, vendor: Vendor, device=None) -> str:
        """The cheapest instance meeting a line rate on a vendor's silicon.

        When a device is given, only instances whose cage requirement the
        board satisfies are considered (DSFP/QSFP112 boards need the
        high-rate MAC regardless of the requested rate).
        """
        candidates = []
        for name in self.instance_names:
            ip = self._instances[name]
            if ip.performance_gbps < gbps:
                continue
            if ip.vendor is not vendor and ip.vendor is not Vendor.INHOUSE:
                continue
            if device is not None and not _cage_compatible(device, ip):
                continue
            candidates.append((ip.performance_gbps, name))
        if not candidates:
            raise ConfigurationError(
                f"no {vendor.value} MAC instance sustains {gbps} Gbps"
                + (f" on {device.name}" if device is not None else "")
            )
        return min(candidates)[1]

    def simulate_ingress(self, packets: List[Packet], fifo_depth: int = 64):
        """Event-driven ingress run: MAC -> wrapper -> Ex-functions.

        Unlike :meth:`datapath_chain` (analytic), this honours finite
        inter-stage FIFOs, so bursty arrivals can overflow -- which is
        what the RBB's packet-loss and queue-usage monitoring reports.
        Returns the :class:`repro.sim.des_pipeline.DesRunResult` and
        folds loss/occupancy into the monitoring counters.
        """
        from repro.sim.des_pipeline import DesPacket, DesPipeline

        stages = [self.instance.datapath_stage("(ingress)"),
                  self.wrapped.wrapper_stage()]
        exfn_stage = self.ex_function_stage()
        if exfn_stage is not None:
            stages.append(exfn_stage)
        pipeline = DesPipeline(stages, fifo_depth=fifo_depth,
                               name=f"{self.name}.ingress")
        train = [DesPacket(size_bytes=p.size_bytes, created_ps=p.arrival_ps)
                 for p in packets]
        result = pipeline.run(train)
        self._bump("rx_packets", result.delivered + result.dropped)
        self._bump("rx_dropped", result.dropped)
        self.gauges["ingress_peak_occupancy"] = float(max(result.peak_occupancies))
        self.gauges["ingress_loss_fraction"] = result.loss_fraction
        return result

    def process_packets(self, packets: Iterable[Packet]) -> List[Tuple[Packet, int]]:
        """Run packets through filter + director; returns (packet, queue).

        Updates the RBB monitoring counters the way the hardware
        statistics block would.
        """
        admitted: List[Tuple[Packet, int]] = []
        filter_enabled = self.ex_functions["packet_filter"].enabled
        director_enabled = self.ex_functions["flow_director"].enabled
        for packet in packets:
            self._bump("rx_packets")
            self._bump("rx_bytes", packet.size_bytes)
            if filter_enabled and not self.packet_filter.admit(packet):
                self._bump("filtered_packets")
                continue
            queue = self.flow_director.direct(packet) if director_enabled else 0
            admitted.append((packet, queue))
            self._bump("tx_packets")
            self._bump("tx_bytes", packet.size_bytes)
        if admitted:
            self.gauges["queue_usage"] = len(
                {queue for _, queue in admitted}
            ) / self.flow_director.total_queues
        return admitted
