"""Weighted scheduling for the Host RBB (multi-tenancy extension).

The paper's multi-queue Ex-function isolates tenants; this extension
adds *weighted* service between them -- deficit round robin (DRR,
Shreedhar & Varghese) over per-tenant queue groups, so a tenant with
weight 3 drains three times the bytes of a weight-1 tenant under
contention while work-conservation is preserved when others are idle.
"""

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.core.rbb.host import DmaDescriptor
from repro.errors import ConfigurationError

#: Bytes added to a tenant's deficit per round, per unit weight.
DEFAULT_QUANTUM_BYTES = 4_096


class DeficitRoundRobinScheduler:
    """DRR over per-tenant descriptor queues."""

    def __init__(self, weights: Dict[int, int],
                 quantum_bytes: int = DEFAULT_QUANTUM_BYTES) -> None:
        if not weights:
            raise ConfigurationError("need at least one tenant weight")
        if any(weight < 1 for weight in weights.values()):
            raise ConfigurationError("weights must be positive")
        if quantum_bytes < 1:
            raise ConfigurationError("quantum must be positive")
        self.weights = dict(weights)
        self.quantum_bytes = quantum_bytes
        self._queues: Dict[int, Deque[DmaDescriptor]] = {
            tenant: deque() for tenant in weights
        }
        self._deficit: Dict[int, int] = {tenant: 0 for tenant in weights}
        self._active: Deque[int] = deque()
        self.bytes_served: Dict[int, int] = {tenant: 0 for tenant in weights}

    def submit(self, descriptor: DmaDescriptor) -> None:
        tenant = descriptor.tenant_id
        if tenant not in self._queues:
            raise ConfigurationError(f"tenant {tenant} has no configured weight")
        queue = self._queues[tenant]
        if not queue and tenant not in self._active:
            self._active.append(tenant)
        queue.append(descriptor)

    @property
    def backlog(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    def schedule_round(self) -> List[DmaDescriptor]:
        """One DRR round: each active tenant spends its quantum."""
        served: List[DmaDescriptor] = []
        for _ in range(len(self._active)):
            tenant = self._active.popleft()
            queue = self._queues[tenant]
            self._deficit[tenant] += self.quantum_bytes * self.weights[tenant]
            while queue and queue[0].size_bytes <= self._deficit[tenant]:
                descriptor = queue.popleft()
                self._deficit[tenant] -= descriptor.size_bytes
                self.bytes_served[tenant] += descriptor.size_bytes
                served.append(descriptor)
            if queue:
                self._active.append(tenant)
            else:
                # Work-conservation hygiene: an idle tenant keeps no credit.
                self._deficit[tenant] = 0
        return served

    def drain(self, max_rounds: int = 1_000_000) -> List[DmaDescriptor]:
        """Run rounds until every queue empties."""
        served: List[DmaDescriptor] = []
        rounds = 0
        while self.backlog:
            rounds += 1
            if rounds > max_rounds:
                raise ConfigurationError("DRR failed to drain; quantum too small?")
            batch = self.schedule_round()
            if not batch and self.backlog:
                # A descriptor larger than one quantum: keep accumulating.
                continue
            served.extend(batch)
        return served

    def service_shares(self) -> Dict[int, float]:
        """Fraction of served bytes each tenant received."""
        total = sum(self.bytes_served.values())
        if total == 0:
            return {tenant: 0.0 for tenant in self.weights}
        return {tenant: served / total for tenant, served in self.bytes_served.items()}
