"""Flow-level reliable transport for the Network RBB.

The paper's Network RBB covers "flow-level processing (e.g., RDMA)"
alongside packet-level MACs.  This module implements the transport
behaviour such an engine provides, in the style of the SRNIC
architecture the paper cites: connection (queue-pair) state machines,
go-back-N retransmission with sequence numbers and ACK/NAK, and a
bounded outstanding-data window.

The transport runs over an abstract lossy link so tests can inject
loss, reordering-free corruption, and window pressure deterministically.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Maximum transfer unit of one transport segment (payload bytes).
SEGMENT_MTU = 4_096


class SegmentKind(enum.Enum):
    DATA = "data"
    ACK = "ack"
    NAK = "nak"


@dataclass(frozen=True)
class Segment:
    """One transport segment on the wire."""

    kind: SegmentKind
    connection_id: int
    sequence: int
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        if self.payload_bytes < 0 or self.payload_bytes > SEGMENT_MTU:
            raise ConfigurationError(
                f"segment payload {self.payload_bytes} outside [0, {SEGMENT_MTU}]"
            )


class LossyLink:
    """A deterministic lossy link: drops segments at scripted positions."""

    def __init__(self, drop_positions: Optional[List[int]] = None) -> None:
        self._drop_positions = set(drop_positions or [])
        self._position = 0
        self.delivered: List[Segment] = []
        self.dropped: List[Segment] = []

    def transmit(self, segment: Segment) -> Optional[Segment]:
        """Returns the segment if delivered, None if dropped."""
        position = self._position
        self._position += 1
        if position in self._drop_positions:
            self.dropped.append(segment)
            return None
        self.delivered.append(segment)
        return segment


class ConnectionState(enum.Enum):
    OPEN = "open"
    CLOSED = "closed"


@dataclass
class _SenderConnection:
    """Go-back-N sender state for one connection."""

    connection_id: int
    window_segments: int
    next_sequence: int = 0          # next new sequence to assign
    base_sequence: int = 0          # oldest unacknowledged sequence
    state: ConnectionState = ConnectionState.OPEN
    unacked: Dict[int, Segment] = field(default_factory=dict)
    retransmissions: int = 0

    @property
    def in_flight(self) -> int:
        return self.next_sequence - self.base_sequence

    @property
    def window_open(self) -> bool:
        return self.in_flight < self.window_segments


@dataclass
class _ReceiverConnection:
    """Cumulative-ACK receiver state for one connection."""

    connection_id: int
    expected_sequence: int = 0
    received_bytes: int = 0
    duplicates: int = 0


class ReliableTransport:
    """A go-back-N transport engine over a lossy link.

    One engine instance owns both endpoints of the link (the test
    harness drives the wire), matching how a NIC-local loopback or a
    two-card bench exercises the data path.
    """

    def __init__(self, link: LossyLink, window_segments: int = 8) -> None:
        if window_segments < 1:
            raise ConfigurationError("window must hold at least one segment")
        self.link = link
        self.window_segments = window_segments
        self._senders: Dict[int, _SenderConnection] = {}
        self._receivers: Dict[int, _ReceiverConnection] = {}
        self.acks_sent = 0
        self.naks_sent = 0

    # --- connection management ----------------------------------------------

    def open_connection(self, connection_id: int) -> None:
        if connection_id in self._senders:
            raise ConfigurationError(f"connection {connection_id} already open")
        self._senders[connection_id] = _SenderConnection(
            connection_id, self.window_segments
        )
        self._receivers[connection_id] = _ReceiverConnection(connection_id)

    def close_connection(self, connection_id: int) -> None:
        sender = self._sender(connection_id)
        if sender.in_flight:
            raise ConfigurationError(
                f"connection {connection_id} still has {sender.in_flight} "
                "segments in flight"
            )
        sender.state = ConnectionState.CLOSED

    def _sender(self, connection_id: int) -> _SenderConnection:
        try:
            return self._senders[connection_id]
        except KeyError:
            raise ConfigurationError(f"connection {connection_id} not open") from None

    def _receiver(self, connection_id: int) -> _ReceiverConnection:
        return self._receivers[connection_id]

    # --- data path -----------------------------------------------------------

    def send(self, connection_id: int, payload_bytes: int) -> List[Segment]:
        """Queue a message; returns the DATA segments put on the wire.

        The message is segmented at the MTU; segments beyond the window
        wait (the caller re-pumps via :meth:`pump` after ACKs arrive).
        """
        sender = self._sender(connection_id)
        if sender.state is not ConnectionState.OPEN:
            raise ConfigurationError(f"connection {connection_id} is closed")
        segments: List[Segment] = []
        remaining = payload_bytes
        while remaining > 0 and sender.window_open:
            chunk = min(remaining, SEGMENT_MTU)
            segment = Segment(SegmentKind.DATA, connection_id,
                              sender.next_sequence, chunk)
            sender.unacked[sender.next_sequence] = segment
            sender.next_sequence += 1
            remaining -= chunk
            delivered = self.link.transmit(segment)
            segments.append(segment)
            if delivered is not None:
                self._on_data(delivered)
        return segments

    def _on_data(self, segment: Segment) -> None:
        """Receiver side: in-order accept, cumulative ACK, NAK on gap."""
        receiver = self._receiver(segment.connection_id)
        if segment.sequence == receiver.expected_sequence:
            receiver.expected_sequence += 1
            receiver.received_bytes += segment.payload_bytes
            self.acks_sent += 1
            self._on_ack(segment.connection_id, receiver.expected_sequence)
        elif segment.sequence < receiver.expected_sequence:
            receiver.duplicates += 1
            self.acks_sent += 1
            self._on_ack(segment.connection_id, receiver.expected_sequence)
        else:
            self.naks_sent += 1
            self._on_nak(segment.connection_id, receiver.expected_sequence)

    def _on_ack(self, connection_id: int, cumulative: int) -> None:
        """Sender side: slide the window up to ``cumulative``."""
        sender = self._sender(connection_id)
        while sender.base_sequence < cumulative:
            sender.unacked.pop(sender.base_sequence, None)
            sender.base_sequence += 1

    def _on_nak(self, connection_id: int, expected: int) -> None:
        """Sender side: go-back-N from the receiver's expected sequence."""
        sender = self._sender(connection_id)
        for sequence in range(expected, sender.next_sequence):
            segment = sender.unacked.get(sequence)
            if segment is None:
                continue
            sender.retransmissions += 1
            delivered = self.link.transmit(segment)
            if delivered is not None:
                self._on_data(delivered)

    def pump(self, connection_id: int) -> None:
        """Retransmit everything outstanding (the timeout path)."""
        sender = self._sender(connection_id)
        self._on_nak(connection_id, sender.base_sequence)

    # --- introspection ---------------------------------------------------------

    def stats(self, connection_id: int) -> Dict[str, int]:
        sender = self._sender(connection_id)
        receiver = self._receiver(connection_id)
        return {
            "in_flight": sender.in_flight,
            "retransmissions": sender.retransmissions,
            "received_bytes": receiver.received_bytes,
            "duplicates": receiver.duplicates,
            "acks": self.acks_sent,
            "naks": self.naks_sent,
        }

    def transfer_complete(self, connection_id: int, payload_bytes: int) -> bool:
        """True when every byte of a ``payload_bytes`` message arrived."""
        sender = self._sender(connection_id)
        receiver = self._receiver(connection_id)
        return sender.in_flight == 0 and receiver.received_bytes >= payload_bytes
