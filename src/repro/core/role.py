"""Roles and their demands.

A :class:`RoleDemands` is what hierarchical tailoring consumes: which
services the role needs, at what performance, with which features.  A
:class:`Role` couples the demands with the role's own footprint and the
acceleration architecture it uses (Table 2's BITW / Look-aside split).
"""

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage


class Architecture(enum.Enum):
    """Acceleration architectures seen in the application mix."""

    BUMP_IN_THE_WIRE = "bitw"
    LOOK_ASIDE = "look-aside"
    FLEXIBLE = "flexible"   # Board Test supports diverse architectures


@dataclass(frozen=True)
class RoleDemands:
    """The resource and functional requirements of one role.

    Zero-valued performance fields mean "service not required" -- the
    corresponding RBB is removed at module-level tailoring.
    """

    network_gbps: float = 0.0
    memory_bandwidth_gibps: float = 0.0       # GB/s
    memory_capacity_gib: int = 0
    host_gbps: float = 0.0
    bulk_dma: bool = True
    tenants: int = 1
    needs_multicast: bool = False
    needs_flow_steering: bool = False
    needs_hot_cache: bool = False
    user_clock_mhz: float = 250.0

    @property
    def needs_network(self) -> bool:
        return self.network_gbps > 0

    @property
    def needs_memory(self) -> bool:
        return self.memory_bandwidth_gibps > 0 or self.memory_capacity_gib > 0

    @property
    def needs_host(self) -> bool:
        return self.host_gbps > 0


@dataclass(frozen=True)
class Role:
    """A user-owned application region."""

    name: str
    architecture: Architecture
    demands: RoleDemands
    resources: ResourceUsage = ResourceUsage()
    loc: LocInventory = LocInventory()
    description: str = ""

    def __str__(self) -> str:
        return f"{self.name} ({self.architecture.value})"
