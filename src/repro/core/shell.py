"""The unified shell abstraction (paper section 3.3.1, Figure 6).

A :class:`UnifiedShell` bundles every RBB the target device can carry
(network, memory, host) plus the management blocks (I2C, flash,
sensors, and the soft core hosting the unified control kernel).  It is
the one-size-fits-all artifact that hierarchical tailoring then prunes
per role.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adapters.wrapper import InterfaceWrapper, WrappedIp
from repro.core.rbb.base import Rbb
from repro.core.rbb.host import HostRbb
from repro.core.rbb.memory import MemoryRbb
from repro.core.rbb.network import NetworkRbb
from repro.errors import ConfigurationError
from repro.hw.ip.base import VendorIp
from repro.hw.ip.misc import i2c_controller, qspi_flash, sensor_block, soft_core
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice, PeripheralKind
from repro.platform.vendor import Vendor


#: The static shell region every variant keeps: AXI interconnect,
#: clock/reset trees, the partial-reconfiguration controller (ICAP/PR-IP),
#: decoupling logic, and debug infrastructure.  Tailoring cannot remove
#: it, which is why tailored shells save a bounded fraction of resources.
SHELL_INFRASTRUCTURE = ResourceUsage(lut=39_000, ff=55_000, bram_36k=80, uram=0, dsp=0)

#: Development inventory of that static region -- interconnect and PR
#: plumbing is platform-independent by construction, with modest
#: vendor-specific (ICAP vs PR-IP) and per-device (floorplan) slices.
SHELL_INFRASTRUCTURE_LOC = LocInventory(
    common=5_200, vendor_specific=700, device_specific=900, generated=3_600
)


class UnifiedShell:
    """All services the platform offers on one device."""

    def __init__(self, device: FpgaDevice, tenants: int = 1) -> None:
        self.device = device
        self.tenants = tenants
        self.rbbs: Dict[str, Rbb] = {}
        self.management: List[VendorIp] = []
        self._wrapper = InterfaceWrapper()
        self._build()

    # --- construction ------------------------------------------------------

    def _build(self) -> None:
        device = self.device
        vendor = device.chip_vendor
        if device.network_gbps > 0:
            network = NetworkRbb(tenants=self.tenants)
            network.select_instance(self._pick_network_instance(vendor))
            self.rbbs["network"] = network
        if device.memory_kinds:
            memory = MemoryRbb()
            memory.select_instance(self._pick_memory_instance(vendor))
            self.rbbs["memory"] = memory
        host = HostRbb(
            generation=device.pcie.pcie_generation,
            lanes=device.pcie.pcie_lanes,
            tenants=self.tenants,
        )
        host.select_instance(self._pick_host_instance(vendor))
        self.rbbs["host"] = host
        self.management = [
            i2c_controller(device.board_vendor),
            qspi_flash(device.board_vendor),
            sensor_block(device.board_vendor),
            soft_core(device.board_vendor),
        ]

    def _pick_network_instance(self, vendor: Vendor) -> str:
        device = self.device
        if device.has_peripheral(PeripheralKind.QSFP112):
            return "400g-inhouse"
        if device.has_peripheral(PeripheralKind.DSFP):
            return "200g-inhouse"   # DSFP cages carry 2 x 100G
        if vendor is Vendor.INTEL:
            return "100g-intel"
        return "100g-xilinx"

    def _pick_memory_instance(self, vendor: Vendor) -> str:
        if self.device.has_peripheral(PeripheralKind.HBM):
            return "hbm-xilinx"
        if self.device.has_peripheral(PeripheralKind.DDR4):
            return "ddr4-intel" if vendor is Vendor.INTEL else "ddr4-xilinx"
        return "ddr3-xilinx"

    def _pick_host_instance(self, vendor: Vendor) -> str:
        if vendor is Vendor.INTEL:
            return "sgdma-intel"
        if self.device.budget.uram == 0:
            # QDMA is an UltraScale+ IP (URAM-backed descriptor storage);
            # older Xilinx families take the XDMA block engine.
            return "bdma-xilinx"
        return "sgdma-xilinx"

    # --- accessors ---------------------------------------------------------

    @property
    def network(self) -> Optional[NetworkRbb]:
        rbb = self.rbbs.get("network")
        return rbb if isinstance(rbb, NetworkRbb) else None

    @property
    def memory(self) -> Optional[MemoryRbb]:
        rbb = self.rbbs.get("memory")
        return rbb if isinstance(rbb, MemoryRbb) else None

    @property
    def host(self) -> HostRbb:
        rbb = self.rbbs["host"]
        assert isinstance(rbb, HostRbb)
        return rbb

    def rbb(self, name: str) -> Rbb:
        try:
            return self.rbbs[name]
        except KeyError:
            raise ConfigurationError(f"shell has no RBB {name!r}") from None

    def modules(self) -> List[VendorIp]:
        """Every vendor IP in the shell (RBB instances + management)."""
        return [rbb.instance for rbb in self.rbbs.values()] + list(self.management)

    # --- accounting ---------------------------------------------------------

    def resources(self) -> ResourceUsage:
        """Fabric cost of the whole shell (wrappers included)."""
        total = ResourceUsage.total(rbb.resources() for rbb in self.rbbs.values())
        management = ResourceUsage.total(ip.resources for ip in self.management)
        management_wrappers = ResourceUsage.total(
            self._wrapper.wrap(ip).resources for ip in self.management if ip.interfaces
        )
        return total + management + management_wrappers + SHELL_INFRASTRUCTURE

    def wrapper_resources(self) -> ResourceUsage:
        """Just the interface-wrapper overhead (Figure 16 numerator)."""
        return ResourceUsage.total(rbb.wrapped.resources for rbb in self.rbbs.values())

    def control_kernel_resources(self) -> ResourceUsage:
        """The soft core carrying the unified control kernel."""
        for ip in self.management:
            if ip.name.startswith("softcore"):
                return ip.resources
        return ResourceUsage()

    def loc(self) -> LocInventory:
        """Development-workload inventory of the shell."""
        total = LocInventory.total_of(rbb.loc() for rbb in self.rbbs.values())
        total = total + LocInventory.total_of(ip.loc for ip in self.management)
        return total + SHELL_INFRASTRUCTURE_LOC

    def native_config_item_count(self) -> int:
        """Config items of all RBB instances before property tailoring."""
        return sum(rbb.native_config_item_count() for rbb in self.rbbs.values())

    def __repr__(self) -> str:
        rbb_list = ", ".join(sorted(self.rbbs))
        return f"UnifiedShell({self.device.name!r}, rbbs=[{rbb_list}])"


def build_unified_shell(device: FpgaDevice, tenants: int = 1) -> UnifiedShell:
    """Factory mirroring the paper's 'create a unified shell from RBBs'."""
    return UnifiedShell(device, tenants=tenants)
