"""Hierarchical shell tailoring (paper section 3.3.2, Figure 7).

Two passes:

* **Module-level** -- remove non-essential RBBs given the role's
  demands, then select instances meeting its data-transfer performance
  (e.g. BDMA for bulk, SGDMA for discrete transfers) and drop
  Ex-functions the role does not use;
* **Property-level** -- split the surviving instances' properties into a
  shell-oriented part (absorbed by the platform) and a role-oriented
  part (exposed to the user), so the role sees only "the necessary
  properties required by each role (e.g., occupied channels, desired
  queues, etc.)".
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adapters.wrapper import InterfaceWrapper
from repro.core.rbb.base import Rbb
from repro.core.role import Role, RoleDemands
from repro.core.shell import UnifiedShell
from repro.errors import TailoringError
from repro.hw.ip.base import VendorIp
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice


@dataclass
class TailoredShell:
    """A role-specific shell instance produced by hierarchical tailoring.

    The derived totals (:meth:`resources`, :meth:`loc`,
    :meth:`native_config_item_count`) are memoised on first computation:
    a shell is effectively frozen once tailoring returns it, while
    reports and fitting checks read the same totals many times over --
    each a full O(modules) re-sum without the cache.
    """

    device: FpgaDevice
    role: Role
    rbbs: Dict[str, Rbb]
    management: List[VendorIp]
    role_oriented_properties: List[str]
    shell_oriented_properties: List[str]

    _wrapper: InterfaceWrapper = field(default_factory=InterfaceWrapper, repr=False)
    _resources_memo: Optional[ResourceUsage] = field(
        default=None, init=False, repr=False, compare=False)
    _loc_memo: Optional[LocInventory] = field(
        default=None, init=False, repr=False, compare=False)
    _native_config_memo: Optional[int] = field(
        default=None, init=False, repr=False, compare=False)

    def modules(self) -> List[VendorIp]:
        return [rbb.instance for rbb in self.rbbs.values()] + list(self.management)

    def resources(self) -> ResourceUsage:
        if self._resources_memo is None:
            from repro.core.shell import SHELL_INFRASTRUCTURE

            total = ResourceUsage.total(rbb.resources() for rbb in self.rbbs.values())
            management = ResourceUsage.total(ip.resources for ip in self.management)
            self._resources_memo = total + management + SHELL_INFRASTRUCTURE
        return self._resources_memo

    def loc(self) -> LocInventory:
        if self._loc_memo is None:
            from repro.core.shell import SHELL_INFRASTRUCTURE_LOC

            total = LocInventory.total_of(rbb.loc() for rbb in self.rbbs.values())
            total = total + LocInventory.total_of(ip.loc for ip in self.management)
            self._loc_memo = total + SHELL_INFRASTRUCTURE_LOC
        return self._loc_memo

    def native_config_item_count(self) -> int:
        """What the role would configure without property tailoring."""
        if self._native_config_memo is None:
            self._native_config_memo = sum(
                rbb.native_config_item_count() for rbb in self.rbbs.values()
            )
        return self._native_config_memo

    def role_config_item_count(self) -> int:
        """What the role actually configures after property tailoring."""
        return len(self.role_oriented_properties)

    def config_simplification_factor(self) -> float:
        exposed = self.role_config_item_count()
        if exposed == 0:
            raise TailoringError("tailored shell exposes no properties at all")
        return self.native_config_item_count() / exposed

    def __repr__(self) -> str:
        rbb_list = ", ".join(sorted(self.rbbs))
        return (
            f"TailoredShell(role={self.role.name!r}, device={self.device.name!r}, "
            f"rbbs=[{rbb_list}])"
        )


def tailor_signature(device: FpgaDevice, demands: RoleDemands) -> Dict[str, object]:
    """The pure inputs of hierarchical tailoring, as canonical JSON data.

    Tailoring is a deterministic function of the target hardware and the
    role's demands -- it never reads the device *name*.  Two devices
    with identical chips, boards, and peripheral populations therefore
    produce identical tailored shells for the same role, and the build
    farm uses this signature to tailor such shells once and fan the
    result out across device variants.

    The returned mapping contains only canonically serialisable values
    (see :func:`repro.adapters.toolchain.canonical_json`), so it can be
    hashed into a stable content key.
    """
    return {
        "chip": device.chip,
        "family": device.family.name,
        "chip_vendor": device.chip_vendor.value,
        "board_vendor": device.board_vendor.value,
        "budget": {
            "lut": device.budget.lut,
            "ff": device.budget.ff,
            "bram_36k": device.budget.bram_36k,
            "uram": device.budget.uram,
            "dsp": device.budget.dsp,
        },
        "peripherals": sorted(
            (
                {
                    "kind": peripheral.kind.value,
                    "count": peripheral.count,
                    "capacity_gib": peripheral.capacity_gib,
                    "pcie_generation": (
                        int(peripheral.pcie_generation)
                        if peripheral.pcie_generation is not None else 0
                    ),
                    "pcie_lanes": peripheral.pcie_lanes,
                }
                for peripheral in device.peripherals
            ),
            key=lambda entry: (entry["kind"], entry["count"],
                               entry["capacity_gib"], entry["pcie_generation"],
                               entry["pcie_lanes"]),
        ),
        "demands": {
            "network_gbps": demands.network_gbps,
            "memory_bandwidth_gibps": demands.memory_bandwidth_gibps,
            "memory_capacity_gib": demands.memory_capacity_gib,
            "host_gbps": demands.host_gbps,
            "bulk_dma": demands.bulk_dma,
            "tenants": demands.tenants,
            "needs_multicast": demands.needs_multicast,
            "needs_flow_steering": demands.needs_flow_steering,
            "needs_hot_cache": demands.needs_hot_cache,
            "user_clock_mhz": demands.user_clock_mhz,
        },
    }


class HierarchicalTailor:
    """Runs module-level then property-level tailoring."""

    def __init__(self, unified: UnifiedShell) -> None:
        self.unified = unified

    def tailor(self, role: Role) -> TailoredShell:
        """Produce the role-specific shell for ``role``."""
        demands = role.demands
        retained = self._module_level(demands)
        role_props, shell_props = self._property_level(retained)
        return TailoredShell(
            device=self.unified.device,
            role=role,
            rbbs=retained,
            management=list(self.unified.management),
            role_oriented_properties=role_props,
            shell_oriented_properties=shell_props,
        )

    # --- module level --------------------------------------------------------

    def _module_level(self, demands: RoleDemands) -> Dict[str, Rbb]:
        """Keep required RBBs, select instances, drop unused Ex-functions.

        RBBs are *re-built* (fresh objects) so tailoring one role never
        mutates the unified shell or another role's shell.
        """
        from repro.core.rbb.host import HostRbb
        from repro.core.rbb.memory import MemoryRbb
        from repro.core.rbb.network import NetworkRbb

        device = self.unified.device
        vendor = device.chip_vendor
        retained: Dict[str, Rbb] = {}

        if demands.needs_network:
            if self.unified.network is None:
                raise TailoringError(
                    f"role needs {demands.network_gbps} Gbps networking but device "
                    f"{device.name!r} has no network cage"
                )
            if demands.network_gbps > device.network_gbps:
                raise TailoringError(
                    f"role needs {demands.network_gbps} Gbps but device "
                    f"{device.name!r} tops out at {device.network_gbps} Gbps"
                )
            network = NetworkRbb(tenants=demands.tenants)
            network.select_instance(
                network.instance_for_rate(demands.network_gbps, vendor, device)
            )
            if not demands.needs_multicast:
                network.disable_ex_function("packet_filter")
            if not demands.needs_flow_steering and demands.tenants == 1:
                network.disable_ex_function("flow_director")
            retained["network"] = network

        if demands.needs_memory:
            if self.unified.memory is None:
                raise TailoringError(
                    f"role needs on-card memory but device {device.name!r} has none"
                )
            memory = MemoryRbb()
            try:
                memory.select_instance(
                    memory.instance_for_bandwidth(
                        demands.memory_bandwidth_gibps, vendor, device
                    )
                )
            except Exception as error:
                raise TailoringError(str(error)) from error
            if not demands.needs_hot_cache:
                memory.disable_ex_function("hot_cache")
            retained["memory"] = memory

        if demands.needs_host:
            host = HostRbb(
                generation=device.pcie.pcie_generation,
                lanes=device.pcie.pcie_lanes,
                tenants=demands.tenants,
            )
            host.select_instance(host.instance_for_transfer(demands.bulk_dma, vendor))
            if demands.tenants == 1 and demands.bulk_dma:
                host.disable_ex_function("multi_queue_isolation")
            retained["host"] = host

        if not retained:
            raise TailoringError("role demands no services; nothing to tailor")
        return retained

    # --- property level ---------------------------------------------------------

    def _property_level(self, retained: Dict[str, Rbb]):
        """Split properties into role-oriented and shell-oriented parts."""
        role_props: List[str] = []
        shell_props: List[str] = []
        for rbb in retained.values():
            exposed = rbb.role_properties()
            role_props.extend(exposed)
            native = rbb.native_config_item_count()
            hidden = max(native - len(exposed), 0)
            shell_props.extend(
                f"{rbb.name}.shell_param_{index}" for index in range(hidden)
            )
        return role_props, shell_props
