"""Exception hierarchy for the Harmonia reproduction.

All library-specific failures derive from :class:`HarmoniaError`, so
callers can catch one base class at an API boundary.
"""


class HarmoniaError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(HarmoniaError):
    """An invalid or missing configuration value."""


class DependencyError(HarmoniaError):
    """A vendor-adapter dependency inspection failed (tool/IP mismatch)."""


class IncompatiblePlatformError(HarmoniaError):
    """A shell, role, or framework cannot be deployed on the target device."""


class InterfaceMismatchError(HarmoniaError):
    """Two hardware interfaces cannot be connected directly."""


class ResourceExhaustedError(HarmoniaError):
    """A design does not fit in the target device's resource budget."""


class CommandError(HarmoniaError):
    """A malformed, unsupported, or failed command packet."""


class ChecksumError(CommandError):
    """A command packet failed checksum validation."""


class RegisterAccessError(HarmoniaError):
    """A read/write to an unmapped or read-only register address."""


class TailoringError(HarmoniaError):
    """Shell tailoring could not satisfy the role's demands."""


class DeploymentError(HarmoniaError):
    """A project failed to build, validate, or deploy."""
