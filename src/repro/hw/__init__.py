"""Behavioural hardware models: interface protocols, vendor IPs, registers.

This package is the "silicon" of the reproduction.  It contains

* :mod:`repro.hw.protocols` -- full signal-level definitions of the
  vendor interface protocols (AXI4 family vs Avalon family), which is
  what makes the paper's interface-disparity measurements (Figure 3b)
  structural rather than asserted;
* :mod:`repro.hw.ip` -- behavioural models of the vendor-specific IPs the
  shells are assembled from (MAC, PCIe DMA, DDR, HBM, ...), each carrying
  its real interface protocol, a realistic configuration-parameter
  inventory, a resource footprint, and a development-workload (LoC)
  inventory;
* :mod:`repro.hw.registers` -- register files and the per-platform
  initialization sequences that motivate the command-based interface.
"""
