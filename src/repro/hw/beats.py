"""Beat-level data framing and protocol conversion.

The interface wrapper's data plane does three concrete jobs the rest of
the model treats abstractly:

* serialise a packet's bytes into bus beats of the IP's width, with the
  protocol's end-of-packet byte qualifier (AXI4-Stream's ``TKEEP`` byte
  mask vs Avalon-ST's binary ``empty`` count);
* translate one protocol's framing into the other's -- the exact job of
  "encapsulating different interfaces into a uniform format"; and
* convert beat widths (e.g. 512-bit MAC beats into 128-bit role beats)
  without losing or inventing bytes.

Everything here is byte-exact and round-trip tested; it is the
functional counterpart of the timing model in :mod:`repro.sim.pipeline`.
"""

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import InterfaceMismatchError


@dataclass(frozen=True)
class AxiStreamBeat:
    """One AXI4-Stream beat: data padded to the bus width, TKEEP, TLAST."""

    data: bytes
    tkeep: int
    tlast: bool

    @property
    def valid_bytes(self) -> int:
        return bin(self.tkeep).count("1")

    def payload(self) -> bytes:
        """The bytes TKEEP marks valid (contiguous from lane 0)."""
        return self.data[: self.valid_bytes]


@dataclass(frozen=True)
class AvalonStBeat:
    """One Avalon-ST beat: data, SOP/EOP flags, and the empty count."""

    data: bytes
    startofpacket: bool
    endofpacket: bool
    empty: int

    @property
    def valid_bytes(self) -> int:
        return len(self.data) - (self.empty if self.endofpacket else 0)

    def payload(self) -> bytes:
        return self.data[: self.valid_bytes]


def _chunk(payload: bytes, beat_bytes: int) -> List[bytes]:
    if beat_bytes < 1:
        raise InterfaceMismatchError("beat width must be at least one byte")
    if not payload:
        raise InterfaceMismatchError("cannot frame an empty packet")
    return [payload[offset:offset + beat_bytes]
            for offset in range(0, len(payload), beat_bytes)]


def to_axi_stream(payload: bytes, data_width_bits: int) -> List[AxiStreamBeat]:
    """Frame a packet as AXI4-Stream beats."""
    beat_bytes = data_width_bits // 8
    chunks = _chunk(payload, beat_bytes)
    beats: List[AxiStreamBeat] = []
    for index, chunk in enumerate(chunks):
        last = index == len(chunks) - 1
        tkeep = (1 << len(chunk)) - 1
        padded = chunk + b"\x00" * (beat_bytes - len(chunk))
        beats.append(AxiStreamBeat(padded, tkeep, last))
    return beats


def from_axi_stream(beats: List[AxiStreamBeat]) -> bytes:
    """Reassemble a packet from AXI4-Stream beats, validating framing."""
    if not beats:
        raise InterfaceMismatchError("no beats to reassemble")
    payload = bytearray()
    for index, beat in enumerate(beats):
        last = index == len(beats) - 1
        if beat.tlast != last:
            raise InterfaceMismatchError(
                f"TLAST on beat {index} contradicts the beat count"
            )
        valid = beat.valid_bytes
        if not last and valid * 8 != len(beat.data) * 8:
            raise InterfaceMismatchError("only the final beat may be partial")
        # TKEEP must be contiguous from lane 0 (packed packets).
        if beat.tkeep != (1 << valid) - 1:
            raise InterfaceMismatchError(f"non-contiguous TKEEP {beat.tkeep:#x}")
        payload.extend(beat.data[:valid])
    return bytes(payload)


def to_avalon_st(payload: bytes, data_width_bits: int) -> List[AvalonStBeat]:
    """Frame a packet as Avalon-ST beats."""
    beat_bytes = data_width_bits // 8
    chunks = _chunk(payload, beat_bytes)
    beats: List[AvalonStBeat] = []
    for index, chunk in enumerate(chunks):
        last = index == len(chunks) - 1
        padded = chunk + b"\x00" * (beat_bytes - len(chunk))
        beats.append(AvalonStBeat(
            data=padded,
            startofpacket=index == 0,
            endofpacket=last,
            empty=(beat_bytes - len(chunk)) if last else 0,
        ))
    return beats


def from_avalon_st(beats: List[AvalonStBeat]) -> bytes:
    """Reassemble a packet from Avalon-ST beats, validating framing."""
    if not beats:
        raise InterfaceMismatchError("no beats to reassemble")
    if not beats[0].startofpacket:
        raise InterfaceMismatchError("first beat must carry startofpacket")
    payload = bytearray()
    for index, beat in enumerate(beats):
        last = index == len(beats) - 1
        if beat.endofpacket != last:
            raise InterfaceMismatchError(
                f"endofpacket on beat {index} contradicts the beat count"
            )
        if index > 0 and beat.startofpacket:
            raise InterfaceMismatchError("startofpacket inside a packet")
        if not last and beat.empty:
            raise InterfaceMismatchError("only the final beat may be empty-padded")
        payload.extend(beat.payload())
    return bytes(payload)


# --- the wrapper's translations -------------------------------------------------


def axi_to_avalon(beats: List[AxiStreamBeat]) -> List[AvalonStBeat]:
    """TKEEP byte-mask framing -> SOP/EOP + empty-count framing."""
    payload = from_axi_stream(beats)
    width_bits = len(beats[0].data) * 8
    return to_avalon_st(payload, width_bits)


def avalon_to_axi(beats: List[AvalonStBeat]) -> List[AxiStreamBeat]:
    """SOP/EOP + empty-count framing -> TKEEP byte-mask framing."""
    payload = from_avalon_st(beats)
    width_bits = len(beats[0].data) * 8
    return to_axi_stream(payload, width_bits)


def convert_width(
    beats: List[AxiStreamBeat], new_width_bits: int
) -> List[AxiStreamBeat]:
    """Re-frame a stream at a different bus width (the CDC's converter).

    Byte-exact: the reassembled payload is identical on both sides, which
    is what "fully pipelined sequential translation logic" must preserve.
    """
    return to_axi_stream(from_axi_stream(beats), new_width_bits)


def beats_needed(payload_bytes: int, data_width_bits: int) -> int:
    """How many beats a payload occupies at a width (ceil division)."""
    beat_bytes = data_width_bits // 8
    return -(-payload_bytes // beat_bytes)
