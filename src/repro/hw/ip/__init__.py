"""Behavioural vendor-specific IP models.

Each factory in this package builds a :class:`repro.hw.ip.base.VendorIp`
carrying the vendor-true interface protocol, a realistic configuration
inventory, a resource/LoC footprint, a register file, and a
platform-specific initialization program.  These are the "specific
instances" the paper's RBBs are built around.
"""

from repro.hw.ip.base import DmaEngineKind, IpKind, VendorIp
from repro.hw.ip.mac import (
    inhouse_mac_400g,
    intel_etile_100g,
    xilinx_cmac_100g,
    xilinx_xxv_25g,
)
from repro.hw.ip.pcie import (
    inhouse_bdma,
    intel_ptile_mcdma,
    xilinx_qdma,
    xilinx_xdma,
)
from repro.hw.ip.ddr import (
    DdrTiming,
    intel_emif_ddr4,
    xilinx_ddr3_mig,
    xilinx_ddr4_mig,
)
from repro.hw.ip.hbm import xilinx_hbm_stack
from repro.hw.ip.misc import i2c_controller, qspi_flash, sensor_block, soft_core

__all__ = [
    "DdrTiming",
    "DmaEngineKind",
    "IpKind",
    "VendorIp",
    "i2c_controller",
    "inhouse_bdma",
    "inhouse_mac_400g",
    "intel_emif_ddr4",
    "intel_etile_100g",
    "intel_ptile_mcdma",
    "qspi_flash",
    "sensor_block",
    "soft_core",
    "xilinx_cmac_100g",
    "xilinx_ddr3_mig",
    "xilinx_ddr4_mig",
    "xilinx_hbm_stack",
    "xilinx_qdma",
    "xilinx_xdma",
    "xilinx_xxv_25g",
]
