"""The vendor IP abstraction.

A :class:`VendorIp` bundles everything the rest of the framework needs
to know about a third-party hardware block:

* its *interfaces* (protocol-true signal bundles -- what the interface
  wrapper converts),
* its *configuration inventory* (every parameter the vendor GUI/tcl
  exposes -- what hierarchical tailoring prunes),
* its *register file* and *initialization program* (what the
  command-based interface abstracts),
* its *data-path timing* (a pipeline stage -- what performance benches
  measure),
* its *resource and LoC footprints* (what tailoring/workload results
  aggregate), and
* its *deployment dependencies* (what the vendor adapter inspects).
"""

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.hw.protocols.base import InterfaceSpec
from repro.hw.registers import InitSequence, RegisterFile
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import PeripheralKind
from repro.platform.vendor import Vendor
from repro.sim.clock import ClockDomain
from repro.sim.pipeline import PipelineStage


class IpKind(enum.Enum):
    """Functional classes of IP; an RBB groups IPs of one kind."""

    MAC = "mac"
    PCIE_DMA = "pcie-dma"
    DDR_CONTROLLER = "ddr"
    HBM_CONTROLLER = "hbm"
    I2C = "i2c"
    FLASH = "flash"
    SENSOR = "sensor"
    SOFT_CORE = "soft-core"


class DmaEngineKind(enum.Enum):
    """DMA engine styles (paper section 3.3.2's instance selection)."""

    BDMA = "bdma"      # block DMA -- bulk contiguous transfers
    SGDMA = "sgdma"    # scatter-gather -- discrete/described transfers


@dataclass(frozen=True)
class VendorIp:
    """An immutable description of one vendor IP instance."""

    name: str
    vendor: Vendor
    kind: IpKind
    clock: ClockDomain
    data_width_bits: int
    interfaces: Tuple[InterfaceSpec, ...]
    control_interface: Optional[InterfaceSpec]
    config_params: Dict[str, object]
    resources: ResourceUsage
    loc: LocInventory
    latency_cycles: int
    requires_peripheral: Optional[PeripheralKind] = None
    dependencies: Dict[str, str] = field(default_factory=dict)
    dma_engine: Optional[DmaEngineKind] = None
    regfile_factory: Optional[Callable[[], RegisterFile]] = None
    init_factory: Optional[Callable[[], InitSequence]] = None
    performance_gbps: float = 0.0
    channels: int = 1

    @property
    def bandwidth_gbps(self) -> float:
        """Raw data-path bandwidth of one channel."""
        return self.clock.bandwidth_bps(self.data_width_bits) / 1e9

    @property
    def config_item_count(self) -> int:
        """Size of the native configuration inventory (Fig 3b / Fig 12)."""
        return len(self.config_params)

    @property
    def interface_signal_count(self) -> int:
        """Total data-interface signals (control interface excluded)."""
        return sum(interface.signal_count for interface in self.interfaces)

    def register_file(self) -> RegisterFile:
        """A fresh register file for one instance of this IP."""
        if self.regfile_factory is None:
            raise ValueError(f"IP {self.name!r} has no register file model")
        return self.regfile_factory()

    def init_sequence(self) -> InitSequence:
        """The platform-specific initialization program for this IP."""
        if self.init_factory is None:
            raise ValueError(f"IP {self.name!r} has no initialization model")
        return self.init_factory()

    def datapath_stage(
        self, name_suffix: str = "", per_transaction_overhead_cycles: int = 0
    ) -> PipelineStage:
        """A pipeline stage modelling one channel of this IP's data path."""
        return PipelineStage(
            name=f"{self.name}{name_suffix}",
            clock=self.clock,
            data_width_bits=self.data_width_bits,
            latency_cycles=self.latency_cycles,
            per_transaction_overhead_cycles=per_transaction_overhead_cycles,
        )

    def __str__(self) -> str:
        return f"{self.name} ({self.vendor.value} {self.kind.value})"


def per_lane_params(prefix: str, lanes: int, defaults: Dict[str, object]) -> Dict[str, object]:
    """Expand per-lane configuration parameters.

    Vendor GUIs genuinely expose these per lane/channel (e.g. CMAC's
    per-lane RX/TX settings, QDMA's per-function tables), which is where
    much of the configuration-count disparity in Figure 3b comes from.
    """
    expanded: Dict[str, object] = {}
    for lane in range(lanes):
        for key, value in defaults.items():
            expanded[f"{prefix}{lane}_{key}"] = value
    return expanded
