"""DDR SDRAM controller IP models with a bank/row timing model.

The :class:`DdrTiming` model is what gives the Memory RBB's address
interleaving and hot cache something real to optimise: sequential
accesses hit open rows (CAS-only latency) while random accesses pay the
precharge+activate penalty, and consecutive accesses to the same bank
group stall on tCCD_L -- the effect bank-group interleaving removes
(Shin et al., "Bank-Group Level Parallelism", cited by the paper).
"""

from dataclasses import dataclass
from typing import Dict

from repro.hw.ip.base import IpKind, VendorIp
from repro.hw.protocols.avalon import avalon_mm
from repro.hw.protocols.axi import axi4_full, axi4_lite
from repro.hw.registers import (
    Access,
    InitSequence,
    OpKind,
    Register,
    RegisterFile,
    RegisterOp,
)
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import PeripheralKind
from repro.platform.vendor import Vendor
from repro.sim.clock import ClockDomain


@dataclass(frozen=True)
class DdrTiming:
    """JEDEC-style timing parameters for one DDR device (cycles of tCK)."""

    tck_ps: int = 833          # DDR4-2400
    cas_cycles: int = 17       # CL
    trcd_cycles: int = 17      # RAS-to-CAS delay
    trp_cycles: int = 17       # row precharge
    tccd_l_cycles: int = 6     # column-to-column, same bank group
    tccd_s_cycles: int = 4     # column-to-column, different bank group
    trc_cycles: int = 55       # row cycle: activate-to-activate, same bank
    trrd_cycles: int = 6       # activate-to-activate, different banks
    tfaw_cycles: int = 36      # four-activate window
    burst_length: int = 8
    bank_groups: int = 4
    banks_per_group: int = 4
    row_bytes: int = 1_024     # bytes per open row (page size)

    @property
    def row_hit_ps(self) -> int:
        """Service time for a burst hitting an open row."""
        return (self.cas_cycles + self.burst_length // 2) * self.tck_ps

    @property
    def row_miss_ps(self) -> int:
        """Service time for a burst that must precharge + activate first."""
        return (
            self.trp_cycles + self.trcd_cycles + self.cas_cycles + self.burst_length // 2
        ) * self.tck_ps

    @property
    def same_group_gap_ps(self) -> int:
        """Minimum gap between bursts issued to the same bank group."""
        return self.tccd_l_cycles * self.tck_ps

    @property
    def cross_group_gap_ps(self) -> int:
        """Minimum gap between bursts issued to different bank groups."""
        return self.tccd_s_cycles * self.tck_ps

    @property
    def trc_ps(self) -> int:
        """Activate-to-activate spacing within one bank."""
        return self.trc_cycles * self.tck_ps

    @property
    def trrd_ps(self) -> int:
        """Activate-to-activate spacing across banks."""
        return self.trrd_cycles * self.tck_ps

    @property
    def tfaw_ps(self) -> int:
        """Window in which at most four activates may issue."""
        return self.tfaw_cycles * self.tck_ps

    @property
    def burst_transfer_ps(self) -> int:
        """Data-bus occupancy of one burst (BL/2 clock cycles)."""
        return (self.burst_length // 2) * self.tck_ps

    @property
    def burst_bytes(self) -> int:
        """Bytes transferred per burst (x64 device: 8 bytes/beat)."""
        return self.burst_length * 8


DDR4_2400 = DdrTiming()
DDR3_1600 = DdrTiming(tck_ps=1_250, cas_cycles=11, trcd_cycles=11, trp_cycles=11,
                      tccd_l_cycles=4, tccd_s_cycles=4, bank_groups=1,
                      banks_per_group=8, row_bytes=1_024)


def _ddr_register_file(name: str, auto_cal: bool) -> RegisterFile:
    regfile = RegisterFile(name)
    offset = 0

    def add(register_name: str, access: Access = Access.RW, reset: int = 0) -> None:
        nonlocal offset
        regfile.add(Register(register_name, offset, access=access, reset_value=reset))
        offset += 4

    add("VERSION", Access.RO, reset=0x0104_0000)
    # Calibration completes instantly in this transaction-level model.
    add("CAL_STATUS", Access.RO, reset=0x1)
    add("CTRL_ENABLE")
    add("REFRESH_INTERVAL")
    add("ADDR_MAP_MODE")
    add("ECC_CTRL")
    add("PHY_CONFIG")
    if auto_cal:
        add("AUTO_CAL")
    for counter in ("STAT_READS", "STAT_WRITES", "STAT_ROW_HITS", "STAT_ROW_MISSES",
                    "STAT_ECC_CORRECTED", "STAT_ECC_UNCORRECTED"):
        add(counter, Access.RO)
    return regfile


def _mig_init(name: str) -> InitSequence:
    """Xilinx MIG bring-up: poll calibration, then program and enable."""
    sequence = InitSequence(name)
    sequence.append(RegisterOp(OpKind.POLL, "CAL_STATUS", value=1, expect_mask=0x1,
                               comment="wait for DDR calibration"))
    sequence.append(RegisterOp(OpKind.WRITE, "ADDR_MAP_MODE", 0x2,
                               comment="ROW_BANK_COLUMN mapping"))
    sequence.append(RegisterOp(OpKind.WRITE, "REFRESH_INTERVAL", 7_800))
    sequence.append(RegisterOp(OpKind.WRITE, "ECC_CTRL", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "PHY_CONFIG", 0x11))
    sequence.append(RegisterOp(OpKind.WRITE, "CTRL_ENABLE", 0x1))
    sequence.append(RegisterOp(OpKind.READ, "STAT_ECC_UNCORRECTED",
                               comment="confirm clean bring-up"))
    return sequence


def _emif_init(name: str) -> InitSequence:
    """Intel EMIF bring-up: hardware auto-calibration."""
    sequence = InitSequence(name)
    sequence.append(RegisterOp(OpKind.WRITE, "AUTO_CAL", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "ECC_CTRL", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "CTRL_ENABLE", 0x1))
    return sequence


def _ddr4_params(vendor_style: str) -> Dict[str, object]:
    if vendor_style == "xilinx":
        return {
            "C0.DDR4_MemoryPart": "MT40A1G8SA-075E",
            "C0.DDR4_TimePeriod": 833,
            "C0.DDR4_InputClockPeriod": 3334,
            "C0.DDR4_DataWidth": 64,
            "C0.DDR4_CasLatency": 17,
            "C0.DDR4_CasWriteLatency": 12,
            "C0.DDR4_AxiDataWidth": 512,
            "C0.DDR4_AxiAddressWidth": 31,
            "C0.DDR4_AxiIDWidth": 4,
            "C0.DDR4_Ecc": True,
            "C0.DDR4_AutoPrecharge": False,
            "C0.DDR4_Mem_Add_Map": "ROW_BANK_COLUMN",
            "C0.DDR4_BurstLength": 8,
            "C0.DDR4_Slot": "Single",
            "C0.DDR4_Ordering": "Normal",
            "C0.DDR4_DciCascade": False,
            "C0.DDR4_PhyClockRatio": "4:1",
            "C0.DDR4_SelfRefresh": True,
            "C0.DDR4_Restore_Enable": False,
            "C0.DDR4_UserRefreshZQCS": False,
            "Debug_Signal": False,
            "Simulation_Mode": "BFM",
            **{f"C0.DDR4_ByteLane{lane}_{prop}": default
               for lane in range(9)
               for prop, default in (("Vref", 84), ("Odt", "RTT_40"),
                                     ("Drive", "RZQ_7"))},
        }
    return {
        "mem_protocol": "DDR4",
        "mem_format": "COMPONENT",
        "mem_part": "MT40A1G8SA-075E",
        "mem_clk_freq_mhz": 1200.0,
        "ref_clk_freq_mhz": 100.0,
        "data_width": 64,
        "dqs_group_count": 9,
        "cas_latency": 17,
        "write_cas_latency": 12,
        "bank_group_width": 2,
        "bank_addr_width": 2,
        "row_addr_width": 16,
        "col_addr_width": 10,
        "enable_ecc": True,
        "avmm_data_width": 512,
        "address_ordering": "CS_R_B_BG_C",
        "refresh_burst": 4,
        "enable_user_refresh": False,
        "phy_ac_placement": "bottom",
        "io_voltage": 1.2,
        "enable_cal_debug": False,
        **{f"lane{lane}_{prop}": default
           for lane in range(9)
           for prop, default in (("vrefdq", 84), ("odt", "RTT_40"), ("ocd", "34ohm"))},
    }


def xilinx_ddr4_mig() -> VendorIp:
    """Xilinx DDR4 memory interface generator (MIG), AXI4 user port."""
    return VendorIp(
        name="xilinx-ddr4-mig",
        vendor=Vendor.XILINX,
        kind=IpKind.DDR_CONTROLLER,
        clock=ClockDomain("ddr4_ui", 300.0),
        data_width_bits=512,
        interfaces=(axi4_full("c0_ddr4_axi", data_width_bits=512, addr_width_bits=31),),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params=_ddr4_params("xilinx"),
        resources=ResourceUsage(lut=21_500, ff=26_800, bram_36k=25, uram=0, dsp=3),
        loc=LocInventory(common=380, vendor_specific=640, device_specific=180, generated=3_100),
        latency_cycles=22,
        requires_peripheral=PeripheralKind.DDR4,
        dependencies={"tool": "vivado", "tool_version": "2023.1",
                      "ip_catalog": "ddr4", "ip_version": "2.2"},
        regfile_factory=lambda: _ddr_register_file("xilinx-ddr4-mig", auto_cal=False),
        init_factory=lambda: _mig_init("xilinx-ddr4-mig-init"),
        performance_gbps=19.2 * 8,
    )


def intel_emif_ddr4() -> VendorIp:
    """Intel external memory interface (EMIF) for DDR4, Avalon-MM user port."""
    return VendorIp(
        name="intel-emif-ddr4",
        vendor=Vendor.INTEL,
        kind=IpKind.DDR_CONTROLLER,
        clock=ClockDomain("emif_usr", 300.0),
        data_width_bits=512,
        interfaces=(avalon_mm("ctrl_amm", data_width_bits=512, addr_width_bits=31),),
        control_interface=avalon_mm("csr_avmm", data_width_bits=32, burst_width_bits=1),
        config_params=_ddr4_params("intel"),
        resources=ResourceUsage(lut=19_800, ff=24_100, bram_36k=30, uram=0, dsp=0),
        loc=LocInventory(common=370, vendor_specific=650, device_specific=175, generated=2_900),
        latency_cycles=26,
        requires_peripheral=PeripheralKind.DDR4,
        dependencies={"tool": "quartus", "tool_version": "23.2",
                      "ip_catalog": "emif", "ip_version": "23.2"},
        regfile_factory=lambda: _ddr_register_file("intel-emif-ddr4", auto_cal=True),
        init_factory=lambda: _emif_init("intel-emif-ddr4-init"),
        performance_gbps=19.2 * 8,
    )


def xilinx_ddr3_mig() -> VendorIp:
    """Xilinx 7-series DDR3 memory interface (legacy boards), AXI4 port."""
    params = {
        "MemoryPart": "MT41J256M8XX-125",
        "TimePeriod": 1_250,
        "DataWidth": 64,
        "CasLatency": 11,
        "CasWriteLatency": 8,
        "AxiDataWidth": 256,
        "AxiAddressWidth": 30,
        "Ecc": False,
        "Mem_Add_Map": "BANK_ROW_COLUMN",
        "BurstLength": 8,
        "PhyClockRatio": "4:1",
        "InputClockPeriod": 5_000,
        "Ordering": "Normal",
        **{f"ByteLane{lane}_{prop}": default
           for lane in range(8)
           for prop, default in (("Vref", 75), ("Odt", "RTT_60"),
                                 ("Drive", "RZQ_6"))},
    }
    return VendorIp(
        name="xilinx-ddr3-mig",
        vendor=Vendor.XILINX,
        kind=IpKind.DDR_CONTROLLER,
        clock=ClockDomain("ddr3_ui", 200.0),
        data_width_bits=256,
        interfaces=(axi4_full("c0_ddr3_axi", data_width_bits=256, addr_width_bits=30),),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params=params,
        resources=ResourceUsage(lut=14_800, ff=17_200, bram_36k=12, uram=0, dsp=0),
        loc=LocInventory(common=340, vendor_specific=580, device_specific=170,
                         generated=2_400),
        latency_cycles=26,
        requires_peripheral=PeripheralKind.DDR3,
        dependencies={"tool": "vivado", "tool_version": "2023.1",
                      "ip_catalog": "ddr4", "ip_version": "2.2"},
        regfile_factory=lambda: _ddr_register_file("xilinx-ddr3-mig", auto_cal=False),
        init_factory=lambda: _mig_init("xilinx-ddr3-mig-init"),
        performance_gbps=12.8 * 8,
    )
