"""HBM stack controller model (32 pseudo-channels, 460 GB/s aggregate)."""

from repro.hw.ip.base import IpKind, VendorIp, per_lane_params
from repro.hw.protocols.axi import axi4_full, axi4_lite
from repro.hw.registers import (
    Access,
    InitSequence,
    OpKind,
    Register,
    RegisterFile,
    RegisterOp,
)
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import PeripheralKind
from repro.platform.vendor import Vendor
from repro.sim.clock import ClockDomain

_CHANNELS = 32


def _hbm_register_file() -> RegisterFile:
    regfile = RegisterFile("xilinx-hbm")
    offset = 0

    def add(register_name: str, access: Access = Access.RW, reset: int = 0) -> None:
        nonlocal offset
        regfile.add(Register(register_name, offset, access=access, reset_value=reset))
        offset += 4

    add("VERSION", Access.RO, reset=0x0101_0000)
    add("APB_COMPLETE", Access.RO, reset=0x1)  # power-on init done (instant in model)
    add("TEMP_POLL_CFG")
    add("REORDER_EN")
    add("ECC_CTRL")
    for channel in range(_CHANNELS):
        add(f"MC{channel}_CTRL")
    for counter in ("STAT_READS", "STAT_WRITES", "STAT_TEMP_C"):
        add(counter, Access.RO)
    return regfile


def _hbm_init() -> InitSequence:
    sequence = InitSequence("xilinx-hbm-init")
    sequence.append(RegisterOp(OpKind.POLL, "APB_COMPLETE", value=1, expect_mask=0x1,
                               comment="wait for HBM power-on init"))
    sequence.append(RegisterOp(OpKind.WRITE, "REORDER_EN", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "ECC_CTRL", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "TEMP_POLL_CFG", 0x64))
    for channel in range(0, _CHANNELS, 8):
        sequence.append(RegisterOp(OpKind.WRITE, f"MC{channel}_CTRL", 0x1,
                                   comment=f"enable memory controller bank {channel // 8}"))
    return sequence


def xilinx_hbm_stack() -> VendorIp:
    """Xilinx Virtex UltraScale+ HBM controller (two 4GB stacks)."""
    params = {
        "HBM_DENSITY": "8GB",
        "STACKS": 2,
        "AXI_CLK_FREQ_MHZ": 450,
        "MC_ENABLE_GLOBAL": True,
        "SWITCH_ENABLE": True,
        "ECC_ENABLE": True,
        "REFRESH_MODE": "SINGLE",
        "TEMP_POLLING": True,
        "REORDER_QUEUE": True,
        "CLOCKING_MODE": "internal",
        "PAGEHIT_PERCENT_TARGET": 75,
    }
    params.update(per_lane_params("mc", 16, {"enable": True, "traffic_pattern": "linear",
                                             "lookahead_pch": True}))
    return VendorIp(
        name="xilinx-hbm",
        vendor=Vendor.XILINX,
        kind=IpKind.HBM_CONTROLLER,
        clock=ClockDomain("hbm_axi", 450.0),
        data_width_bits=256,
        interfaces=tuple(
            axi4_full(f"saxi_{channel:02d}", data_width_bits=256, addr_width_bits=34)
            for channel in range(4)  # modelled per-quadrant; 32 in hardware
        ),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params=params,
        resources=ResourceUsage(lut=30_500, ff=38_200, bram_36k=36, uram=0, dsp=0),
        loc=LocInventory(common=430, vendor_specific=760, device_specific=200, generated=3_500),
        latency_cycles=34,
        requires_peripheral=PeripheralKind.HBM,
        dependencies={"tool": "vivado", "tool_version": "2023.1",
                      "ip_catalog": "hbm", "ip_version": "1.0"},
        regfile_factory=_hbm_register_file,
        init_factory=_hbm_init,
        performance_gbps=460.0 * 8,
        channels=_CHANNELS,
    )
