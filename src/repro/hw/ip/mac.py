"""Ethernet MAC IP models (25G / 100G / 400G, three vendors).

The three performance tiers follow the paper: data width scales
128/512/2048 bits as link speed scales 25/100/400 Gbps, each with its
vendor-true interface protocol and configuration inventory.

Initialization style reproduces Figure 3d: the Xilinx CMAC requires the
host to *poll* RX alignment before enabling the core ("shell A"), while
the Intel E-tile exposes auto-initialization logic so the host simply
writes initial values ("shell B").
"""

from typing import Dict

from repro.hw.ip.base import IpKind, VendorIp, per_lane_params
from repro.hw.protocols.avalon import avalon_mm, avalon_st
from repro.hw.protocols.axi import axi4_lite, axi4_stream
from repro.hw.registers import (
    Access,
    InitSequence,
    OpKind,
    Register,
    RegisterFile,
    RegisterOp,
)
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import PeripheralKind
from repro.platform.vendor import Vendor
from repro.sim.clock import ClockDomain

#: In this transaction-level model the optics align instantly at reset,
#: so alignment-status polls (Figure 3d, shell A) terminate on the first
#: read.  The *number and ordering* of host operations -- what the
#: command interface abstracts away -- is unaffected.
_ALIGNED_AT_RESET = 1

_STAT_COUNTERS = (
    "STAT_RX_TOTAL_PACKETS",
    "STAT_RX_TOTAL_BYTES",
    "STAT_RX_BAD_FCS",
    "STAT_RX_DROPPED",
    "STAT_TX_TOTAL_PACKETS",
    "STAT_TX_TOTAL_BYTES",
    "STAT_TX_UNDERFLOW",
)


def _mac_register_file(name: str, lanes: int, auto_init: bool) -> RegisterFile:
    """Register block shared by all MAC models; lane count varies."""
    regfile = RegisterFile(name)
    offset = 0

    def add(register_name: str, access: Access = Access.RW, reset: int = 0) -> None:
        nonlocal offset
        regfile.add(Register(register_name, offset, access=access, reset_value=reset))
        offset += 4

    add("VERSION", Access.RO, reset=0x0301_0000)
    add("GT_RESET")
    add("CTRL_TX")
    add("CTRL_RX")
    add("STAT_RX_ALIGNED", Access.RO, reset=_ALIGNED_AT_RESET)
    add("STAT_RX_STATUS", Access.RO, reset=0x1)
    add("RSFEC_CONFIG")
    add("FLOW_CONTROL_CFG")
    if auto_init:
        add("AUTO_INIT")
    for lane in range(lanes):
        add(f"LANE{lane}_RX_CFG")
        add(f"LANE{lane}_TX_CFG")
        add(f"LANE{lane}_STATUS", Access.RO, reset=0x1)
    for counter in _STAT_COUNTERS:
        add(counter, Access.RO)
    return regfile


def _polling_init(name: str, lanes: int) -> InitSequence:
    """Shell-A style init: wait for alignment, then program lane by lane."""
    sequence = InitSequence(name)
    sequence.append(RegisterOp(OpKind.POLL, "STAT_RX_ALIGNED", value=1, expect_mask=0x1,
                               comment="wait for RX lane alignment"))
    sequence.append(RegisterOp(OpKind.WRITE, "GT_RESET", 0x1, comment="pulse GT reset"))
    sequence.append(RegisterOp(OpKind.WRITE, "GT_RESET", 0x0))
    sequence.append(RegisterOp(OpKind.WRITE, "CTRL_RX", 0x0, comment="disable while configuring"))
    sequence.append(RegisterOp(OpKind.WRITE, "CTRL_TX", 0x0))
    for lane in range(lanes):
        sequence.append(RegisterOp(OpKind.WRITE, f"LANE{lane}_RX_CFG", 0x3))
        sequence.append(RegisterOp(OpKind.WRITE, f"LANE{lane}_TX_CFG", 0x3))
        sequence.append(RegisterOp(OpKind.READ, f"LANE{lane}_STATUS",
                                   comment="verify lane status"))
    sequence.append(RegisterOp(OpKind.WRITE, "RSFEC_CONFIG", 0x7, comment="enable RS-FEC"))
    sequence.append(RegisterOp(OpKind.WRITE, "FLOW_CONTROL_CFG", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "CTRL_RX", 0x1, comment="enable RX"))
    sequence.append(RegisterOp(OpKind.WRITE, "CTRL_TX", 0x1, comment="enable TX"))
    sequence.append(RegisterOp(OpKind.READ, "STAT_RX_STATUS", comment="confirm link"))
    return sequence


def _auto_init(name: str) -> InitSequence:
    """Shell-B style init: hardware automation; host writes initial values."""
    sequence = InitSequence(name)
    sequence.append(RegisterOp(OpKind.WRITE, "AUTO_INIT", 0x1,
                               comment="kick built-in bring-up automation"))
    sequence.append(RegisterOp(OpKind.WRITE, "RSFEC_CONFIG", 0x7))
    sequence.append(RegisterOp(OpKind.WRITE, "CTRL_RX", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "CTRL_TX", 0x1))
    return sequence


def _cmac_config(lanes: int) -> Dict[str, object]:
    """The Xilinx CMAC/XXV configuration inventory (UG578-shaped)."""
    params: Dict[str, object] = {
        "CMAC_CORE_SELECT": "CMACE4_X0Y0",
        "GT_TYPE": "GTY",
        "GT_REF_CLK_FREQ": "156.25",
        "LINE_RATE": "100G",
        "USER_INTERFACE": "AXIS",
        "TX_FLOW_CONTROL": True,
        "RX_FLOW_CONTROL": True,
        "INCLUDE_RS_FEC": True,
        "ENABLE_TIME_STAMPING": False,
        "TX_PTP_1STEP_ENABLE": False,
        "PTP_TRANSPCLK_MODE": False,
        "RX_MAX_PACKET_LEN": 9_600,
        "RX_MIN_PACKET_LEN": 64,
        "TX_IPG_VALUE": 12,
        "INS_LOSS_NYQ": 20,
        "RX_EQ_MODE": "AUTO",
        "RX_CHECK_PREAMBLE": True,
        "RX_CHECK_SFD": True,
        "RX_DELETE_FCS": True,
        "TX_APPEND_FCS": True,
        "RX_FORWARD_CONTROL_FRAMES": False,
        "TX_OTN_INTERFACE": False,
        "GT_DRP_CLK": "100",
        "ADD_GT_CNTRL_STS_PORTS": False,
        "ENABLE_AXI_INTERFACE": True,
        "INCLUDE_STATISTICS_COUNTERS": True,
        "ENABLE_DATAPATH_PARITY": False,
        "LANE_ALIGNMENT_MODE": "AM",
    }
    params.update(
        per_lane_params(
            "GT_LANE", lanes, {"polarity": "NORMAL", "txdiffctrl": 24, "txpostcursor": 0,
                               "txprecursor": 0, "rxlpmen": 1, "txmaincursor": 80,
                               "rxterm": "AVTT", "loopback_mode": "off"}
        )
    )
    return params


def _etile_config(lanes: int) -> Dict[str, object]:
    """The Intel E-tile Ethernet configuration inventory (UG20160-shaped)."""
    params: Dict[str, object] = {
        "eth_rate": "100G",
        "client_interface": "AVST",
        "pma_modulation": "NRZ",
        "ref_clk_freq_mhz": "322.265625",
        "enable_rsfec": True,
        "fec_mode": "CL91",
        "enable_ptp": False,
        "rx_max_frame_size": 9_600,
        "tx_ipg_mode": "DTC",
        "enable_mac_stats": True,
        "flow_control_mode": "SFC",
        "enable_anlt": True,
        "vsr_mode": False,
        "enable_ecc": True,
        "dr_enable": False,
        "active_channels": 1,
        "sync_e_support": False,
        "tx_vlan_detection": True,
        "rx_vlan_detection": True,
        "link_fault_mode": "BIDIR",
        "preamble_passthrough": False,
        "source_address_insertion": False,
    }
    params.update(
        per_lane_params(
            "xcvr_lane", lanes, {"vod": 31, "pre_tap": 0, "post_tap": 5,
                                 "ctle_mode": "auto", "media_type": "backplane",
                                 "vga_gain": 4, "dfe_taps": 7, "adapt_mode": "ctle_dfe"}
        )
    )
    return params


def xilinx_cmac_100g() -> VendorIp:
    """Xilinx UltraScale+ Integrated 100G Ethernet (CMAC), AXI4-Stream."""
    lanes = 4
    return VendorIp(
        name="xilinx-cmac-100g",
        vendor=Vendor.XILINX,
        kind=IpKind.MAC,
        clock=ClockDomain("cmac_core", 322.265625),
        data_width_bits=512,
        interfaces=(
            axi4_stream("rx_axis", data_width_bits=512, user_width_bits=1),
            axi4_stream("tx_axis", data_width_bits=512, user_width_bits=1),
        ),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params=_cmac_config(lanes),
        resources=ResourceUsage(lut=11_800, ff=21_500, bram_36k=18, uram=0, dsp=0),
        loc=LocInventory(common=420, vendor_specific=610, device_specific=480, generated=2_900),
        latency_cycles=14,
        requires_peripheral=PeripheralKind.QSFP28,
        dependencies={"tool": "vivado", "tool_version": "2023.1",
                      "ip_catalog": "cmac_usplus", "ip_version": "3.1"},
        regfile_factory=lambda: _mac_register_file("xilinx-cmac-100g", lanes, auto_init=False),
        init_factory=lambda: _polling_init("xilinx-cmac-100g-init", lanes),
        performance_gbps=100.0,
    )


def xilinx_xxv_25g() -> VendorIp:
    """Xilinx XXV 25G Ethernet subsystem, 128-bit AXI4-Stream."""
    lanes = 1
    return VendorIp(
        name="xilinx-xxv-25g",
        vendor=Vendor.XILINX,
        kind=IpKind.MAC,
        clock=ClockDomain("xxv_core", 390.625),
        data_width_bits=128,
        interfaces=(
            axi4_stream("rx_axis", data_width_bits=128),
            axi4_stream("tx_axis", data_width_bits=128),
        ),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params={k: v for k, v in _cmac_config(lanes).items()
                       if not k.startswith("GT_LANE")} | per_lane_params(
            "GT_LANE", lanes, {"polarity": "NORMAL", "txdiffctrl": 24, "txpostcursor": 0,
                               "txprecursor": 0, "rxlpmen": 1, "txmaincursor": 80,
                               "rxterm": "AVTT", "loopback_mode": "off"}),
        resources=ResourceUsage(lut=6_400, ff=9_800, bram_36k=8, uram=0, dsp=0),
        loc=LocInventory(common=380, vendor_specific=540, device_specific=410, generated=2_100),
        latency_cycles=10,
        requires_peripheral=PeripheralKind.QSFP28,
        dependencies={"tool": "vivado", "tool_version": "2023.1",
                      "ip_catalog": "xxv_ethernet", "ip_version": "4.1"},
        regfile_factory=lambda: _mac_register_file("xilinx-xxv-25g", lanes, auto_init=False),
        init_factory=lambda: _polling_init("xilinx-xxv-25g-init", lanes),
        performance_gbps=25.0,
    )


def intel_etile_100g() -> VendorIp:
    """Intel E-tile Hard IP for Ethernet (100G), Avalon-ST."""
    lanes = 4
    return VendorIp(
        name="intel-etile-100g",
        vendor=Vendor.INTEL,
        kind=IpKind.MAC,
        clock=ClockDomain("etile_core", 402.832031),
        data_width_bits=512,
        interfaces=(
            avalon_st("rx_avst", data_width_bits=512),
            avalon_st("tx_avst", data_width_bits=512),
        ),
        control_interface=avalon_mm("csr_avmm", data_width_bits=32, burst_width_bits=1),
        config_params=_etile_config(lanes),
        resources=ResourceUsage(lut=10_900, ff=19_200, bram_36k=22, uram=0, dsp=0),
        loc=LocInventory(common=430, vendor_specific=590, device_specific=470, generated=2_700),
        latency_cycles=16,
        requires_peripheral=PeripheralKind.QSFP28,
        dependencies={"tool": "quartus", "tool_version": "23.2",
                      "ip_catalog": "alt_ehipc3", "ip_version": "7.5"},
        regfile_factory=lambda: _mac_register_file("intel-etile-100g", lanes, auto_init=True),
        init_factory=lambda: _auto_init("intel-etile-100g-init"),
        performance_gbps=100.0,
    )


def inhouse_mac_200g() -> VendorIp:
    """In-house 200G MAC for DSFP/QSFP56 boards, 1024-bit stream."""
    lanes = 4
    params: Dict[str, object] = {
        "line_rate": "200G",
        "serdes_mode": "PAM4",
        "fec_mode": "KP4",
        "max_frame_bytes": 9_600,
        "min_frame_bytes": 64,
        "stats_enable": True,
        "pause_enable": True,
        "channel_bonding": True,
    }
    params.update(per_lane_params("serdes", lanes, {"txeq_main": 38, "txeq_pre": 4,
                                                    "txeq_post": 6, "rx_dfe": True}))
    return VendorIp(
        name="inhouse-mac-200g",
        vendor=Vendor.INHOUSE,
        kind=IpKind.MAC,
        clock=ClockDomain("mac200_core", 250.0),
        data_width_bits=1_024,
        interfaces=(
            axi4_stream("rx_axis", data_width_bits=1_024),
            axi4_stream("tx_axis", data_width_bits=1_024),
        ),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params=params,
        resources=ResourceUsage(lut=19_500, ff=34_000, bram_36k=36, uram=0, dsp=0),
        loc=LocInventory(common=500, vendor_specific=0, device_specific=1_900,
                         generated=950),
        latency_cycles=18,
        requires_peripheral=PeripheralKind.QSFP112,
        dependencies={"tool": "any", "tool_version": "*",
                      "ip_catalog": "bd_mac400", "ip_version": "1.2"},
        regfile_factory=lambda: _mac_register_file("inhouse-mac-200g", lanes,
                                                   auto_init=True),
        init_factory=lambda: _auto_init("inhouse-mac-200g-init"),
        performance_gbps=200.0,
    )


def inhouse_mac_400g() -> VendorIp:
    """In-house 400G MAC for QSFP112/DSFP boards, 2048-bit stream."""
    lanes = 8
    params: Dict[str, object] = {
        "line_rate": "400G",
        "serdes_mode": "PAM4",
        "fec_mode": "KP4",
        "max_frame_bytes": 9_600,
        "min_frame_bytes": 64,
        "stats_enable": True,
        "pause_enable": True,
        "channel_bonding": True,
    }
    params.update(per_lane_params("serdes", lanes, {"txeq_main": 40, "txeq_pre": 4,
                                                    "txeq_post": 8, "rx_dfe": True}))
    return VendorIp(
        name="inhouse-mac-400g",
        vendor=Vendor.INHOUSE,
        kind=IpKind.MAC,
        clock=ClockDomain("mac400_core", 250.0),
        data_width_bits=2_048,
        interfaces=(
            axi4_stream("rx_axis", data_width_bits=2_048),
            axi4_stream("tx_axis", data_width_bits=2_048),
        ),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params=params,
        resources=ResourceUsage(lut=34_000, ff=61_000, bram_36k=64, uram=0, dsp=0),
        loc=LocInventory(common=520, vendor_specific=0, device_specific=2_400, generated=1_100),
        latency_cycles=20,
        requires_peripheral=PeripheralKind.QSFP112,
        dependencies={"tool": "any", "tool_version": "*",
                      "ip_catalog": "bd_mac400", "ip_version": "1.2"},
        regfile_factory=lambda: _mac_register_file("inhouse-mac-400g", lanes, auto_init=True),
        init_factory=lambda: _auto_init("inhouse-mac-400g-init"),
        performance_gbps=400.0,
    )
