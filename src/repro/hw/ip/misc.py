"""Management peripherals: I2C, QSPI flash, sensors, and the soft core.

These small blocks are what the unified control kernel (paper section
3.3.3) multiplexes besides shell/role registers: flash erase, temperature
and voltage reads, time counts -- the "various controllers on production
servers (applications, BMC, standalone tools)" all reach them through
commands.
"""

from repro.hw.ip.base import IpKind, VendorIp
from repro.hw.protocols.axi import axi4_lite
from repro.hw.registers import (
    Access,
    InitSequence,
    OpKind,
    Register,
    RegisterFile,
    RegisterOp,
)
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import PeripheralKind
from repro.platform.vendor import Vendor
from repro.sim.clock import ClockDomain


def _simple_regfile(name: str, registers) -> RegisterFile:
    regfile = RegisterFile(name)
    offset = 0
    for register_name, access, reset in registers:
        regfile.add(Register(register_name, offset, access=access, reset_value=reset))
        offset += 4
    return regfile


def i2c_controller(vendor: Vendor = Vendor.INHOUSE) -> VendorIp:
    """Board-management I2C master (optics, power, EEPROM buses)."""
    def regfile() -> RegisterFile:
        return _simple_regfile(
            f"i2c-{vendor.value}",
            [
                ("CTRL", Access.RW, 0),
                ("STATUS", Access.RO, 0x1),
                ("PRESCALE", Access.RW, 249),
                ("TX_DATA", Access.WO, 0),
                ("RX_DATA", Access.RO, 0),
                ("TARGET_ADDR", Access.RW, 0),
                ("IRQ_MASK", Access.RW, 0),
                ("IRQ_STATUS", Access.W1C, 0),
            ],
        )

    def init() -> InitSequence:
        sequence = InitSequence(f"i2c-{vendor.value}-init")
        sequence.append(RegisterOp(OpKind.WRITE, "PRESCALE", 249, comment="100 kHz"))
        sequence.append(RegisterOp(OpKind.WRITE, "IRQ_MASK", 0x3))
        sequence.append(RegisterOp(OpKind.WRITE, "CTRL", 0x1))
        return sequence

    return VendorIp(
        name=f"i2c-{vendor.value}",
        vendor=vendor,
        kind=IpKind.I2C,
        clock=ClockDomain("i2c_axi", 100.0),
        data_width_bits=32,
        interfaces=(),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params={"bus_speed_khz": 100, "ten_bit_addressing": False,
                       "tx_fifo_depth": 16, "rx_fifo_depth": 16, "smbus_mode": False},
        resources=ResourceUsage(lut=650, ff=820, bram_36k=0, uram=0, dsp=0),
        loc=LocInventory(common=180, vendor_specific=60, device_specific=210, generated=150),
        latency_cycles=4,
        requires_peripheral=PeripheralKind.I2C,
        dependencies={"tool": "any", "tool_version": "*",
                      "ip_catalog": "axi_iic", "ip_version": "2.1"},
        regfile_factory=regfile,
        init_factory=init,
    )


def qspi_flash(vendor: Vendor = Vendor.INHOUSE) -> VendorIp:
    """Configuration flash controller (bitstream storage, golden image)."""
    def regfile() -> RegisterFile:
        return _simple_regfile(
            f"flash-{vendor.value}",
            [
                ("CTRL", Access.RW, 0),
                ("STATUS", Access.RO, 0x1),
                ("SECTOR_ADDR", Access.RW, 0),
                ("ERASE_CMD", Access.WO, 0),
                ("PROGRAM_DATA", Access.WO, 0),
                ("READ_DATA", Access.RO, 0),
                ("WRITE_PROTECT", Access.RW, 1),
                ("IMAGE_SELECT", Access.RW, 0),
            ],
        )

    def init() -> InitSequence:
        sequence = InitSequence(f"flash-{vendor.value}-init")
        sequence.append(RegisterOp(OpKind.WRITE, "WRITE_PROTECT", 0x1))
        sequence.append(RegisterOp(OpKind.WRITE, "CTRL", 0x1))
        return sequence

    return VendorIp(
        name=f"flash-{vendor.value}",
        vendor=vendor,
        kind=IpKind.FLASH,
        clock=ClockDomain("flash_axi", 100.0),
        data_width_bits=32,
        interfaces=(),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params={"flash_size_mb": 256, "quad_mode": True, "dual_parallel": False,
                       "clock_div": 2, "golden_image_offset": 0x0100_0000},
        resources=ResourceUsage(lut=900, ff=1_100, bram_36k=1, uram=0, dsp=0),
        loc=LocInventory(common=200, vendor_specific=80, device_specific=240, generated=180),
        latency_cycles=6,
        requires_peripheral=PeripheralKind.FLASH,
        dependencies={"tool": "any", "tool_version": "*",
                      "ip_catalog": "axi_quad_spi", "ip_version": "3.2"},
        regfile_factory=regfile,
        init_factory=init,
    )


def sensor_block(vendor: Vendor = Vendor.INHOUSE) -> VendorIp:
    """On-die sensors (temperature, voltage) read by health monitoring."""
    def regfile() -> RegisterFile:
        return _simple_regfile(
            f"sensor-{vendor.value}",
            [
                ("CTRL", Access.RW, 0),
                ("TEMP_C", Access.RO, 45),
                ("VCCINT_MV", Access.RO, 850),
                ("VCCAUX_MV", Access.RO, 1_800),
                ("ALARM_THRESH", Access.RW, 95),
                ("ALARM_STATUS", Access.W1C, 0),
            ],
        )

    def init() -> InitSequence:
        sequence = InitSequence(f"sensor-{vendor.value}-init")
        sequence.append(RegisterOp(OpKind.WRITE, "ALARM_THRESH", 95))
        sequence.append(RegisterOp(OpKind.WRITE, "CTRL", 0x1))
        return sequence

    return VendorIp(
        name=f"sensor-{vendor.value}",
        vendor=vendor,
        kind=IpKind.SENSOR,
        clock=ClockDomain("sysmon", 50.0),
        data_width_bits=32,
        interfaces=(),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params={"averaging": 16, "alarm_enable": True, "sequence_mode": "continuous"},
        resources=ResourceUsage(lut=420, ff=510, bram_36k=0, uram=0, dsp=0),
        loc=LocInventory(common=150, vendor_specific=70, device_specific=160, generated=120),
        latency_cycles=2,
        regfile_factory=regfile,
        init_factory=init,
    )


def soft_core(vendor: Vendor = Vendor.INHOUSE) -> VendorIp:
    """The lightweight soft processor hosting the unified control kernel.

    The paper deploys its control kernel on in-FPGA soft cores (e.g.
    Nios) so that every controller -- host applications, BMC, standalone
    tools -- shares one command executor in hardware.
    """
    def regfile() -> RegisterFile:
        return _simple_regfile(
            f"softcore-{vendor.value}",
            [
                ("CTRL", Access.RW, 0),
                ("STATUS", Access.RO, 0x1),
                ("CMD_QUEUE_DEPTH", Access.RW, 64),
                ("CMD_PROCESSED", Access.RO, 0),
                ("FIRMWARE_VERSION", Access.RO, 0x0203_0001),
                ("HEARTBEAT", Access.RO, 0),
            ],
        )

    def init() -> InitSequence:
        sequence = InitSequence(f"softcore-{vendor.value}-init")
        sequence.append(RegisterOp(OpKind.WRITE, "CMD_QUEUE_DEPTH", 64))
        sequence.append(RegisterOp(OpKind.WRITE, "CTRL", 0x1))
        return sequence

    return VendorIp(
        name=f"softcore-{vendor.value}",
        vendor=vendor,
        kind=IpKind.SOFT_CORE,
        clock=ClockDomain("softcore", 200.0),
        data_width_bits=32,
        interfaces=(),
        control_interface=axi4_lite("s_axi_ctrl"),
        config_params={"icache_kb": 16, "dcache_kb": 16, "tcm_kb": 128,
                       "hart_count": 1, "isa": "rv32imc"},
        resources=ResourceUsage(lut=3_900, ff=3_200, bram_36k=8, uram=0, dsp=4),
        loc=LocInventory(common=900, vendor_specific=0, device_specific=150, generated=600),
        latency_cycles=3,
        regfile_factory=regfile,
        init_factory=init,
    )
