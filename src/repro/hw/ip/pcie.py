"""PCIe DMA engine IP models (Xilinx QDMA/XDMA, Intel P-tile MCDMA, in-house BDMA).

Two engine styles matter to hierarchical tailoring (paper section 3.3.2):
a *BDMA* instance suits bulk contiguous transfers, while an *SGDMA*
(scatter-gather, multi-queue) instance suits discrete transfers.  Data
width and user-clock frequency double with each PCIe generation, which
is why the Host RBB pairs these IPs with a parameterised clock-domain
crossing.
"""

import math
from typing import Dict

from repro.hw.ip.base import DmaEngineKind, IpKind, VendorIp, per_lane_params
from repro.hw.protocols.avalon import avalon_mm, avalon_st
from repro.hw.protocols.axi import axi4_full, axi4_lite, axi4_stream
from repro.hw.registers import (
    Access,
    InitSequence,
    OpKind,
    Register,
    RegisterFile,
    RegisterOp,
)
from repro.metrics.loc import LocInventory
from repro.metrics.resources import ResourceUsage
from repro.platform.device import PcieGeneration, PeripheralKind
from repro.platform.vendor import Vendor
from repro.sim.clock import ClockDomain


def _user_clock_mhz(generation: PcieGeneration) -> float:
    """User-clock frequency; doubles with each PCIe generation."""
    return {PcieGeneration.GEN3: 250.0, PcieGeneration.GEN4: 500.0,
            PcieGeneration.GEN5: 1000.0}[generation]


def _dma_register_file(name: str, context_slots: int, auto_ready: bool) -> RegisterFile:
    """Register block for a multi-queue DMA engine."""
    regfile = RegisterFile(name)
    offset = 0

    def add(register_name: str, access: Access = Access.RW, reset: int = 0) -> None:
        nonlocal offset
        regfile.add(Register(register_name, offset, access=access, reset_value=reset))
        offset += 4

    add("VERSION", Access.RO, reset=0x0200_0000)
    add("GLOBAL_CTRL")
    # The engine reports ready immediately in this model (link training is
    # instantaneous at transaction level); polling programs still poll.
    add("GLOBAL_STATUS", Access.RO, reset=0x1)
    add("RING_SIZE_0")
    add("RING_SIZE_1")
    add("H2C_ENGINE_CTRL")
    add("C2H_ENGINE_CTRL")
    add("WRB_INTERVAL")
    add("IRQ_VECTOR_BASE")
    add("IRQ_FUNCTION_MAP")
    add("QID_CTXT_CMD")
    add("QID_CTXT_MASK")
    for slot in range(context_slots):
        add(f"QID_CTXT_DATA{slot}")
    add("CMPL_RING_CFG")
    add("DATA_FENCE_CTRL")
    if auto_ready:
        add("AUTO_BRINGUP")
    for counter in ("STAT_H2C_PACKETS", "STAT_C2H_PACKETS", "STAT_H2C_BYTES",
                    "STAT_C2H_BYTES", "STAT_DESC_FETCH_ERRORS", "STAT_WRB_DROPS"):
        add(counter, Access.RO)
    return regfile


def _sgdma_init(name: str, context_slots: int, queues_at_init: int) -> InitSequence:
    """Queue-context programming: the long, polling-style bring-up."""
    sequence = InitSequence(name)
    sequence.append(RegisterOp(OpKind.POLL, "GLOBAL_STATUS", value=1, expect_mask=0x1,
                               comment="wait for link/engine ready"))
    sequence.append(RegisterOp(OpKind.WRITE, "GLOBAL_CTRL", 0x0, comment="quiesce"))
    sequence.append(RegisterOp(OpKind.WRITE, "RING_SIZE_0", 1024))
    sequence.append(RegisterOp(OpKind.WRITE, "RING_SIZE_1", 4096))
    sequence.append(RegisterOp(OpKind.WRITE, "WRB_INTERVAL", 16))
    sequence.append(RegisterOp(OpKind.WRITE, "IRQ_VECTOR_BASE", 0x20))
    sequence.append(RegisterOp(OpKind.WRITE, "IRQ_FUNCTION_MAP", 0x0))
    for queue in range(queues_at_init):
        for slot in range(context_slots):
            sequence.append(RegisterOp(OpKind.WRITE, f"QID_CTXT_DATA{slot}",
                                       queue << 8 | slot))
        sequence.append(RegisterOp(OpKind.WRITE, "QID_CTXT_MASK", 0xFFFF_FFFF))
        sequence.append(RegisterOp(OpKind.WRITE, "QID_CTXT_CMD", queue << 7 | 0x1,
                                   comment=f"program context for queue {queue}"))
    sequence.append(RegisterOp(OpKind.WRITE, "CMPL_RING_CFG", 0x3))
    sequence.append(RegisterOp(OpKind.WRITE, "H2C_ENGINE_CTRL", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "C2H_ENGINE_CTRL", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "GLOBAL_CTRL", 0x1, comment="enable"))
    return sequence


def _bdma_init(name: str) -> InitSequence:
    """Bulk-DMA bring-up: short, auto-bringup style."""
    sequence = InitSequence(name)
    sequence.append(RegisterOp(OpKind.WRITE, "AUTO_BRINGUP", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "RING_SIZE_0", 1024))
    sequence.append(RegisterOp(OpKind.WRITE, "H2C_ENGINE_CTRL", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "C2H_ENGINE_CTRL", 0x1))
    sequence.append(RegisterOp(OpKind.WRITE, "GLOBAL_CTRL", 0x1))
    return sequence


def _pcie_core_params(generation: PcieGeneration, lanes: int, vendor_prefix: str) -> Dict[str, object]:
    """Parameters every PCIe hard-IP wizard exposes."""
    return {
        f"{vendor_prefix}link_speed": f"gen{int(generation)}",
        f"{vendor_prefix}link_width": f"x{lanes}",
        f"{vendor_prefix}vendor_id": 0x10EE if vendor_prefix == "pl_" else 0x8086,
        f"{vendor_prefix}device_id": 0x903F,
        f"{vendor_prefix}class_code": 0x058000,
        f"{vendor_prefix}bar0_size": "64MB",
        f"{vendor_prefix}bar2_size": "4MB",
        f"{vendor_prefix}max_payload_bytes": 512,
        f"{vendor_prefix}max_read_request_bytes": 4096,
        f"{vendor_prefix}extended_tags": True,
        f"{vendor_prefix}relaxed_ordering": True,
        f"{vendor_prefix}msix_vectors": 32,
        f"{vendor_prefix}sriov_enable": True,
        f"{vendor_prefix}num_virtual_functions": 16,
        f"{vendor_prefix}aer_enable": True,
        f"{vendor_prefix}ari_enable": True,
        f"{vendor_prefix}acs_enable": False,
        f"{vendor_prefix}ref_clk_mhz": 100,
    }


def xilinx_qdma(generation: PcieGeneration = PcieGeneration.GEN4, lanes: int = 8) -> VendorIp:
    """Xilinx QDMA subsystem: scatter-gather, 2048-queue engine."""
    params = _pcie_core_params(generation, lanes, "pl_")
    params.update({
        "dma_interface": "AXI-MM+AXI-ST",
        "num_queues": 2048,
        "descriptor_prefetch": True,
        "completion_coalescing": True,
        "wrb_timer_us": 5,
        "c2h_stream_mode": "cached-bypass",
        "h2c_stream_mode": "internal",
        "enable_mailbox": True,
        "enable_fl_cfg": True,
        "desc_ring_sizes": "512,1024,2048,4096",
        "enable_marker_response": True,
        "axi_data_width": 512,
        "axi_id_width": 4,
    })
    params.update(per_lane_params("pf", 4, {"bar_map": "dma", "queue_base": 0,
                                            "queue_count": 512, "msix_table_size": 8,
                                            "device_id_override": 0}))
    return VendorIp(
        name=f"xilinx-qdma-gen{int(generation)}x{lanes}",
        vendor=Vendor.XILINX,
        kind=IpKind.PCIE_DMA,
        clock=ClockDomain("qdma_user", _user_clock_mhz(generation)),
        data_width_bits=512,
        interfaces=(
            axi4_full("m_axi", data_width_bits=512, addr_width_bits=64),
            axi4_stream("c2h_axis", data_width_bits=512, user_width_bits=64),
            axi4_stream("h2c_axis", data_width_bits=512, user_width_bits=64),
        ),
        control_interface=axi4_lite("s_axil_ctrl"),
        config_params=params,
        resources=ResourceUsage(lut=68_000, ff=94_000, bram_36k=210, uram=16, dsp=0),
        loc=LocInventory(common=680, vendor_specific=1_010, device_specific=390, generated=5_400),
        latency_cycles=28,
        requires_peripheral=PeripheralKind.PCIE,
        dependencies={"tool": "vivado", "tool_version": "2023.1",
                      "ip_catalog": "qdma", "ip_version": "5.0"},
        dma_engine=DmaEngineKind.SGDMA,
        regfile_factory=lambda: _dma_register_file("xilinx-qdma", 8, auto_ready=False),
        init_factory=lambda: _sgdma_init("xilinx-qdma-init", context_slots=8, queues_at_init=8),
        performance_gbps=generation.per_lane_gbps * lanes,
        channels=2048,
    )


def xilinx_xdma(generation: PcieGeneration = PcieGeneration.GEN3, lanes: int = 16) -> VendorIp:
    """Xilinx XDMA: block DMA (BDMA style) with 4 channels per direction."""
    params = _pcie_core_params(generation, lanes, "pl_")
    params.update({
        "dma_interface": "AXI-MM",
        "h2c_channels": 4,
        "c2h_channels": 4,
        "enable_pcie_to_axi_lite_master": True,
        "enable_axi_bypass": False,
        "axi_data_width": 512,
        "axi_id_width": 4,
        "descriptor_bypass": False,
    })
    params.update(per_lane_params("h2c_ch", 4, {"ring_size": 1024, "irq_vector": 0,
                                                "priority": 0}))
    params.update(per_lane_params("c2h_ch", 4, {"ring_size": 1024, "irq_vector": 0,
                                                "priority": 0}))
    return VendorIp(
        name=f"xilinx-xdma-gen{int(generation)}x{lanes}",
        vendor=Vendor.XILINX,
        kind=IpKind.PCIE_DMA,
        clock=ClockDomain("xdma_user", _user_clock_mhz(generation)),
        data_width_bits=512,
        interfaces=(
            axi4_full("m_axi", data_width_bits=512, addr_width_bits=64),
        ),
        control_interface=axi4_lite("s_axil_ctrl"),
        config_params=params,
        resources=ResourceUsage(lut=41_000, ff=62_000, bram_36k=120, uram=0, dsp=0),
        loc=LocInventory(common=590, vendor_specific=840, device_specific=330, generated=4_100),
        latency_cycles=22,
        requires_peripheral=PeripheralKind.PCIE,
        dependencies={"tool": "vivado", "tool_version": "2023.1",
                      "ip_catalog": "xdma", "ip_version": "4.1"},
        dma_engine=DmaEngineKind.BDMA,
        regfile_factory=lambda: _dma_register_file("xilinx-xdma", 4, auto_ready=True),
        init_factory=lambda: _bdma_init("xilinx-xdma-init"),
        performance_gbps=generation.per_lane_gbps * lanes,
        channels=8,
    )


def intel_ptile_mcdma(generation: PcieGeneration = PcieGeneration.GEN4, lanes: int = 16) -> VendorIp:
    """Intel P-tile Multi-Channel DMA, Avalon interfaces."""
    params = _pcie_core_params(generation, lanes, "ip_")
    params.update({
        "user_mode": "MCDMA",
        "num_dma_channels": 512,
        "interface_type": "AVMM+AVST",
        "d2h_prefetch_depth": 16,
        "h2d_prefetch_depth": 16,
        "completion_reordering": True,
        "enable_bursting_master": True,
        "avmm_data_width": 512,
        "avst_ready_latency": 3,
        "enable_pipa": False,
        "user_msix_table": True,
        "metadata_width": 64,
    })
    params.update(per_lane_params("func", 4, {"bar_layout": "mcdma", "chan_base": 0,
                                              "chan_count": 128, "msix_table_size": 8,
                                              "pasid_enable": False}))
    return VendorIp(
        name=f"intel-ptile-mcdma-gen{int(generation)}x{lanes}",
        vendor=Vendor.INTEL,
        kind=IpKind.PCIE_DMA,
        clock=ClockDomain("ptile_user", _user_clock_mhz(generation)),
        data_width_bits=512,
        interfaces=(
            avalon_mm("dma_avmm", data_width_bits=512, addr_width_bits=64),
            avalon_st("d2h_avst", data_width_bits=512),
            avalon_st("h2d_avst", data_width_bits=512),
        ),
        control_interface=avalon_mm("csr_avmm", data_width_bits=32, burst_width_bits=1),
        config_params=params,
        resources=ResourceUsage(lut=72_000, ff=101_000, bram_36k=260, uram=0, dsp=0),
        loc=LocInventory(common=670, vendor_specific=1_050, device_specific=410, generated=5_900),
        latency_cycles=32,
        requires_peripheral=PeripheralKind.PCIE,
        dependencies={"tool": "quartus", "tool_version": "23.2",
                      "ip_catalog": "mcdma", "ip_version": "23.2"},
        dma_engine=DmaEngineKind.SGDMA,
        regfile_factory=lambda: _dma_register_file("intel-mcdma", 6, auto_ready=False),
        init_factory=lambda: _sgdma_init("intel-mcdma-init", context_slots=6, queues_at_init=8),
        performance_gbps=generation.per_lane_gbps * lanes,
        channels=512,
    )


def inhouse_bdma(generation: PcieGeneration = PcieGeneration.GEN4, lanes: int = 16) -> VendorIp:
    """In-house bulk DMA engine used on custom boards."""
    params: Dict[str, object] = {
        "link": f"gen{int(generation)}x{lanes}",
        "channels": 4,
        "max_burst_kb": 64,
        "doorbell_mode": "mmio",
        "interrupt_mode": "msix",
        "data_width": 512,
        "ecc": True,
        "bar0_size_mb": 64,
        "completion_timeout_us": 50,
        "max_outstanding": 32,
        "tag_bits": 8,
    }
    params.update(per_lane_params("ch", 4, {"ring_size": 1024, "irq_vector": 0,
                                            "burst_kb": 64, "priority": 0}))
    return VendorIp(
        name=f"inhouse-bdma-gen{int(generation)}x{lanes}",
        vendor=Vendor.INHOUSE,
        kind=IpKind.PCIE_DMA,
        clock=ClockDomain("bdma_user", _user_clock_mhz(generation)),
        data_width_bits=512,
        interfaces=(
            axi4_full("m_axi", data_width_bits=512, addr_width_bits=64),
        ),
        control_interface=axi4_lite("s_axil_ctrl"),
        config_params=params,
        resources=ResourceUsage(lut=38_000, ff=55_000, bram_36k=96, uram=0, dsp=0),
        loc=LocInventory(common=540, vendor_specific=0, device_specific=1_900, generated=900),
        latency_cycles=18,
        requires_peripheral=PeripheralKind.PCIE,
        dependencies={"tool": "any", "tool_version": "*",
                      "ip_catalog": "bd_bdma", "ip_version": "2.0"},
        dma_engine=DmaEngineKind.BDMA,
        regfile_factory=lambda: _dma_register_file("inhouse-bdma", 4, auto_ready=True),
        init_factory=lambda: _bdma_init("inhouse-bdma-init"),
        performance_gbps=generation.per_lane_gbps * lanes,
        channels=4,
    )
