"""Hardware interface protocol definitions (AXI and Avalon families)."""

from repro.hw.protocols.base import (
    Direction,
    InterfaceSpec,
    ProtocolFamily,
    SignalSpec,
)
from repro.hw.protocols.axi import (
    axi4_full,
    axi4_lite,
    axi4_stream,
)
from repro.hw.protocols.avalon import (
    avalon_mm,
    avalon_st,
)

__all__ = [
    "Direction",
    "InterfaceSpec",
    "ProtocolFamily",
    "SignalSpec",
    "axi4_full",
    "axi4_lite",
    "axi4_stream",
    "avalon_mm",
    "avalon_st",
]
