"""Intel Avalon protocol definitions (Intel-side interfaces).

Signal lists follow the Avalon Interface Specifications (Intel
MNL-AVABUSREF): Avalon Streaming (Avalon-ST) for packet data and Avalon
Memory-Mapped (Avalon-MM) for addressable transfers and registers.
"""

import math

from repro.hw.protocols.base import Direction, InterfaceSpec, ProtocolFamily, SignalSpec

_IN = Direction.INPUT
_OUT = Direction.OUTPUT


def avalon_st(
    name: str = "avst",
    data_width_bits: int = 512,
    channel_width_bits: int = 1,
    error_width_bits: int = 1,
) -> InterfaceSpec:
    """An Avalon-ST source interface of the given widths.

    Unlike AXI4-Stream's TKEEP byte mask, Avalon-ST uses a binary
    ``empty`` count of unused symbols in the final beat; the wrapper has
    to translate between the two encodings.
    """
    symbols_per_beat = max(data_width_bits // 8, 1)
    empty_width = max(int(math.ceil(math.log2(symbols_per_beat))), 1)
    signals = (
        SignalSpec("clk", 1, _IN, "interface clock"),
        SignalSpec("reset_n", 1, _IN, "active-low reset"),
        SignalSpec("valid", 1, _OUT, "qualifies all other signals"),
        SignalSpec("ready", 1, _IN, "sink ready (readyLatency applies)"),
        SignalSpec("data", data_width_bits, _OUT, "data beat"),
        SignalSpec("channel", channel_width_bits, _OUT, "channel number"),
        SignalSpec("error", error_width_bits, _OUT, "per-packet error bits"),
        SignalSpec("startofpacket", 1, _OUT, "first beat of packet"),
        SignalSpec("endofpacket", 1, _OUT, "last beat of packet"),
        SignalSpec("empty", empty_width, _OUT, "unused symbols in final beat"),
    )
    return InterfaceSpec(name, ProtocolFamily.AVALON_ST, signals, sideband=("error", "channel"))


def avalon_mm(
    name: str = "avmm",
    data_width_bits: int = 512,
    addr_width_bits: int = 32,
    burst_width_bits: int = 7,
) -> InterfaceSpec:
    """An Avalon-MM host (master) interface of the given widths.

    Avalon-MM has a single shared address bus and a ``waitrequest``
    handshake, where AXI4 has five independent channels -- the structural
    difference the interface wrapper hides.
    """
    byteenable_width = max(data_width_bits // 8, 1)
    signals = (
        SignalSpec("clk", 1, _IN, "interface clock"),
        SignalSpec("reset_n", 1, _IN, "active-low reset"),
        SignalSpec("address", addr_width_bits, _OUT, "word or byte address"),
        SignalSpec("byteenable", byteenable_width, _OUT, "byte lane enables"),
        SignalSpec("read", 1, _OUT, "read request"),
        SignalSpec("readdata", data_width_bits, _IN, "read data"),
        SignalSpec("readdatavalid", 1, _IN, "pipelined read data valid"),
        SignalSpec("write", 1, _OUT, "write request"),
        SignalSpec("writedata", data_width_bits, _OUT, "write data"),
        SignalSpec("waitrequest", 1, _IN, "agent busy; hold request"),
        SignalSpec("burstcount", burst_width_bits, _OUT, "beats in burst"),
        SignalSpec("response", 2, _IN, "transfer response status"),
        SignalSpec("lock", 1, _OUT, "arbitration lock"),
        SignalSpec("debugaccess", 1, _OUT, "debug access to OCRAM"),
    )
    return InterfaceSpec(name, ProtocolFamily.AVALON_MM, signals)
