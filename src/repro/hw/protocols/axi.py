"""AMBA AXI4 protocol definitions (Xilinx-side interfaces).

Signal lists follow the AMBA AXI and ACE Protocol Specification
(ARM IHI 0022) as instantiated by Xilinx IP (UG1037).  Three factory
functions build parameterised :class:`InterfaceSpec` objects:

* :func:`axi4_stream` -- the streaming protocol used by CMAC, Ethernet
  subsystems and QDMA stream ports;
* :func:`axi4_full` -- the full memory-mapped protocol used by DDR/HBM
  controllers and DMA master ports;
* :func:`axi4_lite` -- the register-access subset used for control.
"""

from repro.hw.protocols.base import Direction, InterfaceSpec, ProtocolFamily, SignalSpec

_IN = Direction.INPUT
_OUT = Direction.OUTPUT


def axi4_stream(
    name: str = "axis",
    data_width_bits: int = 512,
    user_width_bits: int = 1,
    id_width_bits: int = 1,
    dest_width_bits: int = 1,
) -> InterfaceSpec:
    """An AXI4-Stream interface of the given widths (master view)."""
    keep_width = data_width_bits // 8
    signals = (
        SignalSpec("ACLK", 1, _IN, "interface clock"),
        SignalSpec("ARESETn", 1, _IN, "active-low reset"),
        SignalSpec("TVALID", 1, _OUT, "transfer valid"),
        SignalSpec("TREADY", 1, _IN, "sink ready"),
        SignalSpec("TDATA", data_width_bits, _OUT, "data beat"),
        SignalSpec("TSTRB", keep_width, _OUT, "byte qualifier (data/position)"),
        SignalSpec("TKEEP", keep_width, _OUT, "byte qualifier (null bytes)"),
        SignalSpec("TLAST", 1, _OUT, "end of packet"),
        SignalSpec("TID", id_width_bits, _OUT, "stream identifier"),
        SignalSpec("TDEST", dest_width_bits, _OUT, "routing destination"),
        SignalSpec("TUSER", user_width_bits, _OUT, "sideband user data"),
    )
    return InterfaceSpec(name, ProtocolFamily.AXI4_STREAM, signals, sideband=("TUSER",))


def axi4_full(
    name: str = "axi",
    data_width_bits: int = 512,
    addr_width_bits: int = 34,
    id_width_bits: int = 6,
    user_width_bits: int = 1,
) -> InterfaceSpec:
    """A full AXI4 memory-mapped interface (master view, all 5 channels)."""
    strb_width = data_width_bits // 8
    signals = (
        SignalSpec("ACLK", 1, _IN, "interface clock"),
        SignalSpec("ARESETn", 1, _IN, "active-low reset"),
        # Write address channel.
        SignalSpec("AWID", id_width_bits, _OUT, "write transaction ID"),
        SignalSpec("AWADDR", addr_width_bits, _OUT, "write address"),
        SignalSpec("AWLEN", 8, _OUT, "burst length"),
        SignalSpec("AWSIZE", 3, _OUT, "burst size"),
        SignalSpec("AWBURST", 2, _OUT, "burst type"),
        SignalSpec("AWLOCK", 1, _OUT, "lock type"),
        SignalSpec("AWCACHE", 4, _OUT, "memory type"),
        SignalSpec("AWPROT", 3, _OUT, "protection type"),
        SignalSpec("AWQOS", 4, _OUT, "quality of service"),
        SignalSpec("AWREGION", 4, _OUT, "region identifier"),
        SignalSpec("AWUSER", user_width_bits, _OUT, "write address sideband"),
        SignalSpec("AWVALID", 1, _OUT, "write address valid"),
        SignalSpec("AWREADY", 1, _IN, "write address ready"),
        # Write data channel.
        SignalSpec("WDATA", data_width_bits, _OUT, "write data"),
        SignalSpec("WSTRB", strb_width, _OUT, "write strobes"),
        SignalSpec("WLAST", 1, _OUT, "last beat of burst"),
        SignalSpec("WUSER", user_width_bits, _OUT, "write data sideband"),
        SignalSpec("WVALID", 1, _OUT, "write data valid"),
        SignalSpec("WREADY", 1, _IN, "write data ready"),
        # Write response channel.
        SignalSpec("BID", id_width_bits, _IN, "response transaction ID"),
        SignalSpec("BRESP", 2, _IN, "write response"),
        SignalSpec("BUSER", user_width_bits, _IN, "response sideband"),
        SignalSpec("BVALID", 1, _IN, "response valid"),
        SignalSpec("BREADY", 1, _OUT, "response ready"),
        # Read address channel.
        SignalSpec("ARID", id_width_bits, _OUT, "read transaction ID"),
        SignalSpec("ARADDR", addr_width_bits, _OUT, "read address"),
        SignalSpec("ARLEN", 8, _OUT, "burst length"),
        SignalSpec("ARSIZE", 3, _OUT, "burst size"),
        SignalSpec("ARBURST", 2, _OUT, "burst type"),
        SignalSpec("ARLOCK", 1, _OUT, "lock type"),
        SignalSpec("ARCACHE", 4, _OUT, "memory type"),
        SignalSpec("ARPROT", 3, _OUT, "protection type"),
        SignalSpec("ARQOS", 4, _OUT, "quality of service"),
        SignalSpec("ARREGION", 4, _OUT, "region identifier"),
        SignalSpec("ARUSER", user_width_bits, _OUT, "read address sideband"),
        SignalSpec("ARVALID", 1, _OUT, "read address valid"),
        SignalSpec("ARREADY", 1, _IN, "read address ready"),
        # Read data channel.
        SignalSpec("RID", id_width_bits, _IN, "read data transaction ID"),
        SignalSpec("RDATA", data_width_bits, _IN, "read data"),
        SignalSpec("RRESP", 2, _IN, "read response"),
        SignalSpec("RLAST", 1, _IN, "last beat of burst"),
        SignalSpec("RUSER", user_width_bits, _IN, "read data sideband"),
        SignalSpec("RVALID", 1, _IN, "read data valid"),
        SignalSpec("RREADY", 1, _OUT, "read data ready"),
    )
    return InterfaceSpec(name, ProtocolFamily.AXI4_FULL, signals, sideband=("AWUSER", "WUSER", "ARUSER"))


def axi4_lite(
    name: str = "axil",
    data_width_bits: int = 32,
    addr_width_bits: int = 32,
) -> InterfaceSpec:
    """An AXI4-Lite register interface (master view)."""
    strb_width = data_width_bits // 8
    signals = (
        SignalSpec("ACLK", 1, _IN, "interface clock"),
        SignalSpec("ARESETn", 1, _IN, "active-low reset"),
        SignalSpec("AWADDR", addr_width_bits, _OUT, "write address"),
        SignalSpec("AWPROT", 3, _OUT, "protection type"),
        SignalSpec("AWVALID", 1, _OUT, "write address valid"),
        SignalSpec("AWREADY", 1, _IN, "write address ready"),
        SignalSpec("WDATA", data_width_bits, _OUT, "write data"),
        SignalSpec("WSTRB", strb_width, _OUT, "write strobes"),
        SignalSpec("WVALID", 1, _OUT, "write data valid"),
        SignalSpec("WREADY", 1, _IN, "write data ready"),
        SignalSpec("BRESP", 2, _IN, "write response"),
        SignalSpec("BVALID", 1, _IN, "response valid"),
        SignalSpec("BREADY", 1, _OUT, "response ready"),
        SignalSpec("ARADDR", addr_width_bits, _OUT, "read address"),
        SignalSpec("ARPROT", 3, _OUT, "protection type"),
        SignalSpec("ARVALID", 1, _OUT, "read address valid"),
        SignalSpec("ARREADY", 1, _IN, "read address ready"),
        SignalSpec("RDATA", data_width_bits, _IN, "read data"),
        SignalSpec("RRESP", 2, _IN, "read response"),
        SignalSpec("RVALID", 1, _IN, "read data valid"),
        SignalSpec("RREADY", 1, _OUT, "read data ready"),
    )
    return InterfaceSpec(name, ProtocolFamily.AXI4_LITE, signals)
