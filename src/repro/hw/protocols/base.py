"""Common machinery for describing hardware interface protocols.

An :class:`InterfaceSpec` is a named bundle of :class:`SignalSpec`
entries.  Vendor IPs expose their ports as interface specs; the
Harmonia interface wrapper (:mod:`repro.adapters.wrapper`) converts them
into the six unified types of :mod:`repro.hw.signal_types`.

Interface *counts* matter to the paper: Figure 3b measures the disparity
in interface and configuration properties between equivalent Xilinx and
Intel IPs, so the definitions here follow the published signal lists of
the respective protocol specifications (AMBA AXI4 IHI0022, Avalon
Interface Specifications MNL-AVABUSREF).
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple


class ProtocolFamily(enum.Enum):
    """The protocol families seen across the device fleet."""

    AXI4_STREAM = "axi4-stream"
    AXI4_FULL = "axi4-full"
    AXI4_LITE = "axi4-lite"
    AVALON_ST = "avalon-st"
    AVALON_MM = "avalon-mm"
    CUSTOM = "custom"
    UNIFIED = "unified"


class Direction(enum.Enum):
    """Signal direction from the IP's point of view."""

    INPUT = "input"
    OUTPUT = "output"
    INOUT = "inout"


@dataclass(frozen=True)
class SignalSpec:
    """One port signal of an interface.

    ``width`` may be parametric; the value stored is the width for the
    instance under discussion (e.g. 512 for a 512-bit TDATA).
    """

    name: str
    width: int
    direction: Direction
    description: str = ""

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"signal {self.name!r} must be at least 1 bit wide")


@dataclass(frozen=True)
class InterfaceSpec:
    """A named bundle of signals speaking one protocol."""

    name: str
    family: ProtocolFamily
    signals: Tuple[SignalSpec, ...]
    sideband: Tuple[str, ...] = ()

    @property
    def signal_count(self) -> int:
        """Number of distinct signals (the paper's 'interface' metric)."""
        return len(self.signals)

    @property
    def total_width_bits(self) -> int:
        """Sum of all signal widths."""
        return sum(signal.width for signal in self.signals)

    def signal(self, name: str) -> SignalSpec:
        """Look up a signal by name."""
        for candidate in self.signals:
            if candidate.name == name:
                return candidate
        raise KeyError(f"interface {self.name!r} has no signal {name!r}")

    def signal_names(self) -> List[str]:
        return [signal.name for signal in self.signals]

    def data_width_bits(self) -> int:
        """Width of the primary data signal, if the protocol has one."""
        for candidate_name in ("TDATA", "WDATA", "data", "writedata", "wdata"):
            try:
                return self.signal(candidate_name).width
            except KeyError:
                continue
        raise KeyError(f"interface {self.name!r} has no recognised data signal")

    def renamed(self, name: str) -> "InterfaceSpec":
        """A copy of this spec under a different instance name."""
        return InterfaceSpec(name, self.family, self.signals, self.sideband)


def disparity(left: InterfaceSpec, right: InterfaceSpec) -> int:
    """Count of signals present in one interface but not the other.

    This is the metric behind Figure 3b's interface bars: signals that
    would need hand-written adaptation when swapping one vendor's IP for
    the other's.
    """
    left_names = set(left.signal_names())
    right_names = set(right.signal_names())
    return len(left_names.symmetric_difference(right_names))
