"""Register files, register maps, and per-platform init sequences.

The command-based interface (paper section 3.3.3) exists because shells
expose *register-level* control whose details (widths, addresses, and --
crucially -- operation ordering) vary across platforms.  This module
models that faithfully:

* :class:`Register` / :class:`RegisterFile` -- addressable state with
  access control, exactly what the unified control kernel reads/writes;
* :class:`RegisterOp` / :class:`InitSequence` -- ordered register
  operation programs, including polling (the Figure 3d "shell A waits on
  a status read" example), used to *measure* software modifications when
  migrating between platforms.
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import RegisterAccessError


class Access(enum.Enum):
    """Register access modes."""

    RO = "read-only"
    RW = "read-write"
    WO = "write-only"
    W1C = "write-1-to-clear"


@dataclass
class Register:
    """One addressable register."""

    name: str
    offset: int
    width: int = 32
    access: Access = Access.RW
    reset_value: int = 0
    description: str = ""
    value: int = field(init=False)

    def __post_init__(self) -> None:
        if self.offset < 0 or self.offset % 4 != 0:
            raise ValueError(f"register {self.name!r} offset must be a non-negative multiple of 4")
        if self.width not in (8, 16, 32, 64):
            raise ValueError(f"register {self.name!r} has unsupported width {self.width}")
        self.value = self.reset_value

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def reset(self) -> None:
        self.value = self.reset_value


class RegisterFile:
    """A module's register block at a base address.

    Reads and writes are validated against each register's access mode and
    recorded in an operation trace so migration costs can be measured by
    diffing traces rather than asserting constants.
    """

    def __init__(self, name: str, base_address: int = 0) -> None:
        self.name = name
        self.base_address = base_address
        self._by_offset: Dict[int, Register] = {}
        self._by_name: Dict[str, Register] = {}
        self.trace: List[Tuple[str, int, int]] = []

    def add(self, register: Register) -> Register:
        """Register a new :class:`Register`; offsets and names are unique."""
        if register.offset in self._by_offset:
            raise ValueError(f"offset {register.offset:#x} already used in {self.name!r}")
        if register.name in self._by_name:
            raise ValueError(f"register name {register.name!r} already used in {self.name!r}")
        self._by_offset[register.offset] = register
        self._by_name[register.name] = register
        return register

    def add_many(self, registers: Iterable[Register]) -> None:
        for register in registers:
            self.add(register)

    def __len__(self) -> int:
        return len(self._by_offset)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> List[str]:
        return list(self._by_name)

    def register(self, name: str) -> Register:
        try:
            return self._by_name[name]
        except KeyError:
            raise RegisterAccessError(f"{self.name!r} has no register {name!r}") from None

    def _lookup(self, offset: int) -> Register:
        try:
            return self._by_offset[offset]
        except KeyError:
            raise RegisterAccessError(
                f"unmapped offset {offset:#x} in register file {self.name!r}"
            ) from None

    def read(self, offset: int) -> int:
        """Read by offset; write-only registers reject reads."""
        register = self._lookup(offset)
        if register.access is Access.WO:
            raise RegisterAccessError(f"register {register.name!r} is write-only")
        self.trace.append(("read", offset, register.value))
        return register.value

    def write(self, offset: int, value: int) -> None:
        """Write by offset, honouring RO and W1C semantics."""
        register = self._lookup(offset)
        if register.access is Access.RO:
            raise RegisterAccessError(f"register {register.name!r} is read-only")
        value &= register.mask
        if register.access is Access.W1C:
            register.value &= ~value
        else:
            register.value = value
        self.trace.append(("write", offset, value))

    def read_by_name(self, name: str) -> int:
        return self.read(self.register(name).offset)

    def write_by_name(self, name: str, value: int) -> None:
        self.write(self.register(name).offset, value)

    def poke(self, name: str, value: int) -> None:
        """Hardware-side (untraced, access-unchecked) state update.

        Used by behavioural models to reflect internal state into status
        registers -- the equivalent of hardware driving a RO register.
        """
        register = self.register(name)
        register.value = value & register.mask

    def reset_all(self) -> None:
        for register in self._by_offset.values():
            register.reset()
        self.trace.clear()


class OpKind(enum.Enum):
    """Kinds of host-visible register operations."""

    READ = "read"
    WRITE = "write"
    POLL = "poll"


@dataclass(frozen=True)
class RegisterOp:
    """One step of a control program against a register file."""

    kind: OpKind
    register: str
    value: int = 0
    expect_mask: int = 0xFFFF_FFFF
    comment: str = ""

    def signature(self) -> Tuple[str, str, int]:
        """Identity used when diffing two sequences for migration cost."""
        return (self.kind.value, self.register, self.value)


class InitSequence:
    """An ordered register program (e.g. module initialization).

    ``execute`` runs the program against a live register file.  POLL ops
    spin until the register's masked value equals ``value`` -- the
    behavioural models arrange for status registers to be poked before
    init runs, so polls terminate; a ``max_polls`` guard catches broken
    programs.
    """

    def __init__(self, name: str, ops: Optional[List[RegisterOp]] = None) -> None:
        self.name = name
        self.ops: List[RegisterOp] = list(ops) if ops else []

    def append(self, op: RegisterOp) -> "InitSequence":
        self.ops.append(op)
        return self

    def __len__(self) -> int:
        return len(self.ops)

    def execute(self, regfile: RegisterFile, max_polls: int = 1024) -> int:
        """Run the program; returns the number of register accesses made."""
        accesses = 0
        for op in self.ops:
            offset = regfile.register(op.register).offset
            if op.kind is OpKind.WRITE:
                regfile.write(offset, op.value)
                accesses += 1
            elif op.kind is OpKind.READ:
                regfile.read(offset)
                accesses += 1
            else:
                for _ in range(max_polls):
                    accesses += 1
                    if regfile.read(offset) & op.expect_mask == op.value:
                        break
                else:
                    raise RegisterAccessError(
                        f"poll on {op.register!r} in {self.name!r} never satisfied"
                    )
        return accesses


def modification_cost(old: InitSequence, new: InitSequence) -> int:
    """Lines of host software touched when migrating ``old`` -> ``new``.

    Counted as the size of the edit script between the two operation
    lists (ops removed + ops added, by position-independent multiset
    diff, plus reordering cost for ops whose relative order changed).
    This mirrors how the paper counts "software modifications": every
    register access whose address, value, or ordering changes is a line
    the user must touch.
    """
    old_sigs = [op.signature() for op in old.ops]
    new_sigs = [op.signature() for op in new.ops]
    # Longest common subsequence keeps genuinely unchanged lines.
    lcs = _lcs_length(old_sigs, new_sigs)
    return (len(old_sigs) - lcs) + (len(new_sigs) - lcs)


def _lcs_length(left: List, right: List) -> int:
    """Classic O(n*m) longest-common-subsequence length."""
    if not left or not right:
        return 0
    previous = [0] * (len(right) + 1)
    for left_item in left:
        current = [0]
        for column, right_item in enumerate(right, start=1):
            if left_item == right_item:
                current.append(previous[column - 1] + 1)
            else:
                current.append(max(previous[column], current[-1]))
        previous = current
    return previous[-1]
