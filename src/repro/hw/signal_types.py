"""Harmonia's unified interface types (paper section 3.2).

The lightweight interface wrapper converts every vendor interface into
one of six basic types:

* ``clock`` / ``reset`` -- arrays of clock and reset signals; other
  modules select entries by index;
* ``stream`` -- continuous data with start/end-of-stream delimiters;
* ``mem_map`` -- block data with an address and size;
* ``reg`` -- register read/write with unique addresses per signal;
* ``irq`` -- raw latency-intensive signals exposed directly.
"""

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.hw.protocols.base import Direction, InterfaceSpec, ProtocolFamily, SignalSpec

_IN = Direction.INPUT
_OUT = Direction.OUTPUT


class UnifiedType(enum.Enum):
    """The six basic interface types of the platform-specific layer."""

    CLOCK = "clock"
    RESET = "reset"
    STREAM = "stream"
    MEM_MAP = "mem_map"
    REG = "reg"
    IRQ = "irq"


#: Which unified type each vendor protocol family maps onto.
FAMILY_TO_UNIFIED = {
    ProtocolFamily.AXI4_STREAM: UnifiedType.STREAM,
    ProtocolFamily.AVALON_ST: UnifiedType.STREAM,
    ProtocolFamily.AXI4_FULL: UnifiedType.MEM_MAP,
    ProtocolFamily.AVALON_MM: UnifiedType.MEM_MAP,
    ProtocolFamily.AXI4_LITE: UnifiedType.REG,
}


def unified_clock(name: str = "clk", lanes: int = 4) -> InterfaceSpec:
    """A clock array: modules index into it to pick a frequency."""
    signals = tuple(
        SignalSpec(f"clk_{index}", 1, _IN, f"clock lane {index}") for index in range(lanes)
    )
    return InterfaceSpec(name, ProtocolFamily.UNIFIED, signals)


def unified_reset(name: str = "rst", lanes: int = 4) -> InterfaceSpec:
    """A reset array covering hard and soft resets."""
    signals = tuple(
        SignalSpec(f"rst_{index}", 1, _IN, f"reset lane {index}") for index in range(lanes)
    )
    return InterfaceSpec(name, ProtocolFamily.UNIFIED, signals)


def unified_stream(name: str = "u_stream", data_width_bits: int = 512) -> InterfaceSpec:
    """The unified streaming data interface (start/end delimited)."""
    keep_width = max(data_width_bits // 8, 1)
    signals = (
        SignalSpec("valid", 1, _OUT, "beat valid"),
        SignalSpec("ready", 1, _IN, "sink ready"),
        SignalSpec("data", data_width_bits, _OUT, "data beat"),
        SignalSpec("keep", keep_width, _OUT, "valid bytes in beat"),
        SignalSpec("sos", 1, _OUT, "start of stream"),
        SignalSpec("eos", 1, _OUT, "end of stream"),
    )
    return InterfaceSpec(name, ProtocolFamily.UNIFIED, signals)


def unified_mem_map(
    name: str = "u_memmap",
    data_width_bits: int = 512,
    addr_width_bits: int = 34,
) -> InterfaceSpec:
    """The unified memory-mapped interface (address + size per chunk)."""
    signals = (
        SignalSpec("valid", 1, _OUT, "request valid"),
        SignalSpec("ready", 1, _IN, "target ready"),
        SignalSpec("addr", addr_width_bits, _OUT, "chunk base address"),
        SignalSpec("size", 16, _OUT, "chunk size in bytes"),
        SignalSpec("write", 1, _OUT, "1 = write, 0 = read"),
        SignalSpec("wdata", data_width_bits, _OUT, "write data beat"),
        SignalSpec("rdata", data_width_bits, _IN, "read data beat"),
        SignalSpec("rvalid", 1, _IN, "read data valid"),
    )
    return InterfaceSpec(name, ProtocolFamily.UNIFIED, signals)


def unified_reg(name: str = "u_reg", data_width_bits: int = 32) -> InterfaceSpec:
    """The unified 32-bit register control interface."""
    signals = (
        SignalSpec("addr", 32, _OUT, "register address"),
        SignalSpec("wdata", data_width_bits, _OUT, "write value"),
        SignalSpec("rdata", data_width_bits, _IN, "read value"),
        SignalSpec("wen", 1, _OUT, "write enable"),
        SignalSpec("ren", 1, _OUT, "read enable"),
        SignalSpec("ack", 1, _IN, "access acknowledged"),
    )
    return InterfaceSpec(name, ProtocolFamily.UNIFIED, signals)


def unified_irq(name: str = "u_irq", lanes: int = 1) -> InterfaceSpec:
    """Raw interrupt lines for latency-intensive signals."""
    signals = tuple(
        SignalSpec(f"irq_{index}", 1, _OUT, f"interrupt lane {index}") for index in range(lanes)
    )
    return InterfaceSpec(name, ProtocolFamily.UNIFIED, signals)


@dataclass(frozen=True)
class UnifiedPort:
    """A wrapper-produced port: a unified type plus its interface spec."""

    unified_type: UnifiedType
    spec: InterfaceSpec

    @property
    def data_width_bits(self) -> int:
        if self.unified_type in (UnifiedType.STREAM, UnifiedType.MEM_MAP):
            return self.spec.data_width_bits()
        if self.unified_type is UnifiedType.REG:
            return self.spec.signal("wdata").width
        return 1


def make_unified_port(unified_type: UnifiedType, data_width_bits: int = 512) -> UnifiedPort:
    """Factory for a unified port of the requested type and width."""
    builders = {
        UnifiedType.CLOCK: lambda: unified_clock(),
        UnifiedType.RESET: lambda: unified_reset(),
        UnifiedType.STREAM: lambda: unified_stream(data_width_bits=data_width_bits),
        UnifiedType.MEM_MAP: lambda: unified_mem_map(data_width_bits=data_width_bits),
        UnifiedType.REG: lambda: unified_reg(),
        UnifiedType.IRQ: lambda: unified_irq(),
    }
    return UnifiedPort(unified_type, builders[unified_type]())
