"""Measurement data types and computations used across the framework.

* :mod:`repro.metrics.resources` -- FPGA resource usage accounting
  (LUT/FF/BRAM/URAM/DSP) against device budgets;
* :mod:`repro.metrics.loc` -- development-workload (lines-of-code)
  inventories and reuse-rate computation;
* :mod:`repro.metrics.configs` -- configuration-item counting for
  interfaces and IP parameters;
* :mod:`repro.metrics.modifications` -- software-modification cost when
  migrating control programs across platforms.
"""

from repro.metrics.loc import LocInventory, Migration, reuse_rate
from repro.metrics.resources import ResourceBudget, ResourceUsage

__all__ = ["LocInventory", "Migration", "ResourceBudget", "ResourceUsage", "reuse_rate"]
