"""Configuration-item counting.

Two results depend on counting configuration items:

* Figure 3b counts the *disparity* in interfaces and configuration
  parameters between equivalent Xilinx and Intel IPs;
* Figure 12 counts how many configuration items a role must set with the
  native IP versus with Harmonia's role-oriented property subset.

Both are computed structurally from the IP models' parameter
inventories.
"""

from typing import Dict, Iterable, Mapping, Set, Tuple

from repro.hw.protocols.base import InterfaceSpec, disparity


def config_disparity(left: Mapping[str, object], right: Mapping[str, object]) -> int:
    """Parameters present in one IP's configuration but not the other's.

    Parameters sharing a name but holding different default values also
    count: they must be re-derived by hand for the new platform.
    """
    left_keys = set(left)
    right_keys = set(right)
    mismatched = len(left_keys.symmetric_difference(right_keys))
    for key in left_keys & right_keys:
        if left[key] != right[key]:
            mismatched += 1
    return mismatched


def interface_disparity(
    left: Iterable[InterfaceSpec], right: Iterable[InterfaceSpec]
) -> int:
    """Signal-level disparity between two IPs' port lists.

    Interfaces are paired greedily by protocol role (order given);
    unpaired interfaces contribute all their signals.
    """
    left_list = list(left)
    right_list = list(right)
    total = 0
    for index in range(max(len(left_list), len(right_list))):
        if index >= len(left_list):
            total += right_list[index].signal_count
        elif index >= len(right_list):
            total += left_list[index].signal_count
        else:
            total += disparity(left_list[index], right_list[index])
    return total


def simplification_factor(native_items: int, exposed_items: int) -> float:
    """How many times fewer items the tailored interface exposes."""
    if exposed_items <= 0:
        raise ValueError("exposed item count must be positive")
    return native_items / exposed_items
