"""Development-workload (lines-of-code) inventories.

The paper measures development workloads "by the ratio of hardware logic
codes ... after excluding the script-generated portions that can be
automated by vendor tools".  We model each module's hardware code as a
:class:`LocInventory` split by *how far the code travels* when the
module is re-targeted:

* ``common`` -- logic reused on any migration (RBB Ex-functions,
  protocol-independent state machines, unified-interface framing);
* ``vendor_specific`` -- logic reused across chips of the same vendor
  but redeveloped cross-vendor (IP-catalog glue, toolchain constraints);
* ``device_specific`` -- logic redeveloped on every new device
  (control/monitor hooks into hardware details, timing closure glue) --
  the paper notes "the redevelopment portions are located at the control
  and monitor logic, as their implementation often depends on hardware
  details";
* ``generated`` -- tool-emitted code (IP instantiation templates,
  constraint files), excluded from workload ratios exactly as the paper
  does.

Reuse rates (Figures 14/15) are then *computed* from which categories
survive a given migration, rather than asserted per figure.
"""

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping


class Migration(enum.Enum):
    """How far a module moves when re-targeted."""

    SAME_DEVICE = "same-device"
    CROSS_CHIP = "cross-chip"      # same vendor, new chip family (A <-> B)
    CROSS_VENDOR = "cross-vendor"  # different vendor (A <-> C)


@dataclass(frozen=True)
class LocInventory:
    """Lines of hardware code for one module, by reuse category."""

    common: int = 0
    vendor_specific: int = 0
    device_specific: int = 0
    generated: int = 0

    def __post_init__(self) -> None:
        for name in ("common", "vendor_specific", "device_specific", "generated"):
            if getattr(self, name) < 0:
                raise ValueError(f"LoC category {name!r} cannot be negative")

    @property
    def handcraft(self) -> int:
        """Manually written lines (what workload ratios count)."""
        return self.common + self.vendor_specific + self.device_specific

    @property
    def total(self) -> int:
        return self.handcraft + self.generated

    def reused_on(self, migration: Migration) -> int:
        """Handcraft lines that survive the given migration unchanged."""
        if migration is Migration.SAME_DEVICE:
            return self.handcraft
        if migration is Migration.CROSS_CHIP:
            return self.common + self.vendor_specific
        return self.common

    def redeveloped_on(self, migration: Migration) -> int:
        """Handcraft lines that must be rewritten for the migration."""
        return self.handcraft - self.reused_on(migration)

    def __add__(self, other: "LocInventory") -> "LocInventory":
        return LocInventory(
            self.common + other.common,
            self.vendor_specific + other.vendor_specific,
            self.device_specific + other.device_specific,
            self.generated + other.generated,
        )

    @staticmethod
    def total_of(inventories: Iterable["LocInventory"]) -> "LocInventory":
        result = LocInventory()
        for inventory in inventories:
            result = result + inventory
        return result


def reuse_rate(inventory: LocInventory, migration: Migration) -> float:
    """Fraction of handcraft code reused on ``migration``."""
    if inventory.handcraft == 0:
        raise ValueError("module has no handcraft code; reuse rate undefined")
    return inventory.reused_on(migration) / inventory.handcraft


def shell_fraction(shell: LocInventory, role: LocInventory) -> float:
    """Shell share of total handcraft workload (the Figure 3a metric)."""
    total = shell.handcraft + role.handcraft
    if total == 0:
        raise ValueError("no handcraft code in shell or role")
    return shell.handcraft / total


def aggregate_reuse(inventories: Mapping[str, LocInventory], migration: Migration) -> float:
    """Handcraft-weighted reuse rate across a set of modules."""
    total = LocInventory.total_of(inventories.values())
    return reuse_rate(total, migration)
