"""Software-modification cost when migrating across platforms.

The metric follows the paper's framing: every host-software line whose
register address, value, or ordering changes between two platforms is a
modification the user must make.  We compute it as the edit distance
(insertions + deletions around the longest common subsequence) between
the two operation traces, captured from real driver runs.
"""

from typing import List, Sequence, Tuple

from repro.hw.registers import _lcs_length


def trace_modifications(old: Sequence[Tuple], new: Sequence[Tuple]) -> int:
    """Lines touched migrating from trace ``old`` to trace ``new``."""
    old_list = list(old)
    new_list = list(new)
    lcs = _lcs_length(old_list, new_list)
    return (len(old_list) - lcs) + (len(new_list) - lcs)


def reduction_factor(register_mods: int, command_mods: int) -> float:
    """How many times fewer modifications the command interface needs.

    A migration that needs zero command-side modifications is reported
    against a floor of one line (the user always at least rebuilds),
    keeping the factor finite as the paper's 88-107x figures are.
    """
    return register_mods / max(command_mods, 1)
