"""Dynamic-power estimation from resource usage.

The paper notes that shell tailoring "not only provides more resources
for roles ... but also helps reduce dynamic power consumption".  This
module quantifies that with the standard activity-based model used by
vendor power estimators (XPE/EPE):

    P_dynamic = sum_kind  count_kind * unit_power_kind * toggle_rate
    P_total   = P_static(device) + P_dynamic

Unit powers are representative 16 nm-class values per element at the
reference clock; the *relations* (tailored < unified, Harmonia <
monolithic baselines) are what the tests pin down.
"""

from dataclasses import dataclass
from typing import Dict

from repro.errors import ConfigurationError
from repro.metrics.resources import ResourceUsage
from repro.platform.device import FpgaDevice

#: Dynamic power per active element at 100% toggle, 300 MHz reference
#: clock, in milliwatts (representative estimator coefficients).
UNIT_POWER_MW: Dict[str, float] = {
    "lut": 0.012,
    "ff": 0.004,
    "bram_36k": 3.6,
    "uram": 8.2,
    "dsp": 2.4,
}

#: Static (leakage) power per thousand LUTs of device capacity, mW.
STATIC_MW_PER_KLUT = 9.0

REFERENCE_CLOCK_MHZ = 300.0


@dataclass(frozen=True)
class PowerEstimate:
    """Static + dynamic power for one design on one device."""

    static_mw: float
    dynamic_mw: float

    @property
    def total_mw(self) -> float:
        return self.static_mw + self.dynamic_mw

    @property
    def total_w(self) -> float:
        return self.total_mw / 1_000.0


def dynamic_power_mw(
    usage: ResourceUsage,
    toggle_rate: float = 0.25,
    clock_mhz: float = REFERENCE_CLOCK_MHZ,
) -> float:
    """Activity-based dynamic power of a resource footprint."""
    if not 0.0 < toggle_rate <= 1.0:
        raise ConfigurationError("toggle rate must be in (0, 1]")
    if clock_mhz <= 0:
        raise ConfigurationError("clock must be positive")
    scale = toggle_rate * clock_mhz / REFERENCE_CLOCK_MHZ
    return sum(
        getattr(usage, kind) * unit * scale for kind, unit in UNIT_POWER_MW.items()
    )


def estimate(
    device: FpgaDevice,
    usage: ResourceUsage,
    toggle_rate: float = 0.25,
    clock_mhz: float = REFERENCE_CLOCK_MHZ,
) -> PowerEstimate:
    """Full estimate: device leakage + the design's dynamic power."""
    device.budget.check_fits(usage, design="power-estimated design")
    static = device.budget.lut / 1_000.0 * STATIC_MW_PER_KLUT
    return PowerEstimate(
        static_mw=static,
        dynamic_mw=dynamic_power_mw(usage, toggle_rate, clock_mhz),
    )


def tailoring_power_saving_mw(
    device: FpgaDevice,
    unified: ResourceUsage,
    tailored: ResourceUsage,
    toggle_rate: float = 0.25,
) -> float:
    """Dynamic power the tailored shell saves over the unified one."""
    return (dynamic_power_mw(unified, toggle_rate)
            - dynamic_power_mw(tailored, toggle_rate))
