"""FPGA resource accounting.

Every behavioural module carries a :class:`ResourceUsage` footprint;
devices carry a :class:`ResourceBudget`.  Tailoring results (Figure 11),
overhead results (Figure 16), and the framework comparison (Figure 18a)
are all computed by summing footprints of the modules a given shell
actually instantiates and dividing by the device budget.
"""

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.errors import ResourceExhaustedError

#: The resource classes tracked, in the order figures report them.
RESOURCE_KINDS = ("lut", "ff", "bram_36k", "uram", "dsp")


@dataclass(frozen=True)
class ResourceUsage:
    """A resource footprint (absolute element counts)."""

    lut: int = 0
    ff: int = 0
    bram_36k: int = 0
    uram: int = 0
    dsp: int = 0

    def __post_init__(self) -> None:
        for kind in RESOURCE_KINDS:
            if getattr(self, kind) < 0:
                raise ValueError(f"resource count {kind!r} cannot be negative")

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            *(getattr(self, kind) + getattr(other, kind) for kind in RESOURCE_KINDS)
        )

    def __sub__(self, other: "ResourceUsage") -> "ResourceUsage":
        return ResourceUsage(
            *(max(getattr(self, kind) - getattr(other, kind), 0) for kind in RESOURCE_KINDS)
        )

    def scaled(self, factor: float) -> "ResourceUsage":
        """A footprint scaled by ``factor`` (rounded to whole elements)."""
        return ResourceUsage(
            *(int(round(getattr(self, kind) * factor)) for kind in RESOURCE_KINDS)
        )

    def as_dict(self) -> Dict[str, int]:
        return {kind: getattr(self, kind) for kind in RESOURCE_KINDS}

    @property
    def is_zero(self) -> bool:
        return all(getattr(self, kind) == 0 for kind in RESOURCE_KINDS)

    @staticmethod
    def total(usages: Iterable["ResourceUsage"]) -> "ResourceUsage":
        result = ResourceUsage()
        for usage in usages:
            result = result + usage
        return result


@dataclass(frozen=True)
class ResourceBudget:
    """Total resources available on a device."""

    lut: int
    ff: int
    bram_36k: int
    uram: int
    dsp: int

    def utilisation(self, usage: ResourceUsage) -> Dict[str, float]:
        """Fraction of the budget consumed, per resource kind.

        Kinds the device does not have at all (budget 0) report 0.0 when
        unused; using a resource the device lacks raises
        :class:`ResourceExhaustedError`.
        """
        result: Dict[str, float] = {}
        for kind in RESOURCE_KINDS:
            budget = getattr(self, kind)
            used = getattr(usage, kind)
            if budget == 0:
                if used:
                    raise ResourceExhaustedError(
                        f"design uses {used} {kind} but device has none"
                    )
                result[kind] = 0.0
            else:
                result[kind] = used / budget
        return result

    def check_fits(self, usage: ResourceUsage, design: str = "design") -> None:
        """Raise :class:`ResourceExhaustedError` if ``usage`` overflows."""
        for kind, fraction in self.utilisation(usage).items():
            if fraction > 1.0:
                raise ResourceExhaustedError(
                    f"{design} needs {getattr(usage, kind)} {kind} "
                    f"but device offers {getattr(self, kind)}"
                )

    def headroom(self, usage: ResourceUsage) -> ResourceUsage:
        """Resources left for the role after ``usage`` is placed."""
        self.check_fits(usage)
        return ResourceUsage(
            *(getattr(self, kind) - getattr(usage, kind) for kind in RESOURCE_KINDS)
        )


def utilisation_percent(usage: ResourceUsage, budget: ResourceBudget) -> Dict[str, float]:
    """Utilisation as percentages (convenience for figure output)."""
    return {kind: fraction * 100.0 for kind, fraction in budget.utilisation(usage).items()}


def reduction_fraction(before: ResourceUsage, after: ResourceUsage) -> Dict[str, float]:
    """Per-kind fractional reduction going from ``before`` to ``after``."""
    result: Dict[str, float] = {}
    for kind in RESOURCE_KINDS:
        base = getattr(before, kind)
        if base == 0:
            result[kind] = 0.0
        else:
            result[kind] = (base - getattr(after, kind)) / base
    return result
