"""Telemetry subsystem: exporters, flight recorder, profiler, SLO monitor.

This package is the production-observability layer on top of the PR-1
runtime (:mod:`repro.runtime`) -- the simulation-side analogue of the
monitoring half the paper dedicates in every RBB's reusable logic
(§3.3.1):

* :mod:`repro.obs.chrome` -- Chrome/Perfetto ``trace_event`` JSON from
  :class:`~repro.runtime.trace.TraceBus` records;
* :mod:`repro.obs.prometheus` -- Prometheus text-format exposition of a
  :class:`~repro.runtime.metrics.MetricsRegistry`;
* :mod:`repro.obs.recorder` -- the streaming flight recorder (bounded
  ring buffer + JSONL sink, O(1) memory for fleet-scale traces);
* :mod:`repro.obs.profiler` -- wall-clock self-profiling of the
  simulator's own hot phases (strictly separate from sim-time);
* :mod:`repro.obs.slo` -- declarative SLO specs evaluated against the
  metrics registry, with violations emitted as trace instants;
* :mod:`repro.obs.tracectx` -- request-scoped trace contexts and the
  plan-order stitcher that merges per-worker span fragments into one
  connected, deterministic tree;
* :mod:`repro.obs.window` -- sliding-window serve telemetry: rolling
  rates, exponential-bucket latency histograms, SLO burn rates;
* :mod:`repro.obs.analyze` -- trace analytics over exported JSONL:
  critical-path extraction, flame aggregation, two-trace diffing.

Submodules are loaded lazily (PEP 562): the profiler's ``phase`` hook
is imported by hot paths deep in :mod:`repro.sim`, and an eager
``__init__`` here would close an import cycle back through
:mod:`repro.runtime`.  ``from repro.obs import X`` still works for
every name below.
"""

import importlib
from typing import List

_EXPORTS = {
    # chrome
    "chrome_trace_events": "repro.obs.chrome",
    "export_chrome_json": "repro.obs.chrome",
    "write_chrome_json": "repro.obs.chrome",
    # prometheus
    "to_prometheus_text": "repro.obs.prometheus",
    "write_prometheus_text": "repro.obs.prometheus",
    # recorder
    "FlightRecorder": "repro.obs.recorder",
    # profiler
    "SelfProfiler": "repro.obs.profiler",
    "PhaseStats": "repro.obs.profiler",
    "active_profiler": "repro.obs.profiler",
    "phase": "repro.obs.profiler",
    # tracectx
    "TraceContext": "repro.obs.tracectx",
    "sanitise_trace_id": "repro.obs.tracectx",
    "stitch_spans": "repro.obs.tracectx",
    # window
    "ExponentialBuckets": "repro.obs.window",
    "HistogramSnapshot": "repro.obs.window",
    "TelemetryHub": "repro.obs.window",
    "WindowedCounter": "repro.obs.window",
    "WindowedHistogram": "repro.obs.window",
    # analyze
    "SpanNode": "repro.obs.analyze",
    "TraceAnalysis": "repro.obs.analyze",
    "analyze_trace": "repro.obs.analyze",
    "diff_traces": "repro.obs.analyze",
    "load_trace": "repro.obs.analyze",
    "parse_trace": "repro.obs.analyze",
    # slo
    "SloMonitor": "repro.obs.slo",
    "SloReport": "repro.obs.slo",
    "SloSpec": "repro.obs.slo",
    "SloViolation": "repro.obs.slo",
    "default_fleet_slos": "repro.obs.slo",
    "load_slo_specs": "repro.obs.slo",
    "registry_from_sweep": "repro.obs.slo",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(_EXPORTS))
