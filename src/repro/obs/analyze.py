"""Trace analytics over exported JSONL: critical path, flame, diff.

A stitched request trace (:mod:`repro.obs.tracectx`) or any CLI trace
export is a span tree; this module answers the three questions an
operator actually asks of one:

* **where did the time go?** -- :func:`TraceAnalysis.critical_path`
  walks from each root to the child whose *end* is latest, yielding
  the chain of spans that bounds the request's wall time.  Shortening
  anything off this path cannot shorten the request.
* **what dominates in aggregate?** -- :func:`TraceAnalysis.flame`
  folds all spans by name into (calls, total, self) rows, where self
  time is a span's duration minus its children's -- the flame-graph
  ordering without the SVG.
* **what changed?** -- :func:`diff_traces` joins two analyses by span
  name and ranks by absolute total-time delta, the first tool to reach
  for when a perf PR moves a benchmark.

Input is tolerant by design: ``B`` spans missing their ``E`` (an
interrupted run) close at the trace's final timestamp, unknown parents
make a span a root, and blank lines are skipped.  All outputs are
deterministically ordered, so analytics over byte-identical traces are
byte-identical too.
"""

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError


@dataclass
class SpanNode:
    """One reconstructed span (or instant) in the trace tree."""

    span_id: int
    name: str
    start_ps: int
    end_ps: Optional[int]
    kind: str                      # "span" (B/E), "complete" (X), "instant"
    parent_id: Optional[int]
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)
    closed: bool = True

    @property
    def duration_ps(self) -> int:
        if self.end_ps is None:
            return 0
        return max(0, self.end_ps - self.start_ps)

    @property
    def self_ps(self) -> int:
        child_total = sum(child.duration_ps for child in self.children)
        return max(0, self.duration_ps - child_total)


def parse_trace(text: str) -> List[Dict[str, Any]]:
    """JSONL text -> record dicts (blank lines skipped, loud on junk)."""
    records = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace line {number} is not valid JSON: {exc}")
        if not isinstance(record, dict) or "type" not in record:
            raise ConfigurationError(
                f"trace line {number} is not a trace record")
        records.append(record)
    return records


def load_trace(path: str) -> List[Dict[str, Any]]:
    try:
        with open(path, encoding="utf-8") as handle:
            return parse_trace(handle.read())
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace {path!r}: {exc}")


class TraceAnalysis:
    """The span forest plus the derived views."""

    def __init__(self, records: Iterable[Dict[str, Any]]) -> None:
        nodes: Dict[int, SpanNode] = {}
        order: List[int] = []
        final_ts = 0
        for record in records:
            rtype = record["type"]
            ts = int(record.get("ts_ps", 0))
            if rtype == "E":
                node = nodes.get(record["id"])
                if node is not None:
                    node.end_ps = ts
                    node.closed = True
                final_ts = max(final_ts, ts)
                continue
            if rtype == "B":
                node = SpanNode(
                    span_id=record["id"], name=record["name"],
                    start_ps=ts, end_ps=None, kind="span",
                    parent_id=record.get("parent"),
                    attrs=record.get("attrs", {}), closed=False)
            elif rtype == "X":
                end = ts + int(record.get("dur_ps", 0))
                node = SpanNode(
                    span_id=record["id"], name=record["name"],
                    start_ps=ts, end_ps=end, kind="complete",
                    parent_id=record.get("parent"),
                    attrs=record.get("attrs", {}))
                final_ts = max(final_ts, end)
            elif rtype == "I":
                node = SpanNode(
                    span_id=record["id"], name=record["name"],
                    start_ps=ts, end_ps=ts, kind="instant",
                    parent_id=record.get("parent"),
                    attrs=record.get("attrs", {}))
            else:
                continue
            final_ts = max(final_ts, ts)
            nodes[node.span_id] = node
            order.append(node.span_id)

        self.roots: List[SpanNode] = []
        for span_id in order:
            node = nodes[span_id]
            if not node.closed and node.end_ps is None:
                # Interrupted span: close at the trace's final instant,
                # the same convention as the Chrome exporter.
                node.end_ps = final_ts
            parent = (nodes.get(node.parent_id)
                      if node.parent_id is not None else None)
            if parent is None or parent is node:
                self.roots.append(node)
            else:
                parent.children.append(node)
        self.nodes = nodes
        self.final_ts = final_ts

    def __len__(self) -> int:
        return len(self.nodes)

    def critical_path(self) -> List[SpanNode]:
        """Root-to-leaf chain through the latest-ending children.

        With multiple roots (a forest, e.g. ``sweep --trace-out``'s
        per-point concatenation) the walk starts from the root that
        ends last -- the one bounding the whole artifact.
        """
        candidates = [node for node in self.roots if node.kind != "instant"]
        if not candidates:
            return []
        node = max(candidates,
                   key=lambda n: (n.end_ps or 0, -n.start_ps, -n.span_id))
        path = [node]
        while True:
            spans = [child for child in node.children
                     if child.kind != "instant"]
            if not spans:
                return path
            node = max(spans,
                       key=lambda n: (n.end_ps or 0, -n.start_ps,
                                      -n.span_id))
            path.append(node)

    def flame(self, top: Optional[int] = None
              ) -> List[Tuple[str, int, int, int]]:
        """(name, calls, total_ps, self_ps) rows, self-time descending."""
        folded: Dict[str, List[int]] = {}
        for node in self.nodes.values():
            if node.kind == "instant":
                continue
            row = folded.setdefault(node.name, [0, 0, 0])
            row[0] += 1
            row[1] += node.duration_ps
            row[2] += node.self_ps
        rows = sorted(
            ((name, calls, total, self_ps)
             for name, (calls, total, self_ps) in folded.items()),
            key=lambda row: (-row[3], -row[2], row[0]))
        return rows[:top] if top else rows

    def to_json(self) -> Dict[str, Any]:
        return {
            "spans": len(self.nodes),
            "roots": len(self.roots),
            "final_ts_ps": self.final_ts,
            "critical_path": [
                {"name": node.name, "start_ps": node.start_ps,
                 "end_ps": node.end_ps, "duration_ps": node.duration_ps,
                 "self_ps": node.self_ps}
                for node in self.critical_path()
            ],
            "flame": [
                {"name": name, "calls": calls, "total_ps": total,
                 "self_ps": self_ps}
                for name, calls, total, self_ps in self.flame()
            ],
        }


def analyze_trace(records: Iterable[Dict[str, Any]]) -> TraceAnalysis:
    return TraceAnalysis(records)


def diff_traces(before: TraceAnalysis, after: TraceAnalysis,
                top: Optional[int] = None
                ) -> List[Dict[str, Any]]:
    """Join two flame folds by name, ranked by |total delta| descending."""
    fold_a = {name: (calls, total, self_ps)
              for name, calls, total, self_ps in before.flame()}
    fold_b = {name: (calls, total, self_ps)
              for name, calls, total, self_ps in after.flame()}
    rows = []
    for name in sorted(set(fold_a) | set(fold_b)):
        calls_a, total_a, self_a = fold_a.get(name, (0, 0, 0))
        calls_b, total_b, self_b = fold_b.get(name, (0, 0, 0))
        rows.append({
            "name": name,
            "calls_before": calls_a, "calls_after": calls_b,
            "total_before_ps": total_a, "total_after_ps": total_b,
            "total_delta_ps": total_b - total_a,
            "self_delta_ps": self_b - self_a,
        })
    rows.sort(key=lambda row: (-abs(row["total_delta_ps"]), row["name"]))
    return rows[:top] if top else rows
