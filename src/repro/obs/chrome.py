"""Chrome / Perfetto ``trace_event`` export of TraceBus records.

The bus's native JSONL already *resembles* the Chrome trace-event
vocabulary (B/E/X/I record types); this module finishes the mapping so
a trace opens directly in ``chrome://tracing`` or https://ui.perfetto.dev:

* **pid** -- one process row per trace *domain*: the ``device`` (or
  ``domain``) attribute of a span when present, else the default
  process.  ``process_name`` metadata rows label each pid.
* **tid** -- one thread row per subsystem, derived from the first
  dot-segment of the record name (``engine.dispatch`` -> ``engine``,
  ``fleet.round-robin`` -> ``fleet``), labelled with ``thread_name``
  metadata rows.  A span's ``E`` lands on the same pid/tid as its
  ``B`` (resolved by span id), so every track is balanced.
* **ph/ts/dur** -- B/E/X/I map to the phases of the same name;
  timestamps convert from integer picoseconds to the microseconds the
  format expects (exact: ``ts = ts_ps / 1e6`` keeps picosecond
  resolution as a fraction).

The export is a *pure function* of the record list: events are sorted
by ``(ts, emission order)``, ids and track numbers are assigned in
first-seen order, and serialisation uses sorted keys -- two identical
runs export byte-identical JSON.  Unbalanced ``B`` records (a run
interrupted mid-span) are closed with synthetic ``E`` events at the
trace's final timestamp so the output always validates.
"""

import json
import os
import tempfile
from typing import Any, Dict, Iterable, List, Tuple, Union

from repro.runtime.trace import TraceBus

#: Picoseconds per microsecond (the trace_event unit); conversion uses
#: division so e.g. 5 ps lands at exactly ``5e-06`` us.
_PS_PER_US = 1e6

#: Default process label when a record names no device/domain.
DEFAULT_PROCESS = "sim"


def _record_process(record: Dict[str, Any]) -> str:
    attrs = record.get("attrs")
    if attrs:
        for key in ("device", "domain"):
            value = attrs.get(key)
            if isinstance(value, str) and value:
                return value
    return DEFAULT_PROCESS


def _record_thread(record: Dict[str, Any]) -> str:
    name = record.get("name", "")
    head, _, _ = name.partition(".")
    return head or name or "trace"


class _TrackMapper:
    """First-seen-order pid/tid assignment (deterministic by design)."""

    def __init__(self) -> None:
        self._pids: Dict[str, int] = {}
        self._tids: Dict[Tuple[int, str], int] = {}

    def pid(self, process: str) -> int:
        pid = self._pids.get(process)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[process] = pid
        return pid

    def tid(self, pid: int, thread: str) -> int:
        key = (pid, thread)
        tid = self._tids.get(key)
        if tid is None:
            tid = sum(1 for other_pid, _ in self._tids if other_pid == pid) + 1
            self._tids[key] = tid
        return tid

    def metadata_events(self) -> List[Dict[str, Any]]:
        events: List[Dict[str, Any]] = []
        for process, pid in self._pids.items():
            events.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "ts": 0, "args": {"name": process},
            })
        for (pid, thread), tid in self._tids.items():
            events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "ts": 0, "args": {"name": thread},
            })
        return events


def chrome_trace_events(
    records: Iterable[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Convert TraceBus records into a ``trace_event`` array (list of dicts).

    Metadata (``M``) events come first, then the converted B/E/X/I
    events sorted by timestamp (stable, so same-ts events keep emission
    order and a ``B`` always precedes its ``E``).
    """
    mapper = _TrackMapper()
    events: List[Tuple[float, int, Dict[str, Any]]] = []
    open_tracks: Dict[int, Tuple[int, int, str]] = {}
    last_ts = 0.0
    order = 0
    for record in records:
        kind = record["type"]
        ts = record["ts_ps"] / _PS_PER_US
        if kind == "E":
            # An end event inherits its begin's track; an orphan end
            # (begin dropped by a ring buffer) maps like any record.
            pid, tid, _name = open_tracks.pop(
                record["id"],
                (mapper.pid(_record_process(record)), None, record["name"]),
            )
            if tid is None:
                tid = mapper.tid(pid, _record_thread(record))
        else:
            pid = mapper.pid(_record_process(record))
            tid = mapper.tid(pid, _record_thread(record))
        event: Dict[str, Any] = {
            "ph": kind, "name": record["name"], "ts": ts,
            "pid": pid, "tid": tid,
        }
        if kind == "X":
            event["dur"] = record["dur_ps"] / _PS_PER_US
        if kind == "I":
            event["s"] = "t"
        args: Dict[str, Any] = {"span_id": record["id"]}
        if "parent" in record:
            args["parent"] = record["parent"]
        if "attrs" in record:
            args.update(record["attrs"])
        event["args"] = args
        if kind == "B":
            open_tracks[record["id"]] = (pid, tid, record["name"])
        end_ts = ts + event.get("dur", 0.0)
        if end_ts > last_ts:
            last_ts = end_ts
        events.append((ts, order, event))
        order += 1
    # Close any span the run left open, so B/E counts always balance.
    for span_id, (pid, tid, name) in open_tracks.items():
        events.append((last_ts, order, {
            "ph": "E", "name": name, "ts": last_ts, "pid": pid, "tid": tid,
            "args": {"span_id": span_id, "synthetic_end": True},
        }))
        order += 1
    events.sort(key=lambda item: (item[0], item[1]))
    return mapper.metadata_events() + [event for _ts, _order, event in events]


def export_chrome_json(
    source: Union[TraceBus, Iterable[Dict[str, Any]]],
) -> str:
    """Serialise a bus (or raw record list) as a ``trace_event`` JSON array.

    Keys are sorted and separators fixed; identical runs export
    byte-identical text.
    """
    records = source.records if isinstance(source, TraceBus) else source
    events = chrome_trace_events(records)
    return json.dumps(events, sort_keys=True, separators=(",", ":")) + "\n"


def write_chrome_json(
    source: Union[TraceBus, Iterable[Dict[str, Any]]], path: str,
) -> int:
    """Atomically write the Chrome export; returns the event count."""
    records = source.records if isinstance(source, TraceBus) else source
    events = chrome_trace_events(records)
    text = json.dumps(events, sort_keys=True, separators=(",", ":")) + "\n"
    directory = os.path.dirname(os.path.abspath(path))
    handle = tempfile.NamedTemporaryFile(
        "w", dir=directory, prefix=os.path.basename(path) + ".",
        suffix=".tmp", delete=False, encoding="utf-8", newline="\n",
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return len(events)
