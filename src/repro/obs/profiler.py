"""Wall-clock self-profiler for the simulator's own hot phases.

Sim-time (integer picoseconds on the :class:`~repro.sim.engine.Simulator`
clock) tells you what the *modelled hardware* did; it says nothing about
where the *simulator process* spends its wall-clock.  This module is the
second ledger: named phase timers around the stack's hot regions --
the engine dispatch loop, the vector kernel, sweep point execution,
fleet policy evaluation, the build farm's planning and per-step
execution (``buildfarm.plan`` / ``buildfarm.build`` /
``buildfarm.step``) -- aggregated into a cumulative/self-time table
(``python -m repro.cli profile``).

The two ledgers never mix: the profiler reads ``time.perf_counter``
only, touches no simulation clock, and emits nothing onto the trace
bus.

Instrumentation sites call :func:`phase`::

    from repro.obs.profiler import phase

    with phase("engine.run"):
        ...hot loop...

With no profiler active, :func:`phase` returns a shared no-op context
manager -- the disabled cost is one module-global read per call, which
is why the hook sits at phase granularity (one ``run()``, one policy,
one train) and never inside per-event loops.

This module imports only the standard library.  Hot paths deep in
:mod:`repro.sim` import it, so any dependency on :mod:`repro.runtime`
here would close an import cycle.
"""

import time
from typing import Callable, Dict, List, Optional


class PhaseStats:
    """Aggregate wall-clock numbers for one phase name."""

    __slots__ = ("name", "calls", "cumulative_s", "self_s")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.cumulative_s = 0.0
        self.self_s = 0.0

    def __repr__(self) -> str:
        return (f"PhaseStats({self.name!r}, calls={self.calls}, "
                f"cum={self.cumulative_s:.6f}s, self={self.self_s:.6f}s)")


class _Phase:
    """One live phase activation (context manager)."""

    __slots__ = ("_profiler", "_name", "_start", "_child_s")

    def __init__(self, profiler: "SelfProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._child_s = 0.0
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._profiler._stack.append(self)
        self._start = self._profiler._clock()
        return self

    def __exit__(self, *_exc: object) -> None:
        self._profiler._finish(self, self._profiler._clock() - self._start)


class _NullPhase:
    """Shared no-op phase used while no profiler is active."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *_exc: object) -> None:
        return None


_NULL_PHASE = _NullPhase()

#: The process-wide active profiler, if any (see :meth:`SelfProfiler.activate`).
_ACTIVE: Optional["SelfProfiler"] = None


class SelfProfiler:
    """Aggregates nested wall-clock phases into per-name statistics.

    * **cumulative** time counts a phase's full wall-clock, children
      included; recursive re-entry of the same name is not double
      counted (only the outermost activation contributes).
    * **self** time is cumulative minus the time spent in child phases,
      so the self-time column sums to total profiled wall-clock.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._stats: Dict[str, PhaseStats] = {}
        self._stack: List[_Phase] = []

    # --- recording ----------------------------------------------------------

    def phase(self, name: str) -> _Phase:
        """A context manager timing one activation of ``name``."""
        return _Phase(self, name)

    def _finish(self, frame: _Phase, elapsed_s: float) -> None:
        stack = self._stack
        if not stack or stack[-1] is not frame:
            raise RuntimeError(
                f"profiler phase {frame._name!r} exited out of order"
            )
        stack.pop()
        name = frame._name
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = PhaseStats(name)
        stats.calls += 1
        stats.self_s += elapsed_s - frame._child_s
        recursive = any(outer._name == name for outer in stack)
        if not recursive:
            stats.cumulative_s += elapsed_s
        if stack:
            stack[-1]._child_s += elapsed_s

    # --- activation ---------------------------------------------------------

    def activate(self) -> "SelfProfiler":
        """Install this profiler as the process-wide :func:`phase` target."""
        global _ACTIVE
        if _ACTIVE is not None and _ACTIVE is not self:
            raise RuntimeError("another SelfProfiler is already active")
        _ACTIVE = self
        return self

    def deactivate(self) -> None:
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = None

    def __enter__(self) -> "SelfProfiler":
        return self.activate()

    def __exit__(self, *_exc: object) -> None:
        self.deactivate()

    # --- reporting ----------------------------------------------------------

    def stats(self, name: str) -> Optional[PhaseStats]:
        return self._stats.get(name)

    @property
    def total_s(self) -> float:
        """Total profiled wall-clock (the sum of every self-time)."""
        return sum(stats.self_s for stats in self._stats.values())

    def table(self, top: int = 10) -> List[PhaseStats]:
        """The ``top`` phases by cumulative time (ties break by name)."""
        ranked = sorted(self._stats.values(),
                        key=lambda stats: (-stats.cumulative_s, stats.name))
        return ranked[: top if top > 0 else None]

    def to_json(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                "calls": stats.calls,
                "cumulative_s": stats.cumulative_s,
                "self_s": stats.self_s,
            }
            for name, stats in sorted(self._stats.items())
        }

    def reset(self) -> None:
        if self._stack:
            raise RuntimeError("cannot reset a profiler with open phases")
        self._stats.clear()


def active_profiler() -> Optional[SelfProfiler]:
    """The profiler :func:`phase` currently reports to, if any."""
    return _ACTIVE


def phase(name: str):
    """Time ``name`` against the active profiler (no-op when none)."""
    profiler = _ACTIVE
    if profiler is None:
        return _NULL_PHASE
    return profiler.phase(name)
