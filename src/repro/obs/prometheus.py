"""Prometheus text-format exposition of a MetricsRegistry.

Maps the registry's dot-path tree onto the exposition format v0.0.4
(the ``text/plain`` scrape body every Prometheus server ingests):

* the **last** dot segment becomes the metric family name (sanitised,
  ``harmonia_`` prefixed); the remaining prefix becomes a ``path``
  label, so ``fleet.round-robin.p99_ns`` lands as
  ``harmonia_p99_ns{path="fleet.round-robin"}`` -- one family per
  measurement kind, one labelled series per subsystem that reports it;
* :class:`~repro.sim.stats.Counter` -> ``counter`` (``_total`` suffix,
  per convention);
* :class:`~repro.runtime.metrics.Gauge` -> ``gauge``;
* :class:`~repro.sim.stats.LatencyStats` -> a ``summary`` family with
  exact ``quantile`` series (p50/p90/p99, nearest-rank over the stored
  samples) plus ``_sum``/``_count``; values stay in picoseconds, the
  registry's native unit (family names carry their unit suffix);
* windowed histograms (the optional ``histograms`` mapping of dot-path
  -> :class:`~repro.obs.window.HistogramSnapshot`) -> native
  ``histogram`` families: cumulative ``le``-labelled ``_bucket``
  series, the ``+Inf`` bucket, and ``_sum``/``_count`` -- what the
  serving daemon's sliding-window telemetry scrapes as.

Label values are escaped per the text-format spec (backslash, newline,
double-quote), so registry paths and telemetry labels containing any
byte still emit well-formed exposition.

Families are emitted in sorted-name order, each with exactly one
``# HELP`` and one ``# TYPE`` line; registry paths are unique, so the
(family, labels) series set is duplicate-free by construction -- the
shape tests pin both properties.  Output is a pure function of the
registry contents: identical snapshots expose byte-identical text.
"""

import os
import re
import tempfile
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.runtime.metrics import Gauge, MetricsRegistry
from repro.sim.stats import Counter, LatencyStats

#: Every family name gets this prefix (the exporter's namespace).
NAMESPACE = "harmonia"

#: Summary quantiles exposed for every latency histogram.
QUANTILES: Tuple[float, ...] = (0.5, 0.9, 0.99)

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitise(segment: str) -> str:
    name = _INVALID_METRIC_CHARS.sub("_", segment)
    if name and name[0].isdigit():
        name = "_" + name
    return name or "_"


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    # Integers expose without a trailing ``.0`` (Prometheus accepts
    # both; the integer form diffs cleaner and matches counter idiom).
    if isinstance(value, int) or (isinstance(value, float)
                                  and value.is_integer()):
        return str(int(value))
    return repr(float(value))


class _Family:
    """One metric family: HELP/TYPE header plus its labelled series."""

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        self.name = name
        self.kind = kind
        self.help_text = help_text
        self.lines: List[str] = []

    def render(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
            *self.lines,
        ]


def _labels(prefix: str, extra: str = "") -> str:
    parts = []
    if prefix:
        parts.append(f'path="{_escape_label(prefix)}"')
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def to_prometheus_text(registry: MetricsRegistry,
                       histograms: Optional[Mapping[str, Any]] = None
                       ) -> str:
    """The whole registry as one exposition-format scrape body.

    ``histograms`` adds native ``histogram`` families from snapshot
    objects with ``bounds`` / ``cumulative`` / ``count`` / ``sum``
    attributes (duck-typed so :mod:`repro.obs.window` need not import
    here); keys are dot-paths named like registry paths, so the same
    last-segment/``path``-label mapping applies.
    """
    families: Dict[str, _Family] = {}

    def family(base: str, kind: str, help_text: str) -> _Family:
        name = f"{NAMESPACE}_{base}"
        existing = families.get(name)
        if existing is not None and existing.kind != kind:
            # Two registry paths share a last segment but not a metric
            # kind; keep both by suffixing the newcomer's kind.
            name = f"{name}_{kind}"
        found = families.get(name)
        if found is None:
            found = families[name] = _Family(name, kind, help_text)
        return found

    for path in registry.paths():
        metric = registry.get(path)
        prefix, _, leaf = path.rpartition(".")
        base = _sanitise(leaf)
        if isinstance(metric, Counter):
            fam = family(
                f"{base}_total", "counter",
                f"Counter '{leaf}' from the Harmonia metrics registry.",
            )
            fam.lines.append(
                f"{fam.name}{_labels(prefix)} {_format_value(metric.value)}")
        elif isinstance(metric, Gauge):
            fam = family(
                base, "gauge",
                f"Gauge '{leaf}' from the Harmonia metrics registry.",
            )
            fam.lines.append(
                f"{fam.name}{_labels(prefix)} {_format_value(metric.value)}")
        elif isinstance(metric, LatencyStats):
            fam = family(
                base, "summary",
                f"Latency summary '{leaf}' (picoseconds) from the "
                f"Harmonia metrics registry.",
            )
            count = metric.count
            if count:
                for quantile in QUANTILES:
                    quantile_label = 'quantile="%g"' % quantile
                    fam.lines.append(
                        f"{fam.name}{_labels(prefix, quantile_label)} "
                        f"{_format_value(metric.percentile_ps(quantile))}"
                    )
                total = metric.mean_ps * count
            else:
                total = 0.0
            fam.lines.append(
                f"{fam.name}_sum{_labels(prefix)} {_format_value(total)}")
            fam.lines.append(
                f"{fam.name}_count{_labels(prefix)} {count}")

    for path in sorted(histograms or {}):
        snapshot = histograms[path]
        prefix, _, leaf = path.rpartition(".")
        fam = family(
            _sanitise(leaf), "histogram",
            f"Windowed histogram '{leaf}' (picoseconds) from the "
            f"Harmonia serve telemetry.",
        )
        for bound, seen in zip(snapshot.bounds, snapshot.cumulative):
            bound_label = f'le="{_format_value(bound)}"'
            fam.lines.append(
                f"{fam.name}_bucket{_labels(prefix, bound_label)} {seen}")
        inf_label = 'le="+Inf"'
        fam.lines.append(
            f"{fam.name}_bucket{_labels(prefix, inf_label)} "
            f"{snapshot.count}")
        fam.lines.append(
            f"{fam.name}_sum{_labels(prefix)} "
            f"{_format_value(snapshot.sum)}")
        fam.lines.append(
            f"{fam.name}_count{_labels(prefix)} {snapshot.count}")

    lines: List[str] = []
    for name in sorted(families):
        lines.extend(families[name].render())
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus_text(registry: MetricsRegistry, path: str) -> int:
    """Atomically write the exposition text; returns the line count."""
    text = to_prometheus_text(registry)
    directory = os.path.dirname(os.path.abspath(path))
    handle = tempfile.NamedTemporaryFile(
        "w", dir=directory, prefix=os.path.basename(path) + ".",
        suffix=".tmp", delete=False, encoding="utf-8", newline="\n",
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except BaseException:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise
    return text.count("\n")
