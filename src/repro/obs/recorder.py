"""Streaming flight recorder: O(1)-memory tracing for fleet-scale runs.

An unbounded :class:`~repro.runtime.trace.TraceBus` keeps every record
resident, which makes tracing a 1M-flow fleet run a memory hazard.  The
:class:`FlightRecorder` combines the bus's two containment features
into the operator-facing tool:

* it attaches a **streaming JSONL sink**, so every record is written
  through to disk the moment it is emitted (byte-identical to what
  :meth:`TraceBus.export_jsonl` would have produced on an unbounded
  bus -- the serialiser is literally shared);
* it optionally applies a **ring-buffer cap** (``ring=N``), so the bus
  keeps only the last N records resident -- the black-box-recorder
  view for post-mortems -- while the sink still captures everything.

The on-disk file is finalised atomically: records stream into
``<path>.tmp`` (UTF-8, ``\\n`` newlines) and ``os.replace`` moves it
into place on :meth:`close`, so an interrupted run leaves the previous
trace (or nothing), never a torn file.  Records already resident on the
bus when the recorder attaches are written first, so attach-time is
invisible in the output.

Usage::

    context = SimContext(name="fleet", trace=True)
    with FlightRecorder(context.trace, "fleet.jsonl", ring=4096):
        FleetSimulation(spec, context=context).run()
    # fleet.jsonl holds the full trace; the bus holds the last 4096.
"""

import os
from typing import Optional

from repro.runtime.trace import TraceBus, dumps_record


class FlightRecorder:
    """Streams a TraceBus to a JSONL file with an optional residency cap."""

    def __init__(self, bus: TraceBus, path: str,
                 ring: Optional[int] = None) -> None:
        self.bus = bus
        self.path = path
        self.ring = ring
        self._tmp_path = path + ".tmp"
        self._handle = None
        self.records_written = 0

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> "FlightRecorder":
        """Open the stream, back-fill resident records, attach the sink."""
        if self._handle is not None:
            raise RuntimeError("flight recorder already started")
        self._handle = open(self._tmp_path, "w", encoding="utf-8",
                            newline="\n")
        try:
            for record in self.bus.records:
                self._handle.write(dumps_record(record) + "\n")
                self.records_written += 1
            self.bus.add_sink(self._sink)
            if self.ring is not None:
                self.bus.limit_records(self.ring)
        except BaseException:
            self._abort()
            raise
        return self

    def _sink(self, line: str) -> None:
        self._handle.write(line + "\n")
        self.records_written += 1

    def close(self) -> None:
        """Detach, flush, and atomically move the stream into place."""
        if self._handle is None:
            return
        self.bus.remove_sink(self._sink)
        handle, self._handle = self._handle, None
        handle.close()
        os.replace(self._tmp_path, self.path)

    def _abort(self) -> None:
        """Tear down without publishing (start failed mid-way)."""
        if self._handle is not None:
            handle, self._handle = self._handle, None
            handle.close()
        try:
            os.unlink(self._tmp_path)
        except OSError:
            pass

    def __enter__(self) -> "FlightRecorder":
        return self.start()

    def __exit__(self, exc_type: object, *_exc: object) -> None:
        if exc_type is None:
            self.close()
        else:
            # The run died: keep nothing half-written.  The bus's
            # resident ring still holds the tail for post-mortems.
            if self._handle is not None:
                self.bus.remove_sink(self._sink)
            self._abort()

    @property
    def active(self) -> bool:
        return self._handle is not None
