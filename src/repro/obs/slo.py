"""Declarative SLO specs evaluated against the metrics registry.

Operating a fleet means knowing, mechanically, whether a run met its
service objectives -- per-tenant tail latency, drop-rate ceilings,
utilisation bands -- not eyeballing a table.  A :class:`SloSpec`
declares one objective against registry dot-paths (with ``*``
wildcards, so one spec covers every policy/tenant), a
:class:`SloMonitor` evaluates a list of them against a
:class:`~repro.runtime.metrics.MetricsRegistry`, and every violation is

* collected into a :class:`SloReport` (text section + JSON),
* emitted as an ``I`` instant (``slo.violation``) on the trace bus
  when one is supplied, so violations land inside the trace timeline
  they describe,
* surfaced as a nonzero exit (:data:`SLO_EXIT_CODE`) by the CLI's
  ``--slo`` flags, which is what makes the monitor CI-enforceable.

Value extraction by metric kind: counters and gauges read their value;
latency histograms read ``percentile`` (default p99).  A spec with
``ratio_to`` divides by a second metric's value (e.g. drop rate =
``dropped / offered``); empty histograms and zero denominators are
skipped, not violated -- absence of traffic is not an SLO breach.

Specs load from JSON (``SloMonitor.load``)::

    [{"name": "tenant-p99", "metric": "fleet.*.tenant.*.p99_ns",
      "upper": 500000.0},
     {"name": "util-band", "metric": "fleet.*.utilization_mean",
      "lower": 0.2, "upper": 0.9}]
"""

import fnmatch
import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.runtime.metrics import Gauge, MetricsRegistry
from repro.runtime.trace import TraceBus
from repro.sim.stats import Counter, LatencyStats

#: CLI exit code when any SLO is violated (distinct from error=1,
#: unhealthy=2, incomplete-report=3).
SLO_EXIT_CODE = 4


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective against registry dot-paths."""

    name: str
    metric: str
    upper: Optional[float] = None
    lower: Optional[float] = None
    percentile: float = 0.99
    ratio_to: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an SLO spec needs a name")
        if not self.metric:
            raise ConfigurationError(f"SLO {self.name!r} needs a metric path")
        if self.upper is None and self.lower is None:
            raise ConfigurationError(
                f"SLO {self.name!r} needs an upper and/or lower bound")
        if not 0.0 <= self.percentile <= 1.0:
            raise ConfigurationError(
                f"SLO {self.name!r} percentile must be within [0, 1]")

    def bound_text(self) -> str:
        parts = []
        if self.lower is not None:
            parts.append(f">= {self.lower:g}")
        if self.upper is not None:
            parts.append(f"<= {self.upper:g}")
        return " and ".join(parts)

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"name": self.name, "metric": self.metric}
        if self.upper is not None:
            payload["upper"] = self.upper
        if self.lower is not None:
            payload["lower"] = self.lower
        if self.percentile != 0.99:
            payload["percentile"] = self.percentile
        if self.ratio_to is not None:
            payload["ratio_to"] = self.ratio_to
        return payload

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "SloSpec":
        if not isinstance(payload, dict):
            raise ConfigurationError("an SLO spec must be a JSON object")
        known = {"name", "metric", "upper", "lower", "percentile", "ratio_to"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown SLO spec fields: {', '.join(sorted(unknown))}")
        return cls(
            name=payload.get("name", ""),
            metric=payload.get("metric", ""),
            upper=payload.get("upper"),
            lower=payload.get("lower"),
            percentile=payload.get("percentile", 0.99),
            ratio_to=payload.get("ratio_to"),
        )


@dataclass(frozen=True)
class SloViolation:
    """One metric path that broke one spec's bound."""

    slo: str
    metric: str
    value: float
    bound: str

    def to_json(self) -> Dict[str, Any]:
        return {"slo": self.slo, "metric": self.metric,
                "value": round(self.value, 6), "bound": self.bound}


class SloReport:
    """Outcome of evaluating a spec list against one registry."""

    def __init__(self, specs: Sequence[SloSpec],
                 violations: List[SloViolation], checked: int) -> None:
        self.specs = tuple(specs)
        self.violations = violations
        self.checked = checked

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else SLO_EXIT_CODE

    def format(self) -> str:
        """A report section: one line per violation, or the all-clear."""
        lines = [f"SLO check: {len(self.specs)} spec(s), "
                 f"{self.checked} series checked, "
                 f"{len(self.violations)} violation(s)"]
        for violation in self.violations:
            lines.append(
                f"  VIOLATION {violation.slo}: {violation.metric} = "
                f"{violation.value:g} (bound {violation.bound})"
            )
        if not self.violations:
            lines.append("  all objectives met")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "specs": [spec.to_json() for spec in self.specs],
            "checked": self.checked,
            "violations": [violation.to_json()
                           for violation in self.violations],
            "ok": self.ok,
        }


def _metric_value(metric: Any, percentile: float) -> Optional[float]:
    if isinstance(metric, Counter):
        return float(metric.value)
    if isinstance(metric, Gauge):
        return float(metric.value)
    if isinstance(metric, LatencyStats):
        if metric.count == 0:
            return None
        return float(metric.percentile_ps(percentile))
    return None


class SloMonitor:
    """Evaluates a list of :class:`SloSpec` against a registry."""

    def __init__(self, specs: Iterable[SloSpec]) -> None:
        self.specs: Tuple[SloSpec, ...] = tuple(specs)

    def _matches(self, registry: MetricsRegistry,
                 pattern: str) -> List[str]:
        if any(char in pattern for char in "*?["):
            return [path for path in registry.paths()
                    if fnmatch.fnmatchcase(path, pattern)]
        return [pattern] if pattern in registry else []

    def evaluate(self, registry: MetricsRegistry,
                 trace: Optional[TraceBus] = None) -> SloReport:
        """Check every spec; emit ``slo.violation`` instants on ``trace``."""
        violations: List[SloViolation] = []
        checked = 0
        for spec in self.specs:
            for path in self._matches(registry, spec.metric):
                value = _metric_value(registry.get(path), spec.percentile)
                if value is None:
                    continue
                if spec.ratio_to is not None:
                    denominators = self._matches(registry, spec.ratio_to)
                    if not denominators:
                        continue
                    denominator = _metric_value(
                        registry.get(denominators[0]), spec.percentile)
                    if not denominator:
                        continue
                    value = value / denominator
                checked += 1
                breached = ((spec.upper is not None and value > spec.upper)
                            or (spec.lower is not None and value < spec.lower))
                if not breached:
                    continue
                violation = SloViolation(
                    slo=spec.name, metric=path, value=value,
                    bound=spec.bound_text(),
                )
                violations.append(violation)
                if trace is not None:
                    trace.instant(
                        "slo.violation", slo=spec.name, metric=path,
                        value=round(value, 6), bound=spec.bound_text(),
                    )
        return SloReport(self.specs, violations, checked)

    # --- persistence --------------------------------------------------------

    @classmethod
    def from_json(cls, payload: Any) -> "SloMonitor":
        if isinstance(payload, dict):
            payload = payload.get("slos", payload.get("specs"))
        if not isinstance(payload, list):
            raise ConfigurationError(
                "SLO specs must be a JSON list (or an object with a "
                "'slos' list)")
        return cls(SloSpec.from_json(item) for item in payload)

    @classmethod
    def load(cls, path: str) -> "SloMonitor":
        with open(path, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as error:
                raise ConfigurationError(
                    f"{path} is not an SLO spec file (invalid JSON: {error})"
                ) from None
        return cls.from_json(payload)


def load_slo_specs(path: str) -> SloMonitor:
    """Convenience alias for :meth:`SloMonitor.load`."""
    return SloMonitor.load(path)


def default_fleet_slos(p99_ns: float = 400_000.0,
                       utilization_low: float = 0.05,
                       utilization_high: float = 0.95,
                       non_resident_ceiling: float = 0.35) -> List[SloSpec]:
    """The stock objectives for a ``repro.cli fleet`` run.

    * every tenant's p99 stays under ``p99_ns`` (per policy);
    * mean fleet utilisation sits inside the band -- below it the fleet
      is over-provisioned, above it one hot device away from overload;
    * no devices driven past their line rate;
    * at most ``non_resident_ceiling`` of flows pay a PR reconfiguration.
    """
    return [
        SloSpec(name="tenant-p99", metric="fleet.*.tenant.*.p99_ns",
                upper=p99_ns),
        SloSpec(name="utilization-band", metric="fleet.*.utilization_mean",
                lower=utilization_low, upper=utilization_high),
        SloSpec(name="no-overload", metric="fleet.*.overloaded_devices",
                upper=0.0),
        SloSpec(name="pr-resident", metric="fleet.*.non_resident_flows",
                ratio_to="fleet.flows", upper=non_resident_ceiling),
    ]


def default_epoch_slos(p99_ns: float = 400_000.0,
                       utilization_low: float = 0.05,
                       utilization_high: float = 0.92) -> List[SloSpec]:
    """The stock per-epoch objectives for the fleet orchestrator.

    Evaluated against the ``fleet.epoch.*`` gauges after every epoch;
    the orchestrator's autoscaler treats the resulting violations as
    its feedback signal -- an upper-bound breach (tail latency or
    utilisation) scales instance groups up from the spare pool, a
    lower-bound breach drains capacity back.  The thresholds double as
    the scaling set-points, which is why the utilisation ceiling sits
    slightly below :func:`default_fleet_slos`' 0.95: the autoscaler
    should act *before* the fleet-wide objective is in danger.
    """
    return [
        SloSpec(name="epoch-p99", metric="fleet.epoch.p99_ns", upper=p99_ns),
        SloSpec(name="epoch-utilization",
                metric="fleet.epoch.utilization_mean",
                lower=utilization_low, upper=utilization_high),
    ]


def default_build_slos(target_p99_s: float = 300.0,
                       step_p99_s: float = 120.0) -> List[SloSpec]:
    """The stock objectives for a ``repro.cli build`` run.

    * no build *failures* -- tailoring-incompatible (device, role) pairs
      are counted separately (``build.incompatible``) and are a property
      of the matrix, not a regression, so they do not breach;
    * p99 whole-target build time stays under ``target_p99_s``;
    * p99 of every individual step stays under ``step_p99_s``.

    Times compare against the ``build.*.wall_ps`` histograms the farm
    publishes, so the bounds are converted to picoseconds here.
    """
    return [
        SloSpec(name="build-failures", metric="build.failed", upper=0.0),
        SloSpec(name="build-target-p99", metric="build.target.wall_ps",
                upper=target_p99_s * 1e12),
        SloSpec(name="build-step-p99", metric="build.step.*.wall_ps",
                upper=step_p99_s * 1e12),
    ]


def default_serve_slos(request_p99_s: float = 0.5,
                       error_ratio: float = 0.01,
                       shed_ratio: float = 0.10) -> List[SloSpec]:
    """The stock objectives for the :mod:`repro.serve` daemon.

    * p99 end-to-end request latency (admission -> response bytes
      queued) stays under ``request_p99_s`` -- the warm-path promise the
      load benchmark gates;
    * internal errors (HTTP 500s) stay under ``error_ratio`` of all
      requests;
    * load shedding (503s from the bounded admission queue) stays under
      ``shed_ratio`` -- shedding is the designed overload response, but
      a daemon shedding more than this is under-provisioned.

    Latency compares against the ``serve.request.wall_ps`` histogram the
    daemon publishes, so the bound is converted to picoseconds here.
    Quota rejections (429s) are deliberately *not* an objective: they
    are the per-tenant contract working, not the service failing.
    """
    return [
        SloSpec(name="serve-request-p99", metric="serve.request.wall_ps",
                upper=request_p99_s * 1e12),
        SloSpec(name="serve-error-ratio", metric="serve.responses.500",
                ratio_to="serve.requests", upper=error_ratio),
        SloSpec(name="serve-shed-ratio", metric="serve.shed",
                ratio_to="serve.requests", upper=shed_ratio),
    ]


def registry_from_sweep(result: Any) -> MetricsRegistry:
    """Summarise a :class:`~repro.runtime.sweep.SweepResult` as metrics.

    Sweep points execute in isolated per-point contexts, so their
    numbers never land in one shared registry; this folds the merged
    result back into ``sweep.<app>.<device>.<size>B.*`` gauges so the
    same SLO machinery covers sweeps (e.g. a throughput floor or a
    latency ceiling per point).
    """
    registry = MetricsRegistry()
    for point in result.points:
        namespace = registry.namespace(
            f"sweep.{point.point.app}.{point.point.device}."
            f"{point.point.packet_size_bytes}B"
        )
        namespace.set_gauge("throughput_gbps", point.throughput_bps / 1e9)
        namespace.set_gauge("mean_latency_ns", point.mean_latency_ns)
    return registry
