"""Request-scoped trace context and cross-process span stitching.

The serving daemon handles every request on one asyncio loop, but the
actual work fans out: sweep points cross a ``ProcessPoolExecutor``
boundary and come back as per-point JSONL fragments whose span ids all
start at 0.  Concatenating the fragments (``merged_trace_jsonl``) gives
a *forest* -- useful for eyeballing, useless for request attribution,
because nothing connects a point's spans to the request that ran it.

This module closes that gap:

* :class:`TraceContext` -- the propagation token.  A request's trace id
  travels from the HTTP header (``X-Trace-Id``) or the daemon's own
  sequence, through ``service.run_scenario``, into the execution root
  span of fleet and build runs.  Sweep responses deliberately do *not*
  embed the per-request id (see below).
* :func:`stitch_spans` -- the plan-order merge.  Per-point fragments
  are renumbered into one id space and re-parented under a synthetic
  ``serve.request`` -> ``serve.execute`` root, producing a single
  connected span tree.

Both halves preserve the determinism contract.  Each fragment's spans
come from a fresh per-point context (ids from 0, sim-time timestamps),
and the merge walks fragments in plan order with a running id offset --
so the stitched tree is **byte-identical at any worker count**.  And
because a sweep response must stay a pure function of its scenario
(request coalescing serves one leader's bytes to every follower), the
stitched artifact's trace id is derived from the scenario id, never
from the request: :meth:`TraceContext.for_scenario`.
"""

import json
import re
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.runtime.trace import dumps_record

#: Trace ids are operator-facing and land in logs, headers, and span
#: attributes; keep them short and shell/header-safe.
_MAX_TRACE_ID = 64
_TRACE_ID_BAD = re.compile(r"[^A-Za-z0-9._:-]")

#: Header carrying a caller-chosen trace id into the daemon.
TRACE_HEADER = "x-trace-id"


def sanitise_trace_id(raw: str) -> str:
    """Clamp a caller-supplied id to the safe alphabet (never empty)."""
    cleaned = _TRACE_ID_BAD.sub("-", raw.strip())[:_MAX_TRACE_ID]
    return cleaned or "trace"


@dataclass(frozen=True)
class TraceContext:
    """The propagation token: one trace id, one optional parent span."""

    trace_id: str
    parent_span: Optional[int] = None

    @classmethod
    def for_scenario(cls, scenario_id: str) -> "TraceContext":
        """The *scenario-derived* context used for stitched artifacts.

        Response bodies are a pure function of (scenario, slo) -- the
        coalescer and the response cache depend on it -- so anything
        embedded in a response must derive from the scenario, not the
        request.  The first 16 hex digits of the scenario id are unique
        enough to join against and stable across requests, workers, and
        cache temperature.
        """
        return cls(trace_id=sanitise_trace_id(scenario_id[:16]))

    @classmethod
    def from_headers(cls, headers: Mapping[str, str],
                     fallback: str) -> "TraceContext":
        """The *request-scoped* context: header-supplied id or fallback."""
        raw = headers.get(TRACE_HEADER, "")
        return cls(trace_id=sanitise_trace_id(raw or fallback))

    def child(self, parent_span: int) -> "TraceContext":
        return TraceContext(trace_id=self.trace_id, parent_span=parent_span)


def stitch_spans(segments: Sequence[str], *, trace_id: str,
                 root_name: str = "serve.request",
                 root_attrs: Optional[Dict[str, Any]] = None,
                 exec_name: str = "serve.execute",
                 exec_attrs: Optional[Dict[str, Any]] = None) -> str:
    """Merge per-point JSONL fragments into one connected span tree.

    ``segments`` are each point's exported JSONL (possibly ``""`` for
    untraced/cache-poisoned entries), **in plan order**.  The output is
    one JSONL document::

        B id=0  <root_name>   (attrs: trace_id + root_attrs)
        B id=1  <exec_name>   parent=0
        ... every fragment, ids offset into one space, fragment roots
            re-parented under span 1 ...
        E id=1, E id=0        at the latest timestamp seen

    Fragment ids are assumed to start at 0 per fragment (what a fresh
    per-point :class:`~repro.runtime.context.SimContext` produces); the
    running offset renumbers them without collisions.  Output bytes are
    a pure function of the fragments and names -- byte-identical no
    matter how many workers produced the fragments.
    """
    records: List[Dict[str, Any]] = []
    root: Dict[str, Any] = {"type": "B", "id": 0, "name": root_name,
                            "ts_ps": 0, "attrs": {"trace_id": trace_id}}
    if root_attrs:
        root["attrs"].update(root_attrs)
    records.append(root)
    execute: Dict[str, Any] = {"type": "B", "id": 1, "name": exec_name,
                               "ts_ps": 0, "parent": 0}
    if exec_attrs:
        execute["attrs"] = dict(exec_attrs)
    records.append(execute)

    next_id = 2
    latest_ts = 0
    for segment in segments:
        if not segment:
            continue
        offset = next_id
        max_id = -1
        for line in segment.splitlines():
            if not line:
                continue
            record = json.loads(line)
            old_id = record["id"]
            if old_id > max_id:
                max_id = old_id
            record["id"] = old_id + offset
            if record["type"] != "E":
                parent = record.get("parent")
                # A fragment's rootless records hang off the execution
                # span; everything else keeps its in-fragment parent.
                record["parent"] = (1 if parent is None
                                    else parent + offset)
            end_ts = record["ts_ps"] + record.get("dur_ps", 0)
            if end_ts > latest_ts:
                latest_ts = end_ts
            records.append(record)
        next_id = offset + max_id + 1
    records.append({"type": "E", "id": 1, "name": exec_name,
                    "ts_ps": latest_ts})
    records.append({"type": "E", "id": 0, "name": root_name,
                    "ts_ps": latest_ts})
    return "\n".join(dumps_record(record) for record in records) + "\n"
