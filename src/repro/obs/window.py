"""Sliding-window serve telemetry: rolling rates, histograms, burn rates.

The daemon's :class:`~repro.runtime.metrics.MetricsRegistry` is
cumulative -- perfect for Prometheus scrapes, useless for "what is the
p99 *right now*" or "how fast am I burning this month's error budget".
This module adds the time-local view:

* :class:`WindowedCounter` / :class:`WindowedHistogram` -- fixed-size
  slice rings over a sliding window.  The window of ``window_s``
  seconds is cut into ``slices`` equal slices; an observation lands in
  the slice of the current epoch (``int(now // slice_s)``), and
  advancing time clears exactly the slices that expired.  Memory is
  O(slices x buckets), independent of traffic.
* :class:`ExponentialBuckets` -- the histogram's bucket layout
  (first bound, growth factor, bound count), chosen so latency from
  0.1 ms to seconds lands with ~2x resolution.  Snapshots expose
  *cumulative* counts per upper bound -- exactly the Prometheus
  ``le`` convention, so :func:`repro.obs.prometheus.to_prometheus_text`
  can render them as native ``histogram`` families.
* :class:`TelemetryHub` -- the per-request fold the daemon calls once
  per response: windowed request/error/shed rates, per-endpoint and
  per-tenant latency histograms (label cardinality bounded), and SLO
  **burn-rate + error-budget** tracking driven by the same
  :class:`~repro.obs.slo.SloSpec` objects the ``/slo`` endpoint
  evaluates.

Burn-rate semantics (the Google SRE-workbook definition, applied to
the window): a latency objective "p99 <= 500 ms" tolerates 1% of
requests over the threshold; ``burn = bad_fraction / 0.01``.  A ratio
objective "500s / requests <= 1%" burns at ``observed_ratio / 0.01``.
Burn 1.0 = consuming budget exactly at the allowed rate; the remaining
budget for the window is ``max(0, 1 - burn)``.

Everything takes an injectable ``clock`` (seconds, monotonic) so tests
-- including the hypothesis rotation-arithmetic suite -- drive time
explicitly.
"""

import threading
from bisect import bisect_left
from dataclasses import dataclass
from time import monotonic
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

#: Default serve-latency layout: 0.1 ms doubling up to ~3.3 s, in the
#: registry's native picoseconds.
DEFAULT_LATENCY_BUCKETS_PS = (1e8, 2.0, 16)

#: Distinct per-endpoint / per-tenant label values tracked before new
#: ones fold into this overflow label (bounded scrape cardinality).
MAX_LABEL_VALUES = 64
OVERFLOW_LABEL = "overflow"


class ExponentialBuckets:
    """Upper bounds ``first * growth**i`` for ``i`` in ``range(count)``."""

    def __init__(self, first: float, growth: float = 2.0,
                 count: int = 16) -> None:
        if first <= 0:
            raise ConfigurationError("bucket bounds must start above zero")
        if growth <= 1.0:
            raise ConfigurationError("bucket growth must exceed 1.0")
        if count < 1:
            raise ConfigurationError("need at least one bucket bound")
        self.bounds: Tuple[float, ...] = tuple(
            first * growth ** index for index in range(count))

    def index(self, value: float) -> int:
        """The bucket holding ``value`` (``le`` semantics); the last
        index (== ``len(bounds)``) is the +Inf overflow bucket."""
        return bisect_left(self.bounds, value)

    def __len__(self) -> int:
        return len(self.bounds)


@dataclass(frozen=True)
class HistogramSnapshot:
    """A merged window: cumulative counts per bound, Prometheus-style."""

    bounds: Tuple[float, ...]
    cumulative: Tuple[int, ...]   # one entry per bound; excludes +Inf
    count: int                    # total observations incl. overflow
    sum: float
    max: float

    def percentile(self, quantile: float) -> float:
        """Upper-bound estimate of ``quantile`` (0..1) over the window.

        Returns the ``le`` bound of the bucket holding the target rank;
        overflow observations report the window's observed maximum.
        Empty windows report 0.0 -- absence of traffic is not latency.
        """
        if self.count == 0:
            return 0.0
        target = max(1, int(quantile * self.count + 0.999999))
        for bound, seen in zip(self.bounds, self.cumulative):
            if seen >= target:
                return bound
        return self.max

    def to_json(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.sum,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class _SliceRing:
    """Shared rotation arithmetic: a ring of per-slice accumulators.

    The slice for wall-time ``t`` is epoch ``int(t // slice_s)``; the
    ring index is ``epoch % slices``.  Advancing from epoch A to epoch
    B > A clears every slice in between (capped at the slice count --
    a long sleep empties the whole window).  A clock that runs
    backwards resets the ring rather than resurrecting stale slices.
    """

    def __init__(self, window_s: float, slices: int,
                 clock: Callable[[], float]) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if slices < 1:
            raise ConfigurationError("need at least one window slice")
        self.window_s = float(window_s)
        self.slices = int(slices)
        self.slice_s = self.window_s / self.slices
        self._clock = clock
        self._epoch = int(self._clock() // self.slice_s)
        self._ring: List[Any] = [self._new_slice()
                                 for _ in range(self.slices)]

    def _new_slice(self) -> Any:  # pragma: no cover - overridden
        raise NotImplementedError

    def _advance(self) -> None:
        epoch = int(self._clock() // self.slice_s)
        steps = epoch - self._epoch
        if steps == 0:
            return
        if steps < 0 or steps >= self.slices:
            for index in range(self.slices):
                self._ring[index] = self._new_slice()
        else:
            for expired in range(self._epoch + 1, epoch + 1):
                self._ring[expired % self.slices] = self._new_slice()
        self._epoch = epoch

    def _current(self) -> Any:
        self._advance()
        return self._ring[self._epoch % self.slices]

    def _live(self) -> List[Any]:
        self._advance()
        return self._ring


class WindowedCounter(_SliceRing):
    """A counter whose total covers only the trailing window."""

    def _new_slice(self) -> List[float]:
        return [0.0]

    def add(self, amount: float = 1.0) -> None:
        self._current()[0] += amount

    def total(self) -> float:
        return sum(cell[0] for cell in self._live())

    def rate(self) -> float:
        """Events per second over the window."""
        return self.total() / self.window_s


class _HistSlice:
    __slots__ = ("counts", "sum", "count", "max")

    def __init__(self, bucket_count: int) -> None:
        self.counts = [0] * bucket_count
        self.sum = 0.0
        self.count = 0
        self.max = 0.0


class WindowedHistogram(_SliceRing):
    """An exponential-bucket histogram over the trailing window."""

    def __init__(self, window_s: float, slices: int,
                 buckets: ExponentialBuckets,
                 clock: Callable[[], float]) -> None:
        self.buckets = buckets
        super().__init__(window_s, slices, clock)

    def _new_slice(self) -> _HistSlice:
        return _HistSlice(len(self.buckets) + 1)   # +1 = +Inf overflow

    def observe(self, value: float) -> None:
        cell = self._current()
        cell.counts[self.buckets.index(value)] += 1
        cell.sum += value
        cell.count += 1
        if value > cell.max:
            cell.max = value

    def snapshot(self) -> HistogramSnapshot:
        bounds = self.buckets.bounds
        merged = [0] * (len(bounds) + 1)
        total_sum = 0.0
        total_count = 0
        seen_max = 0.0
        for cell in self._live():
            for index, count in enumerate(cell.counts):
                merged[index] += count
            total_sum += cell.sum
            total_count += cell.count
            if cell.max > seen_max:
                seen_max = cell.max
        cumulative: List[int] = []
        running = 0
        for count in merged[:-1]:
            running += count
            cumulative.append(running)
        return HistogramSnapshot(
            bounds=bounds, cumulative=tuple(cumulative),
            count=total_count, sum=total_sum, max=seen_max)


# --------------------------------------------------------------------- #
# SLO burn tracking                                                     #
# --------------------------------------------------------------------- #

class _LatencyObjective:
    """A percentile-bound latency spec burns on over-threshold requests."""

    def __init__(self, spec: Any, window_s: float, slices: int,
                 clock: Callable[[], float]) -> None:
        self.spec = spec
        self.threshold = float(spec.upper)
        self.allowed = max(1.0 - float(spec.percentile), 1e-9)
        self.good = WindowedCounter(window_s, slices, clock)
        self.bad = WindowedCounter(window_s, slices, clock)

    def observe(self, wall_ps: float) -> None:
        (self.bad if wall_ps > self.threshold else self.good).add()

    def report(self) -> Dict[str, Any]:
        good, bad = self.good.total(), self.bad.total()
        total = good + bad
        burn = (bad / total) / self.allowed if total else 0.0
        return {
            "name": self.spec.name,
            "kind": "latency",
            "metric": self.spec.metric,
            "threshold_ps": self.threshold,
            "window_requests": int(total),
            "bad_requests": int(bad),
            "burn_rate": round(burn, 6),
            "budget_remaining": round(max(0.0, 1.0 - burn), 6),
        }


class _RatioObjective:
    """A ``ratio_to`` spec burns on the windowed numerator/denominator."""

    def __init__(self, spec: Any,
                 counters: Dict[str, WindowedCounter]) -> None:
        self.spec = spec
        self.upper = float(spec.upper)
        self._counters = counters

    def report(self) -> Dict[str, Any]:
        numerator = self._counter(self.spec.metric)
        denominator = self._counter(self.spec.ratio_to)
        ratio = numerator / denominator if denominator else 0.0
        if self.upper > 0:
            burn: Optional[float] = round(ratio / self.upper, 6)
            budget: Optional[float] = round(max(0.0, 1.0 - ratio / self.upper), 6)
        else:                       # zero-tolerance objective
            burn = None if numerator == 0 else float("inf")
            budget = 1.0 if numerator == 0 else 0.0
        return {
            "name": self.spec.name,
            "kind": "ratio",
            "metric": self.spec.metric,
            "ratio_to": self.spec.ratio_to,
            "window_ratio": round(ratio, 6),
            "burn_rate": burn,
            "budget_remaining": budget,
        }

    def _counter(self, path: str) -> float:
        counter = self._counters.get(path)
        return counter.total() if counter is not None else 0.0


class TelemetryHub:
    """The daemon's windowed view: one :meth:`record_request` per response.

    Thread-safe (one lock around the fold; the daemon calls from its
    event loop, tests may not).  Per-endpoint and per-tenant histogram
    families are capped at :data:`MAX_LABEL_VALUES` distinct values;
    the tail folds into :data:`OVERFLOW_LABEL` so a tenant-id flood
    cannot grow the scrape unboundedly.
    """

    #: Endpoints tracked per-endpoint; anything else folds to "other".
    KNOWN_ENDPOINTS = (
        "/healthz", "/metrics", "/stats", "/slo", "/telemetry", "/trace",
        "/v1/sweep", "/v1/fleet", "/v1/build", "/v1/run", "/v1/shutdown",
    )

    def __init__(self, specs: Optional[Sequence[Any]] = None, *,
                 window_s: float = 60.0, slices: int = 12,
                 clock: Callable[[], float] = monotonic,
                 latency_buckets: Optional[ExponentialBuckets] = None
                 ) -> None:
        from repro.obs.slo import default_serve_slos

        self.window_s = float(window_s)
        self.slices = int(slices)
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets = latency_buckets or ExponentialBuckets(
            *DEFAULT_LATENCY_BUCKETS_PS)
        self._counters: Dict[str, WindowedCounter] = {}
        self._histograms: Dict[str, WindowedHistogram] = {}
        self._endpoint_hists: Dict[str, WindowedHistogram] = {}
        self._tenant_hists: Dict[str, WindowedHistogram] = {}
        self._objectives: List[Any] = []
        specs = list(specs) if specs is not None else default_serve_slos()
        for spec in specs:
            if spec.ratio_to is not None and spec.upper is not None:
                self._objectives.append(_RatioObjective(spec, self._counters))
            elif (spec.upper is not None
                  and spec.metric.endswith("wall_ps")):
                self._objectives.append(_LatencyObjective(
                    spec, self.window_s, self.slices, clock))
            # Other spec shapes (gauge bands etc.) have no per-request
            # stream to burn against; the cumulative /slo endpoint
            # still covers them.

    # --- the fold ----------------------------------------------------- #

    def record_request(self, *, endpoint: str, tenant: str, status: int,
                       wall_ps: float, coalesced: bool = False,
                       shed: bool = False) -> None:
        endpoint = (endpoint if endpoint in self.KNOWN_ENDPOINTS
                    else "other")
        with self._lock:
            self._count("serve.requests")
            self._count(f"serve.responses.{status}")
            if shed:
                self._count("serve.shed")
            if coalesced:
                self._count("serve.coalesced")
            self._observe("serve.window.request.wall_ps", wall_ps)
            self._labelled(self._endpoint_hists, "endpoint",
                           endpoint).observe(wall_ps)
            self._labelled(self._tenant_hists, "tenant",
                           tenant).observe(wall_ps)
            for objective in self._objectives:
                if isinstance(objective, _LatencyObjective):
                    objective.observe(wall_ps)

    def record_orchestration(self, *, epochs: int, wall_ps: float) -> None:
        """Fold one epoch-orchestration execution into the windows.

        Epoch days are the daemon's heaviest fleet requests; tracking
        their rate and wall-time histogram separately keeps the
        request-level windows honest about what a mixed workload is
        actually doing.
        """
        with self._lock:
            self._count("serve.orchestrator.runs")
            self._count("serve.orchestrator.epochs", epochs)
            self._observe("serve.window.orchestrator.wall_ps", wall_ps)

    def _count(self, path: str, amount: float = 1.0) -> None:
        counter = self._counters.get(path)
        if counter is None:
            counter = self._counters[path] = WindowedCounter(
                self.window_s, self.slices, self._clock)
        counter.add(amount)

    def _observe(self, path: str, value: float) -> None:
        histogram = self._histograms.get(path)
        if histogram is None:
            histogram = self._histograms[path] = WindowedHistogram(
                self.window_s, self.slices, self._buckets, self._clock)
        histogram.observe(value)

    def _labelled(self, table: Dict[str, WindowedHistogram], kind: str,
                  value: str) -> WindowedHistogram:
        if value not in table and len(table) >= MAX_LABEL_VALUES:
            value = OVERFLOW_LABEL
        histogram = table.get(value)
        if histogram is None:
            histogram = table[value] = WindowedHistogram(
                self.window_s, self.slices, self._buckets, self._clock)
        return histogram

    # --- views -------------------------------------------------------- #

    def histogram_snapshots(self) -> Dict[str, HistogramSnapshot]:
        """Dot-path -> snapshot, ready for the Prometheus exporter."""
        with self._lock:
            out: Dict[str, HistogramSnapshot] = {
                path: histogram.snapshot()
                for path, histogram in self._histograms.items()
            }
            for label, histogram in self._endpoint_hists.items():
                out[f"serve.window.endpoint.{label}.wall_ps"] = (
                    histogram.snapshot())
            for label, histogram in self._tenant_hists.items():
                out[f"serve.window.tenant.{label}.wall_ps"] = (
                    histogram.snapshot())
            return out

    def telemetry_json(self) -> Dict[str, Any]:
        """The ``/telemetry`` body: rates, latencies, burn rates."""
        with self._lock:
            rates = {
                path: {"window_total": int(counter.total()),
                       "per_second": round(counter.rate(), 6)}
                for path, counter in sorted(self._counters.items())
            }
            latency = {
                path: histogram.snapshot().to_json()
                for path, histogram in sorted(self._histograms.items())
            }
            endpoints = {
                label: histogram.snapshot().to_json()
                for label, histogram in sorted(self._endpoint_hists.items())
            }
            tenants = {
                label: histogram.snapshot().to_json()
                for label, histogram in sorted(self._tenant_hists.items())
            }
            objectives = [objective.report()
                          for objective in self._objectives]
        return {
            "window_s": self.window_s,
            "slices": self.slices,
            "rates": rates,
            "latency": latency,
            "endpoints": endpoints,
            "tenants": tenants,
            "slo_burn": objectives,
        }

    def summary(self) -> Dict[str, Any]:
        """The compact ``/stats`` section."""
        with self._lock:
            requests = self._counters.get("serve.requests")
            return {
                "window_s": self.window_s,
                "slices": self.slices,
                "window_requests": int(requests.total()) if requests else 0,
                "endpoints": len(self._endpoint_hists),
                "tenants": len(self._tenant_hists),
            }
