"""FPGA platform descriptions: vendors, chips, devices, and the fleet.

* :mod:`repro.platform.vendor` -- chip vendors, CAD toolchains and IP
  packaging formats;
* :mod:`repro.platform.device` -- chip families, peripherals and device
  models with resource budgets;
* :mod:`repro.platform.catalog` -- the concrete device catalog of the
  paper's evaluation (Devices A-D, Table 2) plus the wider generation
  list of section 3.3.1;
* :mod:`repro.platform.fleet` -- the deployment-history model behind
  Figure 3c.
"""

from repro.platform.device import (
    ChipFamily,
    FpgaDevice,
    Peripheral,
    PeripheralKind,
    PcieGeneration,
)
from repro.platform.vendor import IpPackaging, Toolchain, Vendor
from repro.platform.catalog import (
    DEVICE_A,
    DEVICE_B,
    DEVICE_C,
    DEVICE_D,
    all_devices,
    device_by_name,
)

__all__ = [
    "ChipFamily",
    "DEVICE_A",
    "DEVICE_B",
    "DEVICE_C",
    "DEVICE_D",
    "FpgaDevice",
    "IpPackaging",
    "PcieGeneration",
    "Peripheral",
    "PeripheralKind",
    "Toolchain",
    "Vendor",
    "all_devices",
    "device_by_name",
]
