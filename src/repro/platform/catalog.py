"""The concrete device catalog.

Devices A-D reproduce Table 2 of the paper.  Resource budgets are the
public datasheet element counts for the named parts (approximate where
the datasheet aggregates differently); they matter only as denominators
for utilisation percentages, so small deviations do not change any
result shape.
"""

from typing import Dict, List

from repro.metrics.resources import ResourceBudget
from repro.platform.device import (
    AGILEX,
    ARRIA_10,
    ChipFamily,
    FpgaDevice,
    PcieGeneration,
    Peripheral,
    PeripheralKind,
    STRATIX_10,
    VIRTEX_ULTRASCALE,
    VIRTEX_ULTRASCALE_PLUS,
    ZYNQ_7000,
)
from repro.platform.vendor import Vendor

# --- Resource budgets (public datasheet values) -------------------------

XCVU35P_BUDGET = ResourceBudget(lut=871_680, ff=1_743_360, bram_36k=1_344, uram=640, dsp=5_952)
XCVU9P_BUDGET = ResourceBudget(lut=1_182_240, ff=2_364_480, bram_36k=2_160, uram=960, dsp=6_840)
XCVU3P_BUDGET = ResourceBudget(lut=394_080, ff=788_160, bram_36k=720, uram=320, dsp=2_280)
XCVU125_BUDGET = ResourceBudget(lut=716_160, ff=1_432_320, bram_36k=1_260, uram=0, dsp=1_200)
# Agilex ALMs converted to LUT-equivalents (1 ALM ~ 2 LUT4); M20K blocks
# expressed as 36Kb-equivalents (2 M20K ~ 1.1 BRAM36); no URAM on Agilex.
AGF014_BUDGET = ResourceBudget(lut=974_400, ff=1_948_800, bram_36k=3_940, uram=0, dsp=4_510)
ZYNQ7045_BUDGET = ResourceBudget(lut=218_600, ff=437_200, bram_36k=545, uram=0, dsp=900)

# --- Devices A-D (Table 2) ----------------------------------------------

DEVICE_A = FpgaDevice(
    name="device-a",
    chip="XCVU35P",
    family=VIRTEX_ULTRASCALE_PLUS,
    board_vendor=Vendor.XILINX,
    budget=XCVU35P_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.HBM, capacity_gib=8),
        Peripheral(PeripheralKind.DDR4, capacity_gib=16),
        Peripheral(PeripheralKind.QSFP28, count=2),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN4, pcie_lanes=8),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2021,
)

DEVICE_B = FpgaDevice(
    name="device-b",
    chip="XCVU9P",
    family=VIRTEX_ULTRASCALE_PLUS,
    board_vendor=Vendor.INHOUSE,
    budget=XCVU9P_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.DDR4, count=2, capacity_gib=32),
        Peripheral(PeripheralKind.QSFP28, count=2),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN3, pcie_lanes=16),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2020,
)

DEVICE_C = FpgaDevice(
    name="device-c",
    chip="AGILEX7-AGF014",
    family=AGILEX,
    board_vendor=Vendor.INHOUSE,
    budget=AGF014_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.DSFP, count=2),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN4, pcie_lanes=16),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2023,
)

DEVICE_D = FpgaDevice(
    name="device-d",
    chip="AGILEX7-AGF014",
    family=AGILEX,
    board_vendor=Vendor.INTEL,
    budget=AGF014_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.QSFP28, count=2),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN4, pcie_lanes=16),
        Peripheral(PeripheralKind.DDR4, capacity_gib=16),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2023,
)

# --- Additional generations (section 3.3.1's wider support list) --------

DEVICE_VU3P_NIC = FpgaDevice(
    name="device-vu3p-nic",
    chip="XCVU3P",
    family=VIRTEX_ULTRASCALE_PLUS,
    board_vendor=Vendor.INHOUSE,
    budget=XCVU3P_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.QSFP28, count=1),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN3, pcie_lanes=8),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2020,
)

DEVICE_VU125_LEGACY = FpgaDevice(
    name="device-vu125-legacy",
    chip="XCVU125",
    family=VIRTEX_ULTRASCALE,
    board_vendor=Vendor.INHOUSE,
    budget=XCVU125_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.QSFP28, count=2),
        Peripheral(PeripheralKind.DDR4, capacity_gib=8),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN3, pcie_lanes=8),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2020,
)

DEVICE_ZYNQ_EDGE = FpgaDevice(
    name="device-zynq-edge",
    chip="XC7Z045",
    family=ZYNQ_7000,
    board_vendor=Vendor.INHOUSE,
    budget=ZYNQ7045_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.DDR3, capacity_gib=4),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN3, pcie_lanes=8),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2020,
)

SX2800_BUDGET = ResourceBudget(lut=1_866_240, ff=3_732_480, bram_36k=6_847, uram=0,
                               dsp=5_760)
GX1150_BUDGET = ResourceBudget(lut=854_400, ff=1_708_800, bram_36k=1_500, uram=0,
                               dsp=1_518)

DEVICE_STRATIX_NIC = FpgaDevice(
    name="device-stratix-nic",
    chip="1SX280HN2F43",
    family=STRATIX_10,
    board_vendor=Vendor.INTEL,
    budget=SX2800_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.QSFP28, count=2),
        Peripheral(PeripheralKind.DDR4, capacity_gib=16),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN3, pcie_lanes=16),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2021,
)

DEVICE_ARRIA_EDGE = FpgaDevice(
    name="device-arria-edge",
    chip="10AX115N2F45",
    family=ARRIA_10,
    board_vendor=Vendor.INHOUSE,
    budget=GX1150_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.QSFP28, count=1),
        Peripheral(PeripheralKind.DDR4, capacity_gib=8),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN3, pcie_lanes=8),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2020,
)

# A next-generation card: PCIe Gen5 host link and a 400G cage, the
# direction section 3.3.1 says the fleet evolves in.
DEVICE_GEN5_400G = FpgaDevice(
    name="device-gen5-400g",
    chip="XCVU35P",
    family=VIRTEX_ULTRASCALE_PLUS,
    board_vendor=Vendor.INHOUSE,
    budget=XCVU35P_BUDGET,
    peripherals=(
        Peripheral(PeripheralKind.QSFP112, count=1),
        Peripheral(PeripheralKind.HBM, capacity_gib=8),
        Peripheral(PeripheralKind.PCIE, pcie_generation=PcieGeneration.GEN5, pcie_lanes=8),
        Peripheral(PeripheralKind.I2C),
        Peripheral(PeripheralKind.FLASH),
    ),
    first_deployed_year=2024,
)

_CATALOG: Dict[str, FpgaDevice] = {
    device.name: device
    for device in (
        DEVICE_A,
        DEVICE_B,
        DEVICE_C,
        DEVICE_D,
        DEVICE_VU3P_NIC,
        DEVICE_VU125_LEGACY,
        DEVICE_ZYNQ_EDGE,
        DEVICE_STRATIX_NIC,
        DEVICE_ARRIA_EDGE,
        DEVICE_GEN5_400G,
    )
}


def all_devices() -> List[FpgaDevice]:
    """Every device in the catalog, evaluation devices first."""
    return list(_CATALOG.values())


def evaluation_devices() -> List[FpgaDevice]:
    """The four devices of Table 2."""
    return [DEVICE_A, DEVICE_B, DEVICE_C, DEVICE_D]


def device_by_name(name: str) -> FpgaDevice:
    """Look a device up by catalog name."""
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise KeyError(f"unknown device {name!r}; catalog has: {known}") from None


def resolve_device(name: str) -> FpgaDevice:
    """Resolve a device name, accepting fleet-history variant names.

    The deployment history (:mod:`repro.platform.fleet`) names device
    *revisions* the catalog does not model separately -- board respins
    (``device-b-rev2``) and speed grades (``device-a-100g``,
    ``device-c-400g``) share the base type's chip, shell, and toolchain.
    Those resolve to their base catalog entry by stripping one dashed
    suffix; exact catalog names resolve directly.  Unknown names raise
    ``KeyError`` listing the catalog, like :func:`device_by_name`.
    """
    device = _CATALOG.get(name)
    if device is not None:
        return device
    stem, _, suffix = name.rpartition("-")
    if stem and suffix:
        device = _CATALOG.get(stem)
        if device is not None:
            return device
    return device_by_name(name)   # raises with the catalog listing
