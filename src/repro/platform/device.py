"""Chip families, peripherals, and FPGA device models.

A :class:`FpgaDevice` is the unit the paper calls an "FPGA generation":
a chip (family + part) on a board (board vendor) with a peripheral set.
The distinction between *chip vendor* and *board vendor* matters --
Devices B and C in Table 2 are in-house boards carrying Xilinx/Intel
silicon, which is exactly why commercial frameworks (tied to official
boards) cannot target them while Harmonia can (Table 3).
"""

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.resources import ResourceBudget
from repro.platform.vendor import Toolchain, Vendor, default_toolchain


@dataclass(frozen=True)
class ChipFamily:
    """An FPGA silicon family at a process node."""

    name: str
    vendor: Vendor
    process_nm: int

    def __str__(self) -> str:
        return f"{self.name} ({self.process_nm}nm, {self.vendor.value})"


# The chip families Harmonia supports (paper section 3.3.1).
VIRTEX_ULTRASCALE_PLUS = ChipFamily("Virtex UltraScale+", Vendor.XILINX, 16)
VIRTEX_ULTRASCALE = ChipFamily("Virtex UltraScale", Vendor.XILINX, 20)
ZYNQ_7000 = ChipFamily("Zynq 7000", Vendor.XILINX, 28)
AGILEX = ChipFamily("Agilex", Vendor.INTEL, 10)
STRATIX_10 = ChipFamily("Stratix 10", Vendor.INTEL, 14)
ARRIA_10 = ChipFamily("Arria 10", Vendor.INTEL, 20)

SUPPORTED_FAMILIES: Tuple[ChipFamily, ...] = (
    VIRTEX_ULTRASCALE_PLUS,
    VIRTEX_ULTRASCALE,
    ZYNQ_7000,
    AGILEX,
    STRATIX_10,
    ARRIA_10,
)


class PeripheralKind(enum.Enum):
    """Off-chip peripheral classes seen across the fleet."""

    QSFP28 = "qsfp28"      # 100G optical cage
    QSFP56 = "qsfp56"      # 200G optical cage
    QSFP112 = "qsfp112"    # 400G optical cage
    DSFP = "dsfp"          # dual small form-factor (2x100G)
    DDR3 = "ddr3"
    DDR4 = "ddr4"
    HBM = "hbm"
    PCIE = "pcie"
    I2C = "i2c"
    FLASH = "flash"


class PcieGeneration(enum.IntEnum):
    """PCIe generations; per-lane bandwidth doubles each generation."""

    GEN3 = 3
    GEN4 = 4
    GEN5 = 5

    @property
    def per_lane_gbps(self) -> float:
        """Effective per-lane data rate in Gbit/s (after encoding)."""
        return {3: 7.877, 4: 15.754, 5: 31.508}[int(self)]


#: Peak network rate per cage kind, in Gbit/s.
NETWORK_RATE_GBPS: Dict[PeripheralKind, float] = {
    PeripheralKind.QSFP28: 100.0,
    PeripheralKind.QSFP56: 200.0,
    PeripheralKind.QSFP112: 400.0,
    PeripheralKind.DSFP: 200.0,
}

#: Peak memory bandwidth per device kind, in GB/s (paper section 3.3.1
#: quotes 460 GB/s for HBM and 19.2 GB/s for a DDR channel).
MEMORY_BANDWIDTH_GBPS: Dict[PeripheralKind, float] = {
    PeripheralKind.DDR3: 12.8,
    PeripheralKind.DDR4: 19.2,
    PeripheralKind.HBM: 460.0,
}

#: Channel counts per memory kind (2 for DDR, 32 for HBM in the paper).
MEMORY_CHANNELS: Dict[PeripheralKind, int] = {
    PeripheralKind.DDR3: 1,
    PeripheralKind.DDR4: 1,
    PeripheralKind.HBM: 32,
}


@dataclass(frozen=True)
class Peripheral:
    """One peripheral population on a board."""

    kind: PeripheralKind
    count: int = 1
    pcie_generation: Optional[PcieGeneration] = None
    pcie_lanes: int = 0
    capacity_gib: int = 0

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("peripheral count must be >= 1")
        if self.kind is PeripheralKind.PCIE:
            if self.pcie_generation is None or self.pcie_lanes not in (8, 16):
                raise ValueError("PCIe peripherals need a generation and x8/x16 lanes")

    @property
    def network_gbps(self) -> float:
        """Aggregate network bandwidth this peripheral provides."""
        return NETWORK_RATE_GBPS.get(self.kind, 0.0) * self.count

    @property
    def memory_gbps(self) -> float:
        """Aggregate memory bandwidth this peripheral provides (GB/s)."""
        return MEMORY_BANDWIDTH_GBPS.get(self.kind, 0.0) * self.count

    @property
    def host_gbps(self) -> float:
        """Host-link bandwidth in Gbit/s for PCIe peripherals."""
        if self.kind is not PeripheralKind.PCIE or self.pcie_generation is None:
            return 0.0
        return self.pcie_generation.per_lane_gbps * self.pcie_lanes * self.count


@dataclass(frozen=True)
class FpgaDevice:
    """A deployable FPGA generation: chip + board + peripherals."""

    name: str
    chip: str
    family: ChipFamily
    board_vendor: Vendor
    budget: ResourceBudget
    peripherals: Tuple[Peripheral, ...]
    first_deployed_year: int = 2020

    @property
    def chip_vendor(self) -> Vendor:
        """The silicon vendor (decides the CAD toolchain)."""
        return self.family.vendor

    @property
    def toolchain(self) -> Toolchain:
        return default_toolchain(self.chip_vendor)

    def peripherals_of(self, kind: PeripheralKind) -> List[Peripheral]:
        return [p for p in self.peripherals if p.kind is kind]

    def has_peripheral(self, kind: PeripheralKind) -> bool:
        return any(p.kind is kind for p in self.peripherals)

    @property
    def network_gbps(self) -> float:
        """Total network cage bandwidth."""
        return sum(p.network_gbps for p in self.peripherals)

    @property
    def memory_kinds(self) -> List[PeripheralKind]:
        return [
            p.kind
            for p in self.peripherals
            if p.kind in (PeripheralKind.DDR3, PeripheralKind.DDR4, PeripheralKind.HBM)
        ]

    @property
    def pcie(self) -> Peripheral:
        """The device's PCIe link (every cloud FPGA has exactly one)."""
        links = self.peripherals_of(PeripheralKind.PCIE)
        if len(links) != 1:
            raise ValueError(f"device {self.name!r} must have exactly one PCIe link")
        return links[0]

    @property
    def host_gbps(self) -> float:
        return self.pcie.host_gbps

    def describe(self) -> str:
        """One-line human-readable summary (Table 2 row format)."""
        parts = []
        for peripheral in self.peripherals:
            if peripheral.kind is PeripheralKind.PCIE:
                parts.append(
                    f"PCIe Gen{int(peripheral.pcie_generation)}x{peripheral.pcie_lanes}"
                )
            elif peripheral.count > 1:
                parts.append(f"{peripheral.kind.value.upper()}x{peripheral.count}")
            else:
                parts.append(peripheral.kind.value.upper())
        return f"{self.name}: {self.board_vendor.value} board, {self.chip}, " + ", ".join(parts)
