"""Fleet deployment-history model (the data behind Figure 3c).

The paper motivates Harmonia with the growth of heterogeneous FPGAs in
Douyin's cloud: new device types arrive every year while the total
installed base climbs into the tens of thousands.  We model the fleet as
a sequence of yearly introduction events; counts are synthetic but
follow the paper's description (device lifecycle >= 4 years, new devices
every 1-2 years, total fleet growing every year, 2020-2024).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Introduction:
    """One device type entering the fleet."""

    year: int
    device_name: str
    units: int
    lifecycle_years: int = 4


class FleetHistory:
    """Yearly introductions and the resulting installed base."""

    def __init__(self, introductions: List[Introduction]) -> None:
        self._introductions = sorted(introductions, key=lambda item: item.year)

    @property
    def years(self) -> List[int]:
        if not self._introductions:
            return []
        first = self._introductions[0].year
        last = max(item.year for item in self._introductions)
        return list(range(first, last + 1))

    def new_device_types(self, year: int) -> int:
        """Distinct new device types introduced in ``year``."""
        return len({item.device_name for item in self._introductions if item.year == year})

    def active_units(self, year: int) -> int:
        """Installed units still inside their lifecycle in ``year``."""
        total = 0
        for item in self._introductions:
            if item.year <= year < item.year + item.lifecycle_years:
                total += item.units
        return total

    def active_introductions(self, year: int) -> List[Introduction]:
        """Introductions still inside their lifecycle in ``year``.

        Sorted by (introduction year, device name) so downstream
        consumers (the fleet simulator shards device instances from
        this list) see a deterministic order.
        """
        active = [
            item for item in self._introductions
            if item.year <= year < item.year + item.lifecycle_years
        ]
        return sorted(active, key=lambda item: (item.year, item.device_name))

    def active_device_names(self, year: int) -> List[str]:
        """Sorted distinct device types active in ``year``.

        The build farm expands this list against the role mix into its
        device x role build matrix, so the order must be deterministic.
        """
        return sorted({item.device_name
                       for item in self.active_introductions(year)})

    def device_type_count(self, year: int) -> int:
        """Distinct device types active in ``year`` (heterogeneity)."""
        active = {
            item.device_name
            for item in self._introductions
            if item.year <= year < item.year + item.lifecycle_years
        }
        return len(active)

    def growth_table(self) -> List[Tuple[int, int, int]]:
        """(year, new device types, total active units) rows (Fig 3c)."""
        return [
            (year, self.new_device_types(year), self.active_units(year))
            for year in self.years
        ]

    def is_monotonically_growing(self) -> bool:
        """True when the installed base grows every year."""
        totals = [self.active_units(year) for year in self.years]
        return all(later > earlier for earlier, later in zip(totals, totals[1:]))


def production_fleet() -> FleetHistory:
    """The 2020-2024 fleet history used by the Figure 3c bench.

    Unit counts are synthetic (the paper reports only "tens of thousands
    of FPGA accelerators") but reproduce the figure's two properties:
    one-to-several new device types per year, and a total that grows
    every year.
    """
    return FleetHistory(
        [
            Introduction(2020, "device-b", 3_000, lifecycle_years=5),
            Introduction(2020, "device-vu3p-nic", 2_000, lifecycle_years=5),
            Introduction(2020, "device-vu125-legacy", 1_000, lifecycle_years=5),
            Introduction(2021, "device-a", 5_000, lifecycle_years=5),
            Introduction(2021, "device-zynq-edge", 1_500, lifecycle_years=5),
            Introduction(2022, "device-b-rev2", 6_000, lifecycle_years=5),
            Introduction(2022, "device-a-100g", 2_500, lifecycle_years=5),
            Introduction(2023, "device-c", 7_000, lifecycle_years=5),
            Introduction(2023, "device-d", 4_000, lifecycle_years=5),
            Introduction(2024, "device-c-400g", 8_000, lifecycle_years=5),
        ]
    )
