"""Vendors, CAD toolchains, and IP packaging formats.

The vendor adapter (paper section 3.2) manages "deployment differences
related to vendors ... specific IP packaging format, compilation CAD
tools".  The structures here give those differences concrete identity so
the adapter's dependency inspection has something real to inspect.
"""

import enum
from dataclasses import dataclass
from typing import Dict, Tuple


class Vendor(enum.Enum):
    """Chip vendors present in the device fleet."""

    XILINX = "xilinx"
    INTEL = "intel"
    INHOUSE = "inhouse"


class IpPackaging(enum.Enum):
    """How a vendor packages reusable IP."""

    IP_XACT = "ip-xact"          # Xilinx (.xci wrapping IP-XACT)
    PLATFORM_DESIGNER = "qsys"   # Intel Platform Designer (.ip/.qsys)
    INTERNAL_YAML = "internal"   # in-house flow


class ScriptLanguage(enum.Enum):
    """Automation language the vendor's tools are scripted in."""

    TCL = "tcl"
    RUBY = "ruby"


@dataclass(frozen=True)
class Toolchain:
    """A vendor CAD toolchain at a specific version."""

    name: str
    vendor: Vendor
    version: str
    script_language: ScriptLanguage
    ip_packaging: IpPackaging

    def dependency_key(self) -> Tuple[str, str]:
        """The (attribute, version) pair vendor adapters inspect."""
        return (self.name, self.version)


#: Toolchains used across the reproduction.  Versions matter: the vendor
#: adapter's rigid inspection rejects IP built against a different major
#: version (a real failure mode the paper's built-in handler prevents).
VIVADO_2022_2 = Toolchain("vivado", Vendor.XILINX, "2022.2", ScriptLanguage.TCL, IpPackaging.IP_XACT)
VIVADO_2023_1 = Toolchain("vivado", Vendor.XILINX, "2023.1", ScriptLanguage.TCL, IpPackaging.IP_XACT)
QUARTUS_22_3 = Toolchain(
    "quartus", Vendor.INTEL, "22.3", ScriptLanguage.TCL, IpPackaging.PLATFORM_DESIGNER
)
QUARTUS_23_2 = Toolchain(
    "quartus", Vendor.INTEL, "23.2", ScriptLanguage.TCL, IpPackaging.PLATFORM_DESIGNER
)
INHOUSE_CAD_3_0 = Toolchain(
    "inhouse-cad", Vendor.INHOUSE, "3.0", ScriptLanguage.RUBY, IpPackaging.INTERNAL_YAML
)

DEFAULT_TOOLCHAINS: Dict[Vendor, Toolchain] = {
    Vendor.XILINX: VIVADO_2023_1,
    Vendor.INTEL: QUARTUS_23_2,
    Vendor.INHOUSE: INHOUSE_CAD_3_0,
}


def default_toolchain(vendor: Vendor) -> Toolchain:
    """The current default toolchain for a vendor."""
    return DEFAULT_TOOLCHAINS[vendor]
