"""Unified runtime: shared event engine, tracing, and metrics.

This package is the observability subsystem the rest of the tree plugs
into.  A :class:`SimContext` carries the single clock of record, a
span-based :class:`TraceBus`, and a hierarchical
:class:`MetricsRegistry`; ``sim``, ``core``, and ``apps`` components
join it explicitly (a ``context=`` argument), ambiently (``with
SimContext():``), or not at all (each then gets a private context --
the pre-runtime behaviour).

See ``docs/architecture.md`` ("Runtime & observability") for the tour.
"""

from repro.runtime.context import (
    ClockRegistry,
    SimContext,
    current_context,
    ensure_context,
    isolated_context_stack,
)
from repro.runtime.fleet import (
    FleetResult,
    FleetSimulation,
    FleetSpec,
    PolicyResult,
    TenantStats,
    run_fleet,
)
from repro.runtime.metrics import (
    CounterDictView,
    Gauge,
    GaugeDictView,
    MetricsNamespace,
    MetricsRegistry,
)
from repro.runtime.sweep import (
    PointResult,
    SweepCache,
    SweepPlan,
    SweepPoint,
    SweepResult,
    SweepRunner,
    chain_signature,
    run_plan,
    sweep_cache_key,
)
from repro.runtime.trace import Span, TraceBus

# The build farm reaches back into ``core``/``adapters``, which
# themselves import the runtime primitives above -- importing it eagerly
# here would close an import cycle before SimContext exists.  Its names
# resolve lazily on first attribute access instead (PEP 562).
_BUILDFARM_EXPORTS = frozenset({
    "ArtifactStore",
    "BuildFarm",
    "BuildPlan",
    "BuildReport",
    "BuildTarget",
    "TargetResult",
    "fleet_build_plan",
    "run_build_plan",
})

# The orchestrator pulls in ``obs.slo`` (its autoscaling feedback
# signal), which sits above the runtime primitives -- same lazy
# treatment as the build farm.
_ORCHESTRATOR_EXPORTS = frozenset({
    "DeltaMismatch",
    "EpochStats",
    "FleetState",
    "Orchestrator",
    "OrchestratorResult",
    "OrchestratorSpec",
    "run_orchestrator",
})


def __getattr__(name: str):
    if name in _BUILDFARM_EXPORTS:
        from repro.runtime import buildfarm

        return getattr(buildfarm, name)
    if name in _ORCHESTRATOR_EXPORTS:
        from repro.runtime import orchestrator

        return getattr(orchestrator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArtifactStore",
    "BuildFarm",
    "BuildPlan",
    "BuildReport",
    "BuildTarget",
    "ClockRegistry",
    "CounterDictView",
    "DeltaMismatch",
    "EpochStats",
    "FleetResult",
    "FleetSimulation",
    "FleetSpec",
    "FleetState",
    "Gauge",
    "Orchestrator",
    "OrchestratorResult",
    "OrchestratorSpec",
    "GaugeDictView",
    "MetricsNamespace",
    "MetricsRegistry",
    "PointResult",
    "PolicyResult",
    "SimContext",
    "Span",
    "SweepCache",
    "SweepPlan",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "TargetResult",
    "TenantStats",
    "TraceBus",
    "chain_signature",
    "current_context",
    "ensure_context",
    "fleet_build_plan",
    "isolated_context_stack",
    "run_build_plan",
    "run_fleet",
    "run_orchestrator",
    "run_plan",
    "sweep_cache_key",
]
