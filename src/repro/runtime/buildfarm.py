"""Fleet-wide build farm: parallel, content-addressed, incremental builds.

The paper's integration flow (section 4) tailors a shell per
(device, role) pair and invokes CAD compilation for each.  At fleet
scale that is thousands of device x role builds, so this module turns
the one-at-a-time :class:`repro.adapters.toolchain.BuildFlow` into an
orchestrated farm:

* a :class:`BuildPlan` expands a device x role matrix (typically the
  production fleet's active device types against the evaluation's
  application roles) into :class:`BuildTarget`\\ s;
* each target becomes a chain of build steps -- ``tailor`` ->
  ``wrap`` (wrapper synthesis) -> ``inspect`` (dependency check) ->
  ``configure`` -> ``fit`` -> ``package`` -- and the per-target chains
  form the build DAG (:meth:`BuildFarm.plan_dag`);
* a :class:`BuildFarm` executes the DAG on a
  ``concurrent.futures.ProcessPoolExecutor`` with **critical-path-first
  scheduling** (largest remaining compile work dispatched first, the
  LPT rule) and merges results in plan order, so reports and manifests
  are byte-identical at any worker count -- the same determinism
  contract as :class:`repro.runtime.sweep.SweepRunner`.

Two reuse layers make warm builds cheap:

1. an on-disk **content-addressed artifact store**
   (:class:`ArtifactStore`): build outputs are keyed by the sha256 of
   (device identity, role demands, module inventory, toolchain version,
   compile effort), written atomically (tempfile + ``os.replace``, like
   ``SweepCache``), and survive across processes -- a warm run skips
   whole builds;
2. intra-run **step-level memoisation**: tailoring never reads the
   device *name*, so device variants with identical hardware (fleet
   revisions, speed grades) share a tailored shell via
   :func:`repro.core.tailoring.tailor_signature`, and targets whose
   whole build key coincides are compiled once and fanned out.

Only plain strings and numbers cross the process boundary: a worker
receives (device name, role name, effort), rebuilds everything from the
catalog, and returns a JSON-compatible artifact.  The artifact's
``manifest`` half is a pure function of the build's content; wall-clock
step timings ride alongside and never enter a hash or a manifest.
"""

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.adapters.toolchain import (
    BuildFlow,
    StepTiming,
    canonical_json,
    compile_cost_units,
    module_inventory,
)
from repro.adapters.wrapper import InterfaceWrapper
from repro.core.tailoring import TailoredShell, tailor_signature
from repro.errors import ConfigurationError, HarmoniaError
from repro.metrics.resources import ResourceUsage
from repro.obs.profiler import phase as _profile_phase
from repro.platform.catalog import resolve_device
from repro.platform.fleet import production_fleet
from repro.runtime.context import SimContext

#: Content-key schema; bump to invalidate every stored artifact.
BUILD_SCHEMA = 1

#: The per-target step chain, in DAG order.
FARM_STEP_NAMES: Tuple[str, ...] = (
    "tailor", "wrap", "inspect", "configure", "fit", "package")

#: Host-software components packaged into every bundle.
DEFAULT_SOFTWARE: Tuple[str, ...] = ("driver", "runtime-lib", "health-agent")

#: Picoseconds per second (trace timestamps are integer picoseconds).
_PS_PER_S = 1_000_000_000_000


# ---------------------------------------------------------------------------
# Plan and targets
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BuildTarget:
    """One (device, role) cell of the build matrix.

    ``device`` may be a fleet-history variant name; it resolves to its
    base catalog entry (see :func:`repro.platform.catalog.resolve_device`).
    """

    device: str
    role: str

    def label(self) -> str:
        return f"{self.role}@{self.device}"


@dataclass(frozen=True)
class BuildPlan:
    """A device x role build matrix plus shared build options."""

    devices: Tuple[str, ...]
    roles: Tuple[str, ...]
    effort: int = 0
    software: Tuple[str, ...] = DEFAULT_SOFTWARE

    def __post_init__(self) -> None:
        if not self.devices or not self.roles:
            raise ConfigurationError(
                "a build plan needs at least one device and one role")
        if self.effort < 0:
            raise ConfigurationError("build effort must be >= 0")

    def expand(self) -> List[BuildTarget]:
        """The matrix in canonical (device, role) order."""
        return [BuildTarget(device=device, role=role)
                for device in self.devices for role in self.roles]

    def __len__(self) -> int:
        return len(self.devices) * len(self.roles)

    @classmethod
    def from_scenario(cls, scenario) -> "BuildPlan":
        """Build the plan a build-kind :class:`repro.scenario.Scenario`
        describes.

        Explicit ``devices`` make an explicit matrix; an empty device
        list means "the production fleet's active types for the
        scenario's year" (the :func:`fleet_build_plan` path).  An empty
        app list means all registered applications either way.
        """
        if scenario.kind != "build":
            raise ConfigurationError(
                f"scenario kind {scenario.kind!r} cannot drive a build plan")
        roles = tuple(scenario.apps) if scenario.apps else None
        software = tuple(scenario.build.software)
        if scenario.devices:
            if roles is None:
                from repro.apps import all_applications

                roles = tuple(app.name for app in all_applications())
            return cls(devices=tuple(scenario.devices), roles=roles,
                       effort=scenario.build.effort, software=software)
        return fleet_build_plan(year=scenario.year, roles=roles,
                                effort=scenario.build.effort,
                                software=software)


def fleet_build_plan(year: int = 2024, roles: Optional[Sequence[str]] = None,
                     effort: int = 0,
                     software: Sequence[str] = DEFAULT_SOFTWARE) -> BuildPlan:
    """The production fleet's build matrix for one deployment year.

    Devices are every type active in ``year`` (variant names included:
    their builds deduplicate onto the base type's content key); roles
    default to the five evaluation applications.
    """
    if roles is None:
        from repro.apps import all_applications

        roles = tuple(app.name for app in all_applications())
    devices = tuple(production_fleet().active_device_names(year))
    if not devices:
        raise ConfigurationError(f"no fleet devices active in {year}")
    return BuildPlan(devices=devices, roles=tuple(roles), effort=effort,
                     software=tuple(software))


# ---------------------------------------------------------------------------
# Content-addressed artifact store
# ---------------------------------------------------------------------------

class ArtifactStore:
    """Content-addressed build artifacts, on disk or in memory.

    With a ``root`` directory every artifact lands in
    ``<root>/<key>.json``, written atomically (tempfile +
    ``os.replace``) so an interrupted run leaves either the old artifact
    or the new one -- never a truncated file.  A file that *is* corrupt
    (e.g. predates atomic writes, or was hand-edited) raises
    :class:`ConfigurationError` naming the path rather than surfacing a
    bare JSON traceback.  Without a root the store is a plain in-memory
    dict with the same interface.

    A lock serialises in-memory reads/writes and the hit/miss counters,
    so one store can stay resident in a serving daemon and be shared by
    concurrent request threads (the on-disk path is already atomic).
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root
        if root is not None:
            os.makedirs(root, exist_ok=True)
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, key + ".json")

    def __len__(self) -> int:
        if self.root is None:
            return len(self._memory)
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """Fetch one artifact; ``None`` (a miss) when absent."""
        if self.root is None:
            with self._lock:
                entry = self._memory.get(key)
        else:
            path = self._path(key)
            try:
                with open(path, encoding="utf-8") as handle:
                    try:
                        entry = json.load(handle)
                    except ValueError as error:
                        raise ConfigurationError(
                            f"{path} is not a build artifact (corrupt or "
                            f"truncated JSON: {error})"
                        ) from None
            except FileNotFoundError:
                entry = None
        if entry is not None and (not isinstance(entry, dict)
                                  or "manifest" not in entry):
            source = key if self.root is None else self._path(key)
            raise ConfigurationError(
                f"{source} is not a build artifact (no manifest)")
        if entry is None:
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return entry

    def store(self, key: str, entry: Dict[str, Any]) -> None:
        """Persist one artifact under its content key (atomic on disk)."""
        if "manifest" not in entry:
            raise ConfigurationError("a build artifact needs a manifest")
        if self.root is None:
            with self._lock:
                self._memory[key] = dict(entry)
            return
        path = self._path(key)
        handle = tempfile.NamedTemporaryFile(
            "w", dir=self.root, prefix=key + ".", suffix=".tmp",
            delete=False, encoding="utf-8",
        )
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True,
                          separators=(",", ":"))
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise


# ---------------------------------------------------------------------------
# One build (worker side)
# ---------------------------------------------------------------------------

#: Process-wide tailored-shell memo keyed by the tailor-signature hash.
#: Device variants sharing hardware resolve to one entry; pool workers
#: forked from a parent that already resolved the plan inherit it warm.
#: :data:`_MEMO_LOCK` guards this memo, :data:`_TAILOR_FAILED`, and
#: :data:`_RESOLVE_MEMO`: the serving daemon resolves builds from
#: concurrent request threads, and interleaved dict writes must not be
#: able to corrupt an entry or double-count a failure.
_TAILOR_MEMO: Dict[str, TailoredShell] = {}

_MEMO_LOCK = threading.Lock()


def _tailor_key(device, demands) -> str:
    payload = canonical_json(tailor_signature(device, demands))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


#: Tailor-signature hashes known to be incompatible, with the original
#: message.  Tailoring is deterministic, so a pair that failed once
#: fails identically forever -- re-running module selection for it on
#: every plan resolution would dominate warm-path time.
_TAILOR_FAILED: Dict[str, str] = {}


def _tailored_shell(device, app) -> Tuple[str, TailoredShell, bool]:
    """Tailor (or reuse) the shell for ``app`` on ``device``.

    Returns (tailor key, shell, memo hit?).  Raises
    :class:`repro.errors.TailoringError` for incompatible pairs.
    """
    from repro.errors import TailoringError

    key = _tailor_key(device, app.role().demands)
    with _MEMO_LOCK:
        shell = _TAILOR_MEMO.get(key)
        if shell is not None:
            return key, shell, True
        failure = _TAILOR_FAILED.get(key)
    if failure is not None:
        raise TailoringError(failure)
    # Tailoring is deterministic: two threads racing here compute
    # interchangeable shells (or identical failures); first store wins.
    try:
        shell = app.tailored_shell(device)
    except TailoringError as error:
        with _MEMO_LOCK:
            _TAILOR_FAILED.setdefault(key, str(error))
        raise
    with _MEMO_LOCK:
        shell = _TAILOR_MEMO.setdefault(key, shell)
    return key, shell, False


def build_one(device_name: str, role_name: str, effort: int = 0,
              software: Tuple[str, ...] = DEFAULT_SOFTWARE) -> Dict[str, Any]:
    """Run the full step chain for one (device, role) build.

    Pure function of its arguments (plus the catalog): the returned
    artifact's ``manifest`` is deterministic; ``steps`` carry this run's
    wall-clock timings (perf-counter seconds, for the build Gantt) and
    never enter the manifest.  Raises :class:`HarmoniaError` subclasses
    on tailoring/integration failures.
    """
    from repro.apps import application_by_name
    from repro.core.manifest import shell_manifest

    clock = time.perf_counter
    started = clock()
    device = resolve_device(device_name)
    app = application_by_name(role_name)
    role = app.role()
    project_name = f"{role.name}-{device.name}"
    steps: List[Dict[str, Any]] = []

    def _record(step: str, start: float) -> None:
        steps.append({"step": step, "start_s": start,
                      "wall_s": clock() - start})

    with _profile_phase("buildfarm.build"):
        start = clock()
        with _profile_phase("buildfarm.step"):
            _, shell, _ = _tailored_shell(device, app)
        _record("tailor", start)

        start = clock()
        with _profile_phase("buildfarm.step"):
            wrapper = InterfaceWrapper()
            modules = shell.modules()
            wrapped = [wrapper.wrap(ip) for ip in modules if ip.interfaces]
            wrapper_total = ResourceUsage.total(item.resources
                                                for item in wrapped)
        _record("wrap", start)

        flow = BuildFlow(device)
        start = clock()
        with _profile_phase("buildfarm.step"):
            flow.step_inspect(project_name, modules)
        _record("inspect", start)

        start = clock()
        with _profile_phase("buildfarm.step"):
            flow.step_configure(modules)
        _record("configure", start)

        start = clock()
        with _profile_phase("buildfarm.step"):
            total, timing_report = flow.step_fit(
                project_name, modules,
                extra_resources=wrapper_total + role.resources,
                effort=effort)
        _record("fit", start)

        start = clock()
        with _profile_phase("buildfarm.step"):
            bundle = flow.step_package(project_name, modules, total,
                                       software_components=tuple(software))
        _record("package", start)

    manifest = {
        "schema": BUILD_SCHEMA,
        "target": {"device": device.name, "role": role.name},
        "bundle": {
            "name": bundle.name,
            "artifact_id": bundle.artifact_id,
            "checksum": bundle.bitstream.checksum,
            "toolchain": bundle.bitstream.toolchain,
            "module_names": list(bundle.bitstream.module_names),
            "resources": bundle.bitstream.resources.as_dict(),
            "static_config": bundle.bitstream.static_config,
            "dynamic_config": bundle.bitstream.dynamic_config,
            "software": list(bundle.software_components),
        },
        "wrapper_resources": wrapper_total.as_dict(),
        "timing_model": timing_report.to_json(),
        "shell": shell_manifest(shell),
    }
    return {
        "manifest": manifest,
        "steps": steps,
        "start_s": started,
        "wall_s": clock() - started,
    }


#: Failure kinds that mark a (device, role) pair as *incompatible*: the
#: pair cannot be served no matter how often it is rebuilt (tailoring
#: rejected it, or the tailored design exceeds the device budget).  They
#: stay out of ``build.failed``, which counts unexpected breakage only.
_INCOMPATIBLE_KINDS = frozenset({"TailoringError", "DeploymentError",
                                 "ResourceExhaustedError"})

#: Process-wide memo of *incompatible* build outcomes keyed by content
#: key.  The build is a pure function of its key, so once a (device,
#: role) pair has proven unfit there is no point re-running the flow
#: just to watch it fail the same way; the artifact store deliberately
#: never caches failures, so without this memo every warm re-run would
#: re-execute them.  Unexpected (``failed``) kinds are *not* memoised:
#: they stay re-runnable.
_BUILD_FAILED: Dict[str, Dict[str, str]] = {}


def _execute_build(spec: Tuple[str, str, int, Tuple[str, ...]]) -> Dict[str, Any]:
    """Worker entry: build one target, mapping failures to JSON."""
    device_name, role_name, effort, software = spec
    try:
        return build_one(device_name, role_name, effort=effort,
                         software=software)
    except HarmoniaError as error:
        return {"error": f"{type(error).__name__}: {error}",
                "kind": type(error).__name__}


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TargetResult:
    """One build target's outcome plus its cache/memo provenance.

    ``status`` is one of ``built`` (compiled in this run), ``shared``
    (identical content key as an earlier target in this run),
    ``cached`` (served from the artifact store), ``incompatible``
    (tailoring rejected the device x role pair, or the tailored design
    does not fit the device -- a property of the matrix, rebuilt or
    not) or ``failed`` (a build step raised unexpectedly).
    """

    target: BuildTarget
    status: str
    build_key: str = ""
    manifest: Optional[Dict[str, Any]] = None
    error: str = ""
    steps: Tuple[StepTiming, ...] = ()
    wall_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.manifest is not None


class BuildReport:
    """Deterministically merged outcome of one :class:`BuildFarm` run."""

    def __init__(self, plan: BuildPlan, targets: List[TargetResult],
                 workers: int, tailor_memo_hits: int) -> None:
        self.plan = plan
        self.targets = targets
        self.workers = workers
        self.tailor_memo_hits = tailor_memo_hits

    def __len__(self) -> int:
        return len(self.targets)

    def count(self, status: str) -> int:
        return sum(1 for result in self.targets if result.status == status)

    @property
    def built(self) -> int:
        return self.count("built")

    @property
    def cached(self) -> int:
        return self.count("cached")

    @property
    def shared(self) -> int:
        return self.count("shared")

    @property
    def failed(self) -> int:
        return self.count("failed")

    @property
    def incompatible(self) -> int:
        return self.count("incompatible")

    def manifests_jsonl(self) -> str:
        """Every successful target's manifest, one canonical line each.

        A pure function of (plan, store state): byte-identical no matter
        how many workers executed the run -- the determinism artifact
        the benchmark and tests diff.
        """
        lines = [
            canonical_json({"target": result.target.label(),
                            "build_key": result.build_key,
                            "manifest": result.manifest})
            for result in self.targets if result.ok
        ]
        return "".join(line + "\n" for line in lines)

    def to_json(self) -> Dict[str, Any]:
        """Deterministic summary: no wall-clock, no worker count."""
        return {
            "plan": {
                "devices": list(self.plan.devices),
                "roles": list(self.plan.roles),
                "effort": self.plan.effort,
                "software": list(self.plan.software),
            },
            "targets": [
                {
                    "device": result.target.device,
                    "role": result.target.role,
                    "status": result.status,
                    "build_key": result.build_key,
                    "checksum": (result.manifest["bundle"]["checksum"]
                                 if result.ok else ""),
                    "error": result.error,
                }
                for result in self.targets
            ],
        }


# ---------------------------------------------------------------------------
# DAG introspection
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BuildStepNode:
    """One node of the build DAG (for scheduling and introspection)."""

    node_id: str
    step: str
    targets: Tuple[str, ...]      # labels of the targets this node serves
    deps: Tuple[str, ...]
    cost_units: int


@dataclass(frozen=True)
class _Resolved:
    """Parent-side resolution of one target (before any dispatch)."""

    target: BuildTarget
    base_device: str = ""
    tailor_key: str = ""
    build_key: str = ""
    cost_units: int = 0
    error: str = ""


#: Process-wide resolution memo keyed by (base device, role, effort,
#: software): content keys and costs are pure functions of the immutable
#: catalog, so repeated farm runs (warm reruns, yearly matrices sharing
#: device types) skip straight to the stored keys.
_RESOLVE_MEMO: Dict[Tuple[str, str, int, Tuple[str, ...]], _Resolved] = {}


def _count_tailor_key(seen: Dict[str, int], tailor_key: str) -> None:
    """Track per-run tailor-key reuse (first sight is not a hit)."""
    if tailor_key in seen:
        seen[tailor_key] += 1
    else:
        seen[tailor_key] = 0


# ---------------------------------------------------------------------------
# The farm
# ---------------------------------------------------------------------------

class BuildFarm:
    """Executes a :class:`BuildPlan` across workers with artifact reuse.

    ``workers=1`` (the default) builds in-process with no pool;
    ``workers=N`` fans cold builds out over a ``ProcessPoolExecutor``,
    dispatching the largest compile chains first (critical-path-first:
    every per-target chain is an independent path through the DAG, so
    its remaining cost *is* its critical path, and longest-first
    minimises makespan).  Results merge in plan order either way, so
    worker count is invisible in every report and manifest.
    """

    def __init__(self, plan: BuildPlan, workers: int = 1,
                 store: Optional[ArtifactStore] = None,
                 use_cache: bool = True,
                 context: Optional[SimContext] = None) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.plan = plan
        self.workers = workers
        self.store = store if store is not None else ArtifactStore()
        self.use_cache = use_cache
        self.context = context

    # --- parent-side resolution --------------------------------------------

    def _resolve(self, target: BuildTarget,
                 seen_tailor_keys: Dict[str, int]) -> _Resolved:
        try:
            device = resolve_device(target.device)
        except KeyError as error:
            raise ConfigurationError(str(error)) from None
        # Resolution is a pure function of (base device, role, effort,
        # software) -- the catalog is immutable -- so the derived keys
        # and cost are memoised process-wide, like the tailored shells
        # themselves.  Only the per-run bookkeeping stays outside.
        memo_key = (device.name, target.role, self.plan.effort,
                    self.plan.software)
        with _MEMO_LOCK:
            template = _RESOLVE_MEMO.get(memo_key)
        if template is not None:
            resolved = dataclasses.replace(template, target=target)
            if resolved.tailor_key:
                _count_tailor_key(seen_tailor_keys, resolved.tailor_key)
            return resolved
        resolved = self._resolve_fresh(target, device)
        with _MEMO_LOCK:
            _RESOLVE_MEMO.setdefault(memo_key, resolved)
        if resolved.tailor_key:
            _count_tailor_key(seen_tailor_keys, resolved.tailor_key)
        return resolved

    def _resolve_fresh(self, target: BuildTarget, device) -> _Resolved:
        from repro.apps import application_by_name

        app = application_by_name(target.role)
        role = app.role()
        try:
            tailor_key, shell, _memo_hit = _tailored_shell(device, app)
        except HarmoniaError as error:
            return _Resolved(target=target,
                             error=f"{type(error).__name__}: {error}")
        modules = shell.modules()
        total = ResourceUsage.total(ip.resources for ip in modules)
        content = {
            "schema": BUILD_SCHEMA,
            "device": {
                "name": device.name,
                "chip": device.chip,
                "family": device.family.name,
                "board_vendor": device.board_vendor.value,
            },
            "role": {
                "name": role.name,
                "architecture": role.architecture.value,
                "resources": role.resources.as_dict(),
            },
            "tailor": tailor_key,
            "modules": module_inventory(modules),
            "toolchain": f"{device.toolchain.name}-{device.toolchain.version}",
            "effort": self.plan.effort,
            "software": list(self.plan.software),
        }
        build_key = hashlib.sha256(
            canonical_json(content).encode("utf-8")).hexdigest()
        return _Resolved(
            target=target, base_device=device.name, tailor_key=tailor_key,
            build_key=build_key,
            cost_units=compile_cost_units(modules, total),
        )

    def _resolve_all(self) -> Tuple[List[_Resolved], int]:
        seen: Dict[str, int] = {}
        with _profile_phase("buildfarm.plan"):
            resolved = [self._resolve(target, seen)
                        for target in self.plan.expand()]
        return resolved, sum(seen.values())

    def plan_dag(self) -> List[BuildStepNode]:
        """The build DAG: shared tailor nodes feeding per-build chains.

        Targets with equal build keys collapse onto one chain; chains
        with equal tailor keys share their ``tailor`` root.  Node order
        is deterministic (plan order of first appearance).
        """
        resolved, _ = self._resolve_all()
        nodes: List[BuildStepNode] = []
        tailor_nodes: Dict[str, int] = {}
        chains: Dict[str, int] = {}
        labels: Dict[str, List[str]] = {}
        for item in resolved:
            if item.error:
                continue
            labels.setdefault(item.build_key, []).append(item.target.label())
        for item in resolved:
            if item.error or item.build_key in chains:
                continue
            chains[item.build_key] = 1
            served = tuple(labels[item.build_key])
            tailor_id = f"tailor:{item.tailor_key[:12]}"
            if item.tailor_key not in tailor_nodes:
                tailor_nodes[item.tailor_key] = 1
                nodes.append(BuildStepNode(
                    node_id=tailor_id, step="tailor", targets=served,
                    deps=(), cost_units=0))
            previous = tailor_id
            for step in FARM_STEP_NAMES[1:]:
                node_id = f"{step}:{item.build_key[:12]}"
                cost = item.cost_units if step == "fit" else 0
                nodes.append(BuildStepNode(
                    node_id=node_id, step=step, targets=served,
                    deps=(previous,), cost_units=cost))
                previous = node_id
        return nodes

    # --- execution ----------------------------------------------------------

    def run(self) -> BuildReport:
        resolved, memo_hits = self._resolve_all()
        farm_start = time.perf_counter()

        entries: Dict[str, Dict[str, Any]] = {}
        statuses: Dict[int, str] = {}
        pending: List[int] = []
        for index, item in enumerate(resolved):
            if item.error:
                statuses[index] = "incompatible"
                continue
            with _MEMO_LOCK:
                memoised_failure = _BUILD_FAILED.get(item.build_key)
            if memoised_failure is not None:
                entries[item.build_key] = dict(memoised_failure)
                statuses[index] = "failed"  # reclassified from the entry
                continue
            entry = self.store.lookup(item.build_key) if self.use_cache else None
            if entry is not None:
                entries[item.build_key] = entry
                statuses[index] = "cached"
            elif item.build_key in entries or any(
                    resolved[j].build_key == item.build_key for j in pending):
                statuses[index] = "shared"
            else:
                pending.append(index)
                statuses[index] = "built"

        if pending:
            # Critical-path-first: each pending chain's remaining work is
            # its compile cost, so dispatch the heaviest chains first.
            ordered = sorted(pending,
                             key=lambda i: (-resolved[i].cost_units, i))
            if self.workers > 1:
                self._run_pooled(ordered, resolved, entries)
            else:
                for index in ordered:
                    item = resolved[index]
                    entries[item.build_key] = _execute_build(
                        (item.base_device, item.target.role,
                         self.plan.effort, self.plan.software))
            for index in pending:
                key = resolved[index].build_key
                entry = entries[key]
                if "error" in entry:
                    if entry.get("kind") in _INCOMPATIBLE_KINDS:
                        with _MEMO_LOCK:
                            _BUILD_FAILED[key] = {"error": entry["error"],
                                                  "kind": entry["kind"]}
                elif self.use_cache:
                    self.store.store(
                        key, {"schema": BUILD_SCHEMA,
                              "manifest": entry["manifest"]})

        results: List[TargetResult] = []
        for index, item in enumerate(resolved):
            status = statuses[index]
            if status == "incompatible":
                results.append(TargetResult(target=item.target,
                                            status=status, error=item.error))
                continue
            entry = entries[item.build_key]
            if "error" in entry:
                outcome = ("incompatible"
                           if entry.get("kind") in _INCOMPATIBLE_KINDS
                           else "failed")
                results.append(TargetResult(
                    target=item.target, status=outcome,
                    build_key=item.build_key, error=entry["error"]))
                continue
            steps = tuple(
                StepTiming(step["step"], step["wall_s"])
                for step in entry.get("steps", ())
            ) if status == "built" else ()
            results.append(TargetResult(
                target=item.target, status=status,
                build_key=item.build_key, manifest=entry["manifest"],
                steps=steps, wall_s=entry.get("wall_s", 0.0)
                if status == "built" else 0.0,
            ))
        report = BuildReport(self.plan, results, self.workers, memo_hits)
        self._publish(report, resolved, entries, farm_start)
        return report

    def _run_pooled(self, ordered: List[int], resolved: List[_Resolved],
                    entries: Dict[str, Dict[str, Any]]) -> None:
        """Fan pending chains out over a process pool, heaviest first."""
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {}
            for index in ordered:
                item = resolved[index]
                future = pool.submit(_execute_build, (
                    item.base_device, item.target.role,
                    self.plan.effort, self.plan.software))
                futures[future] = item.build_key
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    entries[futures[future]] = future.result()

    # --- observability -------------------------------------------------------

    def _publish(self, report: BuildReport, resolved: List[_Resolved],
                 entries: Dict[str, Dict[str, Any]],
                 farm_start: float) -> None:
        """Fold the run into the context's metrics and trace (if any)."""
        context = self.context
        if context is None:
            return
        metrics = context.metrics
        metrics.increment("build.targets", len(report))
        for status in ("built", "cached", "shared", "failed", "incompatible"):
            count = report.count(status)
            if count:
                metrics.increment(f"build.{status}", count)
        metrics.increment("build.store.hits", self.store.hits)
        metrics.increment("build.store.misses", self.store.misses)
        if report.tailor_memo_hits:
            metrics.increment("build.memo.tailor_hits",
                              report.tailor_memo_hits)
        metrics.set_gauge("build.unique_builds",
                          len({item.build_key for item in resolved
                               if item.build_key}))

        executed = [result for result in report.targets
                    if result.status == "built"]
        raw = {item.build_key: entries.get(item.build_key, {})
               for item in resolved if item.build_key}
        base = min((raw[result.build_key].get("start_s", farm_start)
                    for result in executed), default=farm_start)

        for result in report.targets:
            attrs = {"device": result.target.device,
                     "role": result.target.role}
            if result.status == "built":
                entry = raw[result.build_key]
                start = max(0.0, entry.get("start_s", base) - base)
                span_id = context.trace.complete(
                    "build.target",
                    int(start * _PS_PER_S),
                    int((start + entry.get("wall_s", 0.0)) * _PS_PER_S),
                    status=result.status, **attrs)
                metrics.observe("build.target.wall_ps",
                                int(entry.get("wall_s", 0.0) * _PS_PER_S))
                for step in entry.get("steps", ()):
                    step_start = max(0.0, step["start_s"] - base)
                    context.trace.complete(
                        "build." + step["step"],
                        int(step_start * _PS_PER_S),
                        int((step_start + step["wall_s"]) * _PS_PER_S),
                        parent=span_id, **attrs)
                    metrics.observe(f"build.step.{step['step']}.wall_ps",
                                    int(step["wall_s"] * _PS_PER_S))
            elif result.status in ("cached", "shared"):
                context.trace.instant("build." + result.status,
                                      ts_ps=0, **attrs)
            else:
                context.trace.instant("build." + result.status, ts_ps=0,
                                      error=result.error, **attrs)


def run_build_plan(plan: BuildPlan, workers: int = 1,
                   store: Optional[ArtifactStore] = None,
                   use_cache: bool = True,
                   context: Optional[SimContext] = None) -> BuildReport:
    """Convenience wrapper: build a farm and run the plan once."""
    return BuildFarm(plan, workers=workers, store=store,
                     use_cache=use_cache, context=context).run()
