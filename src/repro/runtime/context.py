"""The unified simulation runtime context.

A :class:`SimContext` bundles the four things every layer of the stack
previously improvised for itself:

* the **event engine** -- one :class:`repro.sim.engine.Simulator`, the
  single clock of record (this module is the only place in the tree
  that constructs a bare ``Simulator()``);
* a **clock-domain registry** -- named, memoised
  :class:`repro.sim.clock.ClockDomain` instances, so two modules asking
  for ``"cmac_core"`` get the *same* domain or a loud error on a
  frequency mismatch;
* a **trace bus** -- :class:`repro.runtime.trace.TraceBus` span/instant
  events with integer-ps timestamps and JSONL export;
* a **metrics registry** --
  :class:`repro.runtime.metrics.MetricsRegistry`, the one scrape point
  for counters/gauges/histograms.

Context resolution
------------------

Components resolve their context with :func:`ensure_context`:

1. an explicitly passed context wins;
2. otherwise the innermost *ambient* context (``with SimContext(...):``)
   is joined, which is how one run shares a clock and one trace across
   layers;
3. otherwise a fresh private context is created -- exactly the
   one-engine-per-component behaviour the pre-runtime code had, so
   existing constructors keep working unchanged.
"""

import contextlib
import threading
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.trace import TraceBus
from repro.sim.clock import ClockDomain
from repro.sim.engine import Simulator


class _AmbientStacks(threading.local):
    """Innermost-last stack of ambient contexts, one per thread.

    ``with SimContext():`` is a dynamically scoped binding, and dynamic
    scope follows the call stack -- which is per thread.  A process-wide
    list would let one serving-daemon request's ``isolated_context_stack``
    save/clear/restore race another request's ``activate``; per-thread
    stacks make ambient resolution immune to concurrent requests while
    staying invisible to single-threaded callers.
    """

    def __init__(self) -> None:
        self.stack: List["SimContext"] = []


_AMBIENT = _AmbientStacks()


def _active() -> List["SimContext"]:
    return _AMBIENT.stack


class ClockRegistry:
    """Named clock domains; one definition per name per context."""

    def __init__(self) -> None:
        self._domains = {}

    def domain(self, name: str, freq_mhz: Optional[float] = None) -> ClockDomain:
        """Fetch (or, given a frequency, create) the domain ``name``."""
        existing = self._domains.get(name)
        if existing is not None:
            if freq_mhz is not None and existing.freq_mhz != freq_mhz:
                raise ConfigurationError(
                    f"clock domain {name!r} already registered at "
                    f"{existing.freq_mhz:g} MHz, not {freq_mhz:g} MHz"
                )
            return existing
        if freq_mhz is None:
            raise ConfigurationError(f"unknown clock domain {name!r}")
        domain = ClockDomain(name, freq_mhz)
        self._domains[name] = domain
        return domain

    def register(self, domain: ClockDomain) -> ClockDomain:
        """Adopt an externally built domain (same name must agree)."""
        return self.domain(domain.name, domain.freq_mhz) if (
            domain.name in self._domains
        ) else self._domains.setdefault(domain.name, domain)

    def names(self) -> List[str]:
        return sorted(self._domains)

    def __contains__(self, name: str) -> bool:
        return name in self._domains

    def __len__(self) -> int:
        return len(self._domains)


class SimContext:
    """Owns the engine, clocks, trace bus, and metrics for one run."""

    def __init__(self, name: str = "sim", trace: bool = False) -> None:
        self.name = name
        self.simulator = Simulator()
        self.clocks = ClockRegistry()
        self.trace = TraceBus(clock_ps=lambda: self.simulator.now_ps,
                              enabled=trace)
        self.metrics = MetricsRegistry()
        self._dispatch_span_depth = 0

    # --- clock of record ----------------------------------------------------

    @property
    def now_ps(self) -> int:
        return self.simulator.now_ps

    def run(self, until_ps: Optional[int] = None,
            max_events: Optional[int] = None) -> int:
        """Run the shared engine (see :meth:`Simulator.run`)."""
        return self.simulator.run(until_ps=until_ps, max_events=max_events)

    # --- engine tracing -----------------------------------------------------

    def trace_dispatches(self) -> None:
        """Mirror every engine event dispatch onto the trace bus.

        Off by default -- per-event instants are the firehose setting;
        span-level tracing is the everyday one.
        """
        self.simulator.add_dispatch_hook(self._on_dispatch)

    def _on_dispatch(self, time_ps: int, seq: int) -> None:
        self.trace.instant("engine.dispatch", ts_ps=time_ps, seq=seq)

    # --- ambient management -------------------------------------------------

    def activate(self) -> "SimContext":
        _active().append(self)
        return self

    def deactivate(self) -> None:
        if not _active() or _active()[-1] is not self:
            raise ConfigurationError(
                "SimContext deactivated out of order; use it as a "
                "context manager"
            )
        _active().pop()

    def __enter__(self) -> "SimContext":
        return self.activate()

    def __exit__(self, *_exc: object) -> None:
        self.deactivate()

    def __repr__(self) -> str:
        return (f"SimContext({self.name!r}, now={self.simulator.now_ps}ps, "
                f"trace={'on' if self.trace.enabled else 'off'}, "
                f"metrics={len(self.metrics)})")


def current_context() -> Optional[SimContext]:
    """The innermost ambient context of the calling thread, if any."""
    stack = _active()
    return stack[-1] if stack else None


@contextlib.contextmanager
def isolated_context_stack() -> Iterator[None]:
    """Temporarily hide the calling thread's ambient contexts.

    Inside the block, :func:`current_context` returns ``None`` no matter
    what ``with SimContext():`` blocks enclose the caller.  The sweep
    runner uses this so an in-process (``workers=1``) run resolves
    contexts exactly like a worker process would -- a freshly spawned
    worker has an empty ambient stack, and determinism across worker
    counts depends on the serial path seeing the same thing.  Stacks are
    per thread, so hiding this thread's contexts never disturbs a
    concurrent request's.
    """
    stack = _active()
    saved = stack[:]
    stack.clear()
    try:
        yield
    finally:
        stack[:] = saved


def ensure_context(context: Optional[SimContext] = None) -> SimContext:
    """Resolve the context a component should join (see module docs)."""
    if context is not None:
        return context
    ambient = current_context()
    if ambient is not None:
        return ambient
    return SimContext(name="private")
