"""Fleet-scale serving simulator (millions of flows, thousands of FPGAs).

The ROADMAP north star is a system that "serves heavy traffic from
millions of users ... as fast as the hardware allows", and the paper's
Figure 3c motivates Harmonia with a fleet of tens of thousands of
heterogeneous FPGAs.  This module exercises exactly that regime: a
Zipf-skewed :class:`~repro.workloads.flows.FlowSet` of millions of
flows is sharded across device instances derived from
:func:`repro.platform.fleet.production_fleet`, under pluggable
load-balancing policies, with partial-reconfiguration slot pressure
(:func:`repro.core.multitenancy.residency_matrix`) deciding which
tenants serve from resident bitstreams and which pay a reconfiguration.

Everything is closed-form numpy over per-flow arrays -- the same
philosophy as :mod:`repro.sim.vector` one level up the stack -- so a
1M-flow x 1k-device x 3-policy run completes in seconds:

* per-flow offered rate = Zipf weight x (offered_load x fleet capacity);
* a policy maps flows to device instances (``round-robin``,
  ``flow-hash`` affinity, or greedy ``least-loaded`` normalised by
  device capacity -- flows arrive heaviest-first, so the greedy pass is
  the classic LPT heuristic);
* per-device utilisation and per-(device, tenant) load fall out of
  ``np.bincount``; the ``slots_per_device`` heaviest tenants on each
  device keep their partial bitstreams resident;
* per-flow latency = base + store-and-forward service + an M/M/1-style
  queueing term that saturates at the knee + an overload penalty past
  rho = 1 + a reconfiguration penalty for non-resident tenants.

Results flow into the ambient :class:`~repro.runtime.context.SimContext`
metrics registry under ``fleet.<policy>.*`` and a span per policy on
the trace bus; ``python -m repro.cli fleet`` is the operator entry
point and the report grows a fleet section when ``BENCH_fleet.json``
is present.
"""

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

try:  # numpy is a declared dependency, but degrade instead of crashing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.core.multitenancy import (
    PartialReconfigManager,
    even_slot_budgets,
    residency_matrix,
)
from repro.errors import ConfigurationError
from repro.obs.profiler import phase as _profile_phase
from repro.platform.catalog import device_by_name
from repro.platform.fleet import FleetHistory, production_fleet
from repro.runtime.context import SimContext, ensure_context
from repro.workloads.flows import flow_hashes32, zipf_weights_array

#: Load-balancing policies the simulator understands.
POLICIES: Tuple[str, ...] = ("round-robin", "least-loaded", "flow-hash")

#: Fixed host-side latency every packet pays (PCIe + ToR + host stack), ns.
BASE_LATENCY_NS = 2_000.0
#: Amortised partial-reconfiguration stall for a non-resident tenant, ns.
PR_PENALTY_NS = 25_000.0
#: Extra delay per unit of over-subscription past rho = 1, ns.
OVERLOAD_PENALTY_NS = 200_000.0
#: The queueing term saturates here instead of diverging at rho -> 1.
RHO_KNEE = 0.95
#: Network speed assumed for fleet entries the catalog cannot price.
FALLBACK_GBPS = 25.0


@dataclass(frozen=True)
class FleetSpec:
    """Size and shape of one fleet serving scenario."""

    flow_count: int = 1_000_000
    device_count: int = 1_024
    tenant_count: int = 16
    slots_per_device: int = 4
    alpha: float = 1.05
    offered_load: float = 0.65
    mean_packet_bytes: int = 512
    seed: int = 2_025
    year: int = 2_024

    def __post_init__(self) -> None:
        if self.flow_count < 1:
            raise ConfigurationError("need at least one flow")
        if self.device_count < 1:
            raise ConfigurationError("need at least one device instance")
        if self.tenant_count < 1:
            raise ConfigurationError("need at least one tenant")
        if self.slots_per_device < 1:
            raise ConfigurationError("need at least one PR slot per device")
        if self.alpha <= 0:
            raise ConfigurationError("Zipf alpha must be positive")
        if not 0.0 < self.offered_load:
            raise ConfigurationError("offered load must be positive")
        if self.mean_packet_bytes < 1:
            raise ConfigurationError("mean packet size must be positive")

    @classmethod
    def from_scenario(cls, scenario) -> "FleetSpec":
        """Build the spec a fleet-kind :class:`repro.scenario.Scenario`
        describes: the tenancy section plus the shared seed and year."""
        if scenario.kind != "fleet":
            raise ConfigurationError(
                f"scenario kind {scenario.kind!r} cannot drive a fleet spec")
        tenancy = scenario.tenancy
        return cls(
            flow_count=tenancy.flow_count,
            device_count=tenancy.device_count,
            tenant_count=tenancy.tenant_count,
            slots_per_device=tenancy.slots_per_device,
            alpha=tenancy.alpha,
            offered_load=tenancy.offered_load,
            mean_packet_bytes=tenancy.mean_packet_bytes,
            seed=scenario.seed,
            year=scenario.year,
        )


@dataclass(frozen=True)
class DeviceGroup:
    """All instances of one fleet device type."""

    device_name: str
    instances: int
    capacity_gbps: float
    first_index: int

    def label(self, local_index: int) -> str:
        return f"{self.device_name}[{local_index}]"


@dataclass(frozen=True)
class TenantStats:
    """One tenant's share of the fleet under one policy."""

    tenant: int
    flows: int
    offered_gbps: float
    p50_ns: float
    p99_ns: float

    def to_json(self) -> Dict[str, float]:
        return {
            "tenant": self.tenant,
            "flows": self.flows,
            "offered_gbps": round(self.offered_gbps, 6),
            "p50_ns": round(self.p50_ns, 3),
            "p99_ns": round(self.p99_ns, 3),
        }


@dataclass(frozen=True)
class PolicyResult:
    """Fleet-wide outcome of one load-balancing policy."""

    policy: str
    p50_ns: float
    p99_ns: float
    mean_ns: float
    utilization_mean: float
    utilization_max: float
    imbalance: float
    overloaded_devices: int
    non_resident_flows: int
    tenants: Tuple[TenantStats, ...]
    device_utilization: Tuple[float, ...]
    hottest: Tuple[Tuple[str, float], ...]

    def to_json(self) -> Dict[str, object]:
        return {
            "policy": self.policy,
            "p50_ns": round(self.p50_ns, 3),
            "p99_ns": round(self.p99_ns, 3),
            "mean_ns": round(self.mean_ns, 3),
            "utilization_mean": round(self.utilization_mean, 6),
            "utilization_max": round(self.utilization_max, 6),
            "imbalance": round(self.imbalance, 6),
            "overloaded_devices": self.overloaded_devices,
            "non_resident_flows": self.non_resident_flows,
            "tenants": [tenant.to_json() for tenant in self.tenants],
            "device_utilization": [round(value, 6)
                                   for value in self.device_utilization],
            "hottest": [[label, round(value, 6)] for label, value in self.hottest],
        }


@dataclass(frozen=True)
class FleetResult:
    """All policies over one :class:`FleetSpec`."""

    spec: FleetSpec
    total_capacity_gbps: float
    offered_gbps: float
    effective_offered_gbps: float
    groups: Tuple[DeviceGroup, ...]
    policies: Tuple[PolicyResult, ...]

    def policy(self, name: str) -> PolicyResult:
        for result in self.policies:
            if result.policy == name:
                return result
        raise ConfigurationError(f"no policy {name!r} in this result")

    def best_policy(self) -> PolicyResult:
        """The policy with the lowest fleet-wide p99."""
        return min(self.policies, key=lambda result: (result.p99_ns, result.policy))

    def to_json(self) -> Dict[str, object]:
        return {
            "spec": {
                "flow_count": self.spec.flow_count,
                "device_count": self.spec.device_count,
                "tenant_count": self.spec.tenant_count,
                "slots_per_device": self.spec.slots_per_device,
                "alpha": self.spec.alpha,
                "offered_load": self.spec.offered_load,
                "mean_packet_bytes": self.spec.mean_packet_bytes,
                "seed": self.spec.seed,
                "year": self.spec.year,
            },
            "total_capacity_gbps": round(self.total_capacity_gbps, 3),
            "offered_gbps": round(self.offered_gbps, 3),
            "effective_offered_gbps": round(self.effective_offered_gbps, 3),
            "groups": [
                {"device": group.device_name, "instances": group.instances,
                 "capacity_gbps": group.capacity_gbps}
                for group in self.groups
            ],
            "best_policy": self.best_policy().policy,
            "policies": [policy.to_json() for policy in self.policies],
        }


def _capacity_gbps(device_name: str) -> float:
    """Network capacity of one fleet device type.

    Catalog entries answer directly; fleet-history names the catalog
    does not carry (revisions like ``device-b-rev2``, speed-graded
    variants like ``device-a-100g``) resolve by their speed suffix or
    their base type, with a conservative fallback for edge parts.
    """
    try:
        speed = device_by_name(device_name).network_gbps
        if speed > 0:
            return float(speed)
    except KeyError:
        pass
    stem, _, suffix = device_name.rpartition("-")
    if stem and suffix.endswith("g") and suffix[:-1].isdigit():
        return float(suffix[:-1])
    if stem:
        try:
            speed = device_by_name(stem).network_gbps
            if speed > 0:
                return float(speed)
        except KeyError:
            pass
    return FALLBACK_GBPS


def _allocate_instances(units: Sequence[int], device_count: int) -> List[int]:
    """Largest-remainder split of ``device_count`` instances by unit share.

    Every type with installed units gets at least one instance.  The
    largest-remainder pass is **explicitly deterministic**: surplus
    instances hand out in ascending ``(-remainder, index)`` order, so
    two types with *equal* fractional remainders always break toward
    the earlier index -- epoch-to-epoch reruns of the same unit vector
    can never flap between allocations.  The trim pass (when the
    one-instance floor over-allocated) is equally pinned: it always
    shrinks the currently-largest allocation, later index first on
    ties.
    """
    total = sum(units)
    if total <= 0:
        raise ConfigurationError("fleet has no installed units")
    if device_count < len(units):
        raise ConfigurationError(
            f"need at least {len(units)} device instances to cover "
            f"{len(units)} active device types"
        )
    quotas = [count * device_count / total for count in units]
    allocation = [max(int(quota), 1) for quota in quotas]
    # Stable largest-remainder order: sort on (remainder, index) with
    # the remainder negated so bigger remainders come first and equal
    # remainders fall back to the original index, deterministically.
    remainders = sorted(
        range(len(units)),
        key=lambda index: (-(quotas[index] - int(quotas[index])), index),
    )
    cursor = 0
    while sum(allocation) < device_count:
        allocation[remainders[cursor % len(units)]] += 1
        cursor += 1
    while sum(allocation) > device_count:
        victim = max(range(len(allocation)), key=lambda i: (allocation[i], -i))
        if allocation[victim] <= 1:
            break
        allocation[victim] -= 1
    return allocation


# ---------------------------------------------------------------------------
# Array kernels (shared with the epoch orchestrator)
# ---------------------------------------------------------------------------

def device_latency_tables(load_gbps, capacity_gbps,
                          mean_packet_bytes: int):
    """Per-device latency of the M/M/1 + overload + PR model.

    Returns ``(resident_ns, non_resident_ns)`` arrays over devices:
    the latency any flow served by device *d* observes, depending on
    whether its tenant's partial bitstream is resident.  Flow-level
    consumers gather by their assignment array; because the per-flow
    model only ever depended on the flow's device and residency bit,
    ``resident_ns[assign] + PR_PENALTY_NS * non_resident`` is
    **bit-exact** against the historical per-flow formulation (same
    float operations, same order, same inputs).

    The terms, in evaluation order:

    * fixed host-side base latency;
    * store-and-forward service time of one mean packet;
    * an M/M/1-style queueing term ``service * rho / (1 - rho)`` that
      saturates at :data:`RHO_KNEE` instead of diverging;
    * an overload penalty proportional to over-subscription past
      ``rho = 1``.
    """
    if _np is None:
        raise ConfigurationError("numpy is required for the latency kernel")
    capacity = _np.asarray(capacity_gbps, dtype=_np.float64)
    load = _np.asarray(load_gbps, dtype=_np.float64)
    service_ns = mean_packet_bytes * 8 / capacity
    rho = load / capacity
    knee = _np.minimum(rho, RHO_KNEE)
    resident_ns = (
        BASE_LATENCY_NS
        + service_ns
        + service_ns * knee / (1.0 - knee)
        + _np.maximum(rho - 1.0, 0.0) * OVERLOAD_PENALTY_NS
    )
    return resident_ns, resident_ns + PR_PENALTY_NS


def assign_flows(policy: str, flow_rate_gbps, flow_hash, capacity_gbps,
                 out=None):
    """flow -> device-instance index array for one placement policy.

    The reusable form of the simulator's policy assignment:
    ``round-robin`` cycles instances, ``flow-hash`` pins each flow by
    its stable 32-bit hash, and ``least-loaded`` runs the greedy LPT
    heuristic (flows arrive heaviest-first in Zipf rank order,
    utilisation normalised by instance capacity).  ``out`` reuses a
    caller-owned int64 buffer so batched callers skip per-policy
    allocations; the returned array is ``out`` when given.
    """
    if _np is None:
        raise ConfigurationError("numpy is required for flow assignment")
    flow_count = int(_np.asarray(flow_rate_gbps).shape[0])
    devices = int(_np.asarray(capacity_gbps).shape[0])
    if out is None:
        out = _np.empty(flow_count, dtype=_np.int64)
    if policy == "round-robin":
        _np.mod(_np.arange(flow_count, dtype=_np.int64), devices, out=out)
        return out
    if policy == "flow-hash":
        _np.mod(flow_hash, devices, out=out)
        return out
    if policy == "least-loaded":
        # Flows arrive heaviest-first (Zipf rank order), so greedy
        # least-utilised placement is the LPT heuristic, normalised
        # by each instance's capacity.
        heap = [(0.0, device) for device in range(devices)]
        inverse = (1.0 / _np.asarray(capacity_gbps, dtype=_np.float64)).tolist()
        rates = _np.asarray(flow_rate_gbps, dtype=_np.float64).tolist()
        for index, rate in enumerate(rates):
            utilisation, device = heap[0]
            out[index] = device
            heapq.heapreplace(
                heap, (utilisation + rate * inverse[device], device))
        return out
    raise ConfigurationError(
        f"unknown fleet policy {policy!r}; choose from {', '.join(POLICIES)}"
    )


class FleetSimulation:
    """One fleet serving scenario, replayable under multiple policies."""

    def __init__(self, spec: Optional[FleetSpec] = None,
                 history: Optional[FleetHistory] = None,
                 context: Optional[SimContext] = None) -> None:
        if _np is None:
            raise ConfigurationError("numpy is required for the fleet simulator")
        self.spec = spec or FleetSpec()
        self.context = ensure_context(context)
        history = history or production_fleet()
        introductions = history.active_introductions(self.spec.year)
        if not introductions:
            raise ConfigurationError(
                f"no device types active in {self.spec.year}"
            )
        allocation = _allocate_instances(
            [item.units for item in introductions], self.spec.device_count)
        groups: List[DeviceGroup] = []
        first = 0
        for item, instances in zip(introductions, allocation):
            groups.append(DeviceGroup(
                device_name=item.device_name, instances=instances,
                capacity_gbps=_capacity_gbps(item.device_name),
                first_index=first,
            ))
            first += instances
        self.groups: Tuple[DeviceGroup, ...] = tuple(groups)
        self.instance_capacity_gbps = _np.concatenate([
            _np.full(group.instances, group.capacity_gbps, dtype=_np.float64)
            for group in self.groups
        ])
        # Check the PR-slot plan is mechanically loadable on every type
        # the catalog knows: even_slot_budgets splits the role region and
        # PartialReconfigManager would reject an impossible slot count.
        self.slot_plan: Dict[str, int] = {}
        for group in self.groups:
            try:
                device = device_by_name(group.device_name)
            except KeyError:
                continue
            manager = PartialReconfigManager(
                even_slot_budgets(device.budget, self.spec.slots_per_device))
            self.slot_plan[group.device_name] = len(manager.slots)

        spec = self.spec
        self.flow_weights = zipf_weights_array(spec.flow_count, spec.alpha)
        self.total_capacity_gbps = float(self.instance_capacity_gbps.sum())
        self.offered_gbps = spec.offered_load * self.total_capacity_gbps
        # A single flow is serialised through one port, so its offered
        # rate can never exceed the fastest line rate in the fleet --
        # without the cap the Zipf head would offer multi-Tbps "flows".
        self.flow_rate_gbps = _np.minimum(
            self.flow_weights * self.offered_gbps,
            float(self.instance_capacity_gbps.max()),
        )
        self.effective_offered_gbps = float(self.flow_rate_gbps.sum())
        self.flow_hash = flow_hashes32(spec.flow_count, spec.seed).astype(_np.int64)
        self.flow_tenant = (
            flow_hashes32(spec.flow_count, spec.seed + 1).astype(_np.int64)
            % spec.tenant_count
        )

    def __len__(self) -> int:
        return self.spec.flow_count

    @property
    def device_count(self) -> int:
        return int(self.instance_capacity_gbps.shape[0])

    def instance_label(self, index: int) -> str:
        for group in self.groups:
            if group.first_index <= index < group.first_index + group.instances:
                return group.label(index - group.first_index)
        raise ConfigurationError(f"no device instance {index}")

    # --- policies -----------------------------------------------------------

    def assignment(self, policy: str, out=None):
        """flow -> device-instance index array for one policy.

        ``out`` reuses a caller-owned buffer (see :func:`assign_flows`);
        batched evaluation passes one scratch array across policies.
        """
        return assign_flows(
            policy, self.flow_rate_gbps, self.flow_hash,
            self.instance_capacity_gbps, out=out,
        )

    # --- evaluation ---------------------------------------------------------

    def run_policy(self, policy: str, _scratch=None) -> PolicyResult:
        with _profile_phase("fleet.policy"):
            return self._run_policy(policy, _scratch)

    def _run_policy(self, policy: str, scratch=None) -> PolicyResult:
        spec = self.spec
        devices = self.device_count
        span = self.context.trace.begin(
            f"fleet.{policy}", ts_ps=0,
            flows=spec.flow_count, devices=devices, tenants=spec.tenant_count,
        )
        assign = self.assignment(policy, out=scratch)
        load_gbps = _np.bincount(
            assign, weights=self.flow_rate_gbps, minlength=devices)
        utilization = load_gbps / self.instance_capacity_gbps

        tenant_load = _np.bincount(
            assign * spec.tenant_count + self.flow_tenant,
            weights=self.flow_rate_gbps,
            minlength=devices * spec.tenant_count,
        ).reshape(devices, spec.tenant_count)
        resident = residency_matrix(tenant_load, spec.slots_per_device)
        non_resident = ~resident[assign, self.flow_tenant]

        # Latency factors through per-device tables (the flow's device
        # and residency bit are the only per-flow inputs), so one
        # O(devices) kernel plus a gather replaces the historical
        # O(flows) expression bit-for-bit.
        resident_ns, _ = device_latency_tables(
            load_gbps, self.instance_capacity_gbps, spec.mean_packet_bytes)
        latency_ns = resident_ns[assign] + PR_PENALTY_NS * non_resident

        p50, p99 = (float(v) for v in _np.percentile(latency_ns, (50, 99)))
        tenants: List[TenantStats] = []
        for tenant in range(spec.tenant_count):
            mask = self.flow_tenant == tenant
            flows = int(mask.sum())
            if flows == 0:
                tenants.append(TenantStats(tenant, 0, 0.0, 0.0, 0.0))
                continue
            t50, t99 = (float(v)
                        for v in _np.percentile(latency_ns[mask], (50, 99)))
            tenants.append(TenantStats(
                tenant=tenant, flows=flows,
                offered_gbps=float(tenant_load[:, tenant].sum()),
                p50_ns=t50, p99_ns=t99,
            ))

        order = _np.argsort(-utilization, kind="stable")[:5]
        result = PolicyResult(
            policy=policy,
            p50_ns=p50,
            p99_ns=p99,
            mean_ns=float(latency_ns.mean()),
            utilization_mean=float(utilization.mean()),
            utilization_max=float(utilization.max()),
            imbalance=float(utilization.max() / utilization.mean()),
            overloaded_devices=int((utilization > 1.0).sum()),
            non_resident_flows=int(non_resident.sum()),
            tenants=tuple(tenants),
            device_utilization=tuple(utilization.tolist()),
            hottest=tuple(
                (self.instance_label(int(index)), float(utilization[index]))
                for index in order
            ),
        )
        metrics = self.context.metrics.namespace(f"fleet.{policy}")
        metrics.set_gauge("p50_ns", result.p50_ns)
        metrics.set_gauge("p99_ns", result.p99_ns)
        metrics.set_gauge("utilization_mean", result.utilization_mean)
        metrics.set_gauge("utilization_max", result.utilization_max)
        metrics.set_gauge("imbalance", result.imbalance)
        metrics.set_gauge("overloaded_devices", result.overloaded_devices)
        metrics.set_gauge("non_resident_flows", result.non_resident_flows)
        # Per-tenant visibility (the paper's per-tenant monitoring half):
        # tail latency lands under fleet.<policy>.tenant.<id>.*, which is
        # what the stock tenant-p99 SLO spec pattern-matches against.
        for tenant in result.tenants:
            tenant_ns = metrics.namespace(f"tenant.{tenant.tenant:02d}")
            tenant_ns.set_gauge("flows", tenant.flows)
            tenant_ns.set_gauge("offered_gbps", tenant.offered_gbps)
            tenant_ns.set_gauge("p50_ns", tenant.p50_ns)
            tenant_ns.set_gauge("p99_ns", tenant.p99_ns)
        self.context.trace.end(span, ts_ps=0, p99_ns=round(p99, 3))
        return result

    def run(self, policies: Sequence[str] = POLICIES) -> FleetResult:
        if not policies:
            raise ConfigurationError("need at least one policy")
        # One flow->device scratch array shared by every policy: the
        # assignment kernels write in place, so a 3-policy 1M-flow run
        # allocates the 8 MB index buffer once instead of per policy.
        scratch = _np.empty(self.spec.flow_count, dtype=_np.int64)
        results = tuple(self.run_policy(policy, scratch) for policy in policies)
        metrics = self.context.metrics.namespace("fleet")
        metrics.set_gauge("flows", self.spec.flow_count)
        metrics.set_gauge("devices", self.device_count)
        metrics.set_gauge("capacity_gbps", self.total_capacity_gbps)
        metrics.set_gauge("offered_gbps", self.offered_gbps)
        return FleetResult(
            spec=self.spec,
            total_capacity_gbps=self.total_capacity_gbps,
            offered_gbps=self.offered_gbps,
            effective_offered_gbps=self.effective_offered_gbps,
            groups=self.groups,
            policies=results,
        )


def run_fleet(spec: Optional[FleetSpec] = None,
              policies: Sequence[str] = POLICIES,
              history: Optional[FleetHistory] = None,
              context: Optional[SimContext] = None) -> FleetResult:
    """One-call fleet scenario: build the simulation and run ``policies``."""
    return FleetSimulation(spec, history=history, context=context).run(policies)
