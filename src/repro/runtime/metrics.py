"""Hierarchical metrics registry.

One registry per :class:`~repro.runtime.context.SimContext` holds every
counter, gauge, and latency histogram the stack publishes, addressed by
dot-separated paths (``rbb.network.rx_packets``,
``command.rtt``, ``app.sec-gateway.64B.throughput_gbps``).  This is the
single scrape point the paper assigns to the monitoring half of every
RBB's reusable logic (§3.3.1): instead of each module keeping loose
dicts, everything lands in one tree that :meth:`MetricsRegistry.snapshot`
dumps deterministically.

The metric primitives themselves are the existing
:class:`repro.sim.stats.Counter` / :class:`repro.sim.stats.LatencyStats`
classes -- the registry adds naming, namespacing, and aggregation, not a
new measurement vocabulary.
"""

from collections.abc import MutableMapping
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.sim.stats import Counter, LatencyStats


class Gauge:
    """A named instantaneous value (occupancy, loss fraction, ...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}={self.value})"


Metric = Union[Counter, Gauge, LatencyStats]


def _check_path(path: str) -> str:
    if not path or path.startswith(".") or path.endswith(".") or ".." in path:
        raise ConfigurationError(f"invalid metric path {path!r}")
    return path


class MetricsRegistry:
    """Flat path -> metric store with a hierarchical snapshot view."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # --- get-or-create ------------------------------------------------------

    def _get_or_create(self, path: str, kind: type) -> Metric:
        _check_path(path)
        metric = self._metrics.get(path)
        if metric is None:
            metric = kind(path)
            self._metrics[path] = metric
        elif not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {path!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}"
            )
        return metric

    def counter(self, path: str) -> Counter:
        return self._get_or_create(path, Counter)

    def gauge(self, path: str) -> Gauge:
        return self._get_or_create(path, Gauge)

    def histogram(self, path: str) -> LatencyStats:
        return self._get_or_create(path, LatencyStats)

    # --- convenience writers ------------------------------------------------

    def increment(self, path: str, amount: int = 1) -> None:
        self.counter(path).increment(amount)

    def set_gauge(self, path: str, value: float) -> None:
        self.gauge(path).set(value)

    def observe(self, path: str, sample_ps: int) -> None:
        self.histogram(path).add(sample_ps)

    # --- structure ----------------------------------------------------------

    def namespace(self, prefix: str) -> "MetricsNamespace":
        """A scoped view; all paths are prefixed with ``prefix.``."""
        _check_path(prefix)
        return MetricsNamespace(self, prefix)

    def remove(self, path: str) -> bool:
        """Drop one metric; returns whether it existed."""
        return self._metrics.pop(path, None) is not None

    def paths(self, prefix: str = "") -> List[str]:
        """Sorted metric paths, optionally below ``prefix``."""
        if not prefix:
            return sorted(self._metrics)
        dotted = prefix + "."
        return sorted(p for p in self._metrics if p.startswith(dotted))

    def get(self, path: str) -> Optional[Metric]:
        return self._metrics.get(path)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, path: str) -> bool:
        return path in self._metrics

    # --- snapshot -----------------------------------------------------------

    @staticmethod
    def _leaf(metric: Metric) -> Any:
        if isinstance(metric, Counter):
            return metric.value
        if isinstance(metric, Gauge):
            return metric.value
        if metric.count == 0:
            return {"count": 0}
        return {
            "count": metric.count,
            "mean_ps": metric.mean_ps,
            "min_ps": metric.min_ps,
            "max_ps": metric.max_ps,
            "p50_ps": metric.percentile_ps(0.50),
            "p99_ps": metric.percentile_ps(0.99),
        }

    def snapshot(self, prefix: str = "") -> Dict[str, Any]:
        """The whole registry (or one subtree) as a nested dict.

        Dot-separated path segments become nesting levels; keys are
        sorted, so the snapshot of two identical runs compares (and
        serialises) equal.
        """
        tree: Dict[str, Any] = {}
        strip = len(prefix) + 1 if prefix else 0
        for path in self.paths(prefix):
            parts = path[strip:].split(".")
            node = tree
            for part in parts[:-1]:
                node = node.setdefault(part, {})
                if not isinstance(node, dict):
                    raise ConfigurationError(
                        f"metric path {path!r} collides with a leaf metric"
                    )
            node[parts[-1]] = self._leaf(self._metrics[path])
        return _sorted_tree(tree)


def _sorted_tree(tree: Dict[str, Any]) -> Dict[str, Any]:
    return {
        key: _sorted_tree(value) if isinstance(value, dict) else value
        for key, value in sorted(tree.items())
    }


class MetricsNamespace:
    """A registry view rooted at a path prefix."""

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix

    def _path(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def counter(self, name: str) -> Counter:
        return self.registry.counter(self._path(name))

    def gauge(self, name: str) -> Gauge:
        return self.registry.gauge(self._path(name))

    def histogram(self, name: str) -> LatencyStats:
        return self.registry.histogram(self._path(name))

    def increment(self, name: str, amount: int = 1) -> None:
        self.registry.increment(self._path(name), amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.registry.set_gauge(self._path(name), value)

    def observe(self, name: str, sample_ps: int) -> None:
        self.registry.observe(self._path(name), sample_ps)

    def namespace(self, name: str) -> "MetricsNamespace":
        return MetricsNamespace(self.registry, self._path(name))

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot(self.prefix)

    def names(self) -> List[str]:
        strip = len(self.prefix) + 1
        return [path[strip:] for path in self.registry.paths(self.prefix)]

    def clear(self) -> None:
        for path in self.registry.paths(self.prefix):
            self.registry.remove(path)


class _MetricDictView(MutableMapping):
    """dict-compatible live view over one metric kind in a namespace.

    This is what keeps ``Rbb.counters`` / ``Rbb.gauges`` source- and
    test-compatible while the actual values live in the shared registry:
    reads, writes, ``.get``, ``dict(...)``, equality against plain
    dicts, and ``.clear()`` all behave like the loose dicts they
    replace.
    """

    _kind: type = Counter

    def __init__(self, namespace: MetricsNamespace) -> None:
        self._ns = namespace

    def _metric(self, name: str):
        metric = self._ns.registry.get(self._ns._path(name))
        if metric is None or not isinstance(metric, self._kind):
            raise KeyError(name)
        return metric

    def _read(self, metric: Metric) -> Any:
        raise NotImplementedError

    def _write(self, name: str, value: Any) -> None:
        raise NotImplementedError

    def __getitem__(self, name: str) -> Any:
        return self._read(self._metric(name))

    def __setitem__(self, name: str, value: Any) -> None:
        self._write(name, value)

    def __delitem__(self, name: str) -> None:
        self._metric(name)  # raises KeyError when absent
        self._ns.registry.remove(self._ns._path(name))

    def __iter__(self) -> Iterator[str]:
        for name in self._ns.names():
            metric = self._ns.registry.get(self._ns._path(name))
            if isinstance(metric, self._kind):
                yield name

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, (dict, MutableMapping)):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: Any) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __repr__(self) -> str:
        return f"{type(self).__name__}({dict(self)!r})"


class CounterDictView(_MetricDictView):
    """``Dict[str, int]``-compatible view over a namespace's counters."""

    _kind = Counter

    def _read(self, metric: Counter) -> int:
        return metric.value

    def _write(self, name: str, value: int) -> None:
        self._ns.counter(name).value = int(value)


class GaugeDictView(_MetricDictView):
    """``Dict[str, float]``-compatible view over a namespace's gauges."""

    _kind = Gauge

    def _read(self, metric: Gauge) -> float:
        return metric.value

    def _write(self, name: str, value: float) -> None:
        self._ns.gauge(name).set(value)
