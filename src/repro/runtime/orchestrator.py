"""Epoch-stepped fleet orchestrator with delta-vectorized epochs.

One :class:`~repro.runtime.fleet.FleetSimulation` snapshot answers
"how does this placement policy behave right now?"; Harmonia's cloud
story (and ROADMAP item 1) is the *control plane* that keeps a
heterogeneous FPGA fleet reconfigured as the world churns -- the
orchestration model of Funky and the checkpoint/migrate model of
SYNERGY.  This module advances a FleetSimulation-derived state through
N epochs of:

* flow churn (tenant arrivals/departures, Zipf-shaped rates drawn from
  replayable :class:`~repro.workloads.flows.ChurnStream` channels);
* device failure and graceful drain on deterministic schedules;
* partial-reconfiguration scheduling (a stateful residency plan fed by
  :func:`~repro.core.multitenancy.residency_matrix`, with a per-epoch
  grant budget so bitstream loads are a managed resource);
* tenant checkpoint/migration off overloaded devices;
* SLO-driven autoscaling -- each epoch's ``fleet.epoch.*`` gauges are
  evaluated by the stock :class:`~repro.obs.slo.SloMonitor`
  (:func:`~repro.obs.slo.default_epoch_slos`) and violations scale
  instance groups up from a spare pool or drain capacity back.

**The perf core is delta-vectorized epoch stepping.**  Per-device load,
per-(device, tenant) load and flow-count matrices stay resident across
epochs; each epoch applies O(churn)-sized ``np.bincount`` deltas for
exactly the flows the churn set touched, instead of an O(flows)
recompute.  All flow rates are *integers* (1 unit = 1 kbps,
:data:`RATE_UNITS_PER_GBPS` per Gbps): every partial sum stays far
below 2**53, so float64 bincount accumulation is exact and
order-independent -- which is what lets the incremental path promise
**bit-exactness** against the full-recompute oracle, not just
closeness.  Three modes share one code path:

* ``incremental`` -- aggregates are maintained by deltas only (the
  production fast path);
* ``full`` -- the oracle: aggregates are rebuilt from the raw per-flow
  arrays every epoch (honest O(flows) cost);
* ``verify`` -- both, with an exact equality assertion per epoch
  (:class:`DeltaMismatch` on divergence -- the differential fuzzer's
  ``epoch-delta`` check runs this mode).

Because every control decision reads only the aggregate state, and the
aggregates are bit-equal across modes, the *entire run* -- placements,
autoscale decisions, residency grants, per-epoch stats, final tenant
stats, state digests -- is identical between ``incremental`` and
``full``.  ``benchmarks/orchestrator_smoke.py`` gates exactly that,
plus the >= 5x speedup of the incremental path at typical (<2%) churn.

Epoch latency stats come from the same factored kernels the snapshot
simulator uses (:func:`~repro.runtime.fleet.device_latency_tables`):
a flow's latency depends only on its device and residency bit, so the
fleet-wide p50/p99 is a weighted nearest-rank percentile over the
(devices x tenants) latency table with flow counts as weights --
O(devices x tenants) per epoch, independent of flow count.
"""

import dataclasses as _dataclasses
import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

try:  # numpy is a declared dependency, but degrade instead of crashing.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

from repro.core.multitenancy import residency_matrix
from repro.errors import ConfigurationError
from repro.obs.profiler import phase as _profile_phase
from repro.obs.slo import SloMonitor, default_epoch_slos
from repro.platform.fleet import FleetHistory
from repro.runtime.context import SimContext, ensure_context
from repro.runtime.fleet import (
    POLICIES,
    FleetSimulation,
    FleetSpec,
    TenantStats,
    device_latency_tables,
)
from repro.workloads.flows import ChurnStream

#: Integer rate quantum: 1 unit = 1 kbps, so 1 Gbps = 1e6 units.  All
#: per-flow rates are int64 units; fleet-wide sums stay < 2**53, which
#: keeps float64 bincount accumulation exact (the bit-exactness keystone).
RATE_UNITS_PER_GBPS = 1_000_000

#: The three execution modes (see module docstring).
MODES: Tuple[str, ...] = ("incremental", "full", "verify")

# Device lifecycle states.
_PARKED, _ALIVE, _FAILED = 0, 1, 2

#: Slot-index packing: ``device << 32 | slot`` in one int64 key.  Both
#: halves are far below 2**31 (devices in the thousands, slots capped by
#: ``flow_count + churn``), so the packed key is always non-negative and
#: sorting it orders by device first, slot second.
_PACK_SHIFT = _np.int64(32) if _np is not None else 32
_PACK_MASK = _np.int64(0xFFFFFFFF) if _np is not None else 0xFFFFFFFF


class DeltaMismatch(Exception):
    """Incremental aggregates diverged from the full-recompute oracle."""

    def __init__(self, epoch: int, what: str) -> None:
        super().__init__(
            f"epoch {epoch}: incremental {what} diverged from the "
            f"full-recompute oracle")
        self.epoch = epoch
        self.what = what


@dataclass(frozen=True)
class OrchestratorSpec:
    """Knobs of one epoch-stepped orchestration run.

    ``churn`` is the per-epoch arrival *and* departure fraction of the
    initial flow population, so the population stays near its initial
    size while individual flows turn over.  ``failure_every`` /
    ``drain_every`` fire a device failure / graceful drain every N
    epochs (0 disables).  ``pr_budget`` caps partial-reconfiguration
    grants per epoch fleet-wide (0 = unlimited); deferred grants rank
    by tenant load, heaviest first.  The autoscaler holds a spare pool
    of ``spare_fraction`` x device_count parked instances and moves
    ``scale_step`` devices per decision.
    """

    epochs: int = 288
    epoch_seconds: int = 300
    churn: float = 0.01
    failure_every: int = 48
    drain_every: int = 96
    migrate_threshold: float = 1.2
    autoscale: bool = True
    spare_fraction: float = 0.25
    scale_step: int = 4
    pr_budget: int = 64
    policy: str = "flow-hash"

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ConfigurationError("need at least one epoch")
        if self.epoch_seconds < 1:
            raise ConfigurationError("epoch length must be positive")
        if not 0.0 <= self.churn <= 0.5:
            raise ConfigurationError("churn must be within [0, 0.5]")
        if self.failure_every < 0 or self.drain_every < 0:
            raise ConfigurationError(
                "failure/drain cadence must be non-negative (0 disables)")
        if self.migrate_threshold <= 0:
            raise ConfigurationError("migrate threshold must be positive")
        if not 0.0 <= self.spare_fraction <= 4.0:
            raise ConfigurationError("spare fraction must be within [0, 4]")
        if self.scale_step < 1:
            raise ConfigurationError("scale step must be positive")
        if self.pr_budget < 0:
            raise ConfigurationError("PR budget must be non-negative")
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; "
                f"choose from {', '.join(POLICIES)}")

    @classmethod
    def from_scenario(cls, scenario) -> "OrchestratorSpec":
        """Read the ``epochs`` section of a fleet scenario."""
        section = getattr(scenario, "epochs", None)
        if section is None:
            raise ConfigurationError(
                "scenario has no epochs section to orchestrate")
        return cls(
            epochs=section.epochs,
            epoch_seconds=section.epoch_seconds,
            churn=section.churn,
            failure_every=section.failure_every,
            drain_every=section.drain_every,
            migrate_threshold=section.migrate_threshold,
            autoscale=section.autoscale,
            spare_fraction=section.spare_fraction,
            scale_step=section.scale_step,
            pr_budget=section.pr_budget,
            policy=section.policy,
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "epochs": self.epochs,
            "epoch_seconds": self.epoch_seconds,
            "churn": self.churn,
            "failure_every": self.failure_every,
            "drain_every": self.drain_every,
            "migrate_threshold": self.migrate_threshold,
            "autoscale": self.autoscale,
            "spare_fraction": self.spare_fraction,
            "scale_step": self.scale_step,
            "pr_budget": self.pr_budget,
            "policy": self.policy,
        }


@dataclass(frozen=True)
class EpochStats:
    """What one epoch did and how the fleet looked afterwards."""

    epoch: int
    flows: int
    arrivals: int
    departures: int
    failures: int
    drains: int
    migrations: int
    pr_grants: int
    pr_deferred: int
    scaled_up: int
    scaled_down: int
    alive_devices: int
    offered_gbps: float
    utilization_mean: float
    utilization_max: float
    overloaded_devices: int
    non_resident_flows: int
    p50_ns: float
    p99_ns: float
    mean_ns: float
    slo_violations: int

    def to_json(self) -> Dict[str, object]:
        return {
            "epoch": self.epoch,
            "flows": self.flows,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "failures": self.failures,
            "drains": self.drains,
            "migrations": self.migrations,
            "pr_grants": self.pr_grants,
            "pr_deferred": self.pr_deferred,
            "scaled_up": self.scaled_up,
            "scaled_down": self.scaled_down,
            "alive_devices": self.alive_devices,
            "offered_gbps": round(self.offered_gbps, 6),
            "utilization_mean": round(self.utilization_mean, 6),
            "utilization_max": round(self.utilization_max, 6),
            "overloaded_devices": self.overloaded_devices,
            "non_resident_flows": self.non_resident_flows,
            "p50_ns": round(self.p50_ns, 3),
            "p99_ns": round(self.p99_ns, 3),
            "mean_ns": round(self.mean_ns, 3),
            "slo_violations": self.slo_violations,
        }


@dataclass(frozen=True)
class OrchestratorResult:
    """A whole orchestrated day, replayable and mode-independent.

    ``mode`` is deliberately **excluded** from :meth:`to_json`: the
    incremental and full paths must serialise identically, and the
    fuzzer's ``epoch-delta`` check compares exactly this payload.
    """

    fleet_spec: FleetSpec
    spec: OrchestratorSpec
    mode: str
    epochs: Tuple[EpochStats, ...]
    tenants: Tuple[TenantStats, ...]
    aggregate_digest: str
    flow_digest: str
    total_slo_violations: int = 0
    wall_s: float = field(default=0.0, compare=False)

    @property
    def final(self) -> EpochStats:
        return self.epochs[-1]

    def to_json(self) -> Dict[str, object]:
        final = self.final
        return {
            "spec": {
                "fleet": {
                    "flow_count": self.fleet_spec.flow_count,
                    "device_count": self.fleet_spec.device_count,
                    "tenant_count": self.fleet_spec.tenant_count,
                    "slots_per_device": self.fleet_spec.slots_per_device,
                    "alpha": self.fleet_spec.alpha,
                    "offered_load": self.fleet_spec.offered_load,
                    "mean_packet_bytes": self.fleet_spec.mean_packet_bytes,
                    "seed": self.fleet_spec.seed,
                    "year": self.fleet_spec.year,
                },
                "epochs": self.spec.to_json(),
            },
            "totals": {
                "arrivals": sum(e.arrivals for e in self.epochs),
                "departures": sum(e.departures for e in self.epochs),
                "failures": sum(e.failures for e in self.epochs),
                "drains": sum(e.drains for e in self.epochs),
                "migrations": sum(e.migrations for e in self.epochs),
                "pr_grants": sum(e.pr_grants for e in self.epochs),
                "scaled_up": sum(e.scaled_up for e in self.epochs),
                "scaled_down": sum(e.scaled_down for e in self.epochs),
                "slo_violations": self.total_slo_violations,
            },
            "final": final.to_json(),
            "tenants": [tenant.to_json() for tenant in self.tenants],
            "epochs": [stats.to_json() for stats in self.epochs],
            "digest": {
                "aggregates": self.aggregate_digest,
                "flows": self.flow_digest,
            },
        }


def desired_residency(tenant_units, slots: int):
    """Pinned-equal fast path for :func:`residency_matrix` on int units.

    The residency plan is the ``slots`` heaviest tenants per device,
    ties toward the lower tenant index.  Folding the tie-break into a
    composite integer key (``units * tenants + reversed tenant index``)
    makes every key distinct, so the top-``slots`` *set* is unique and
    ``argpartition`` -- O(tenants) per device instead of a full stable
    sort -- must select exactly the rows a stable descending sort
    would.  This runs every epoch; ``tests/test_orchestrator.py`` pins
    it element-equal to :func:`residency_matrix` on random matrices.
    """
    devices, tenants = tenant_units.shape
    if tenants <= slots:
        return _np.ones((devices, tenants), dtype=bool)
    keys = (tenant_units * _np.int64(tenants)
            + _np.arange(tenants - 1, -1, -1, dtype=_np.int64))
    top = _np.argpartition(-keys, slots - 1, axis=1)[:, :slots]
    resident = _np.zeros((devices, tenants), dtype=bool)
    _np.put_along_axis(resident, top, True, axis=1)
    return resident


def weighted_percentiles(values, weights, fractions):
    """Weighted nearest-rank percentiles (exact for integer weights).

    ``values`` are sorted stably, integer weights accumulate exactly in
    int64, and each requested fraction maps to the smallest value whose
    cumulative weight reaches ``ceil(q * total)`` -- the classical
    nearest-rank definition, chosen over interpolation because it is
    trivially bit-exact for identical inputs regardless of how the
    inputs were accumulated.
    """
    if _np is None:
        raise ConfigurationError("numpy is required for weighted percentiles")
    weights = _np.asarray(weights, dtype=_np.int64)
    values = _np.asarray(values, dtype=_np.float64)
    total = int(weights.sum())
    if total <= 0:
        return [0.0 for _ in fractions]
    order = _np.argsort(values, kind="stable")
    ordered = values[order]
    cumulative = _np.cumsum(weights[order])
    out = []
    for fraction in fractions:
        target = max(int(-(-fraction * total // 1)), 1)  # ceil, >= 1
        index = int(_np.searchsorted(cumulative, target))
        out.append(float(ordered[min(index, len(ordered) - 1)]))
    return out


class FleetState:
    """Per-flow ground truth plus the resident aggregate matrices.

    Flow arrays are capacity-sized with a free-slot stack so arrivals
    reuse departed slots without reallocation; a slot is active XOR on
    the free stack.  Aggregates (``load_units``, ``tenant_units``,
    ``tenant_flows``) are maintained by exact integer deltas and can be
    independently rebuilt from the flow arrays in O(flows) --
    :meth:`rebuild_aggregates` is the oracle the ``full`` and
    ``verify`` modes use.
    """

    def __init__(self, fleet_spec: FleetSpec, spec: OrchestratorSpec,
                 history: Optional[FleetHistory] = None,
                 context: Optional[SimContext] = None) -> None:
        if _np is None:
            raise ConfigurationError("numpy is required for the orchestrator")
        self.fleet_spec = fleet_spec
        self.spec = spec
        sim = FleetSimulation(fleet_spec, history=history, context=context)
        self.groups = sim.groups
        base = sim.instance_capacity_gbps
        base_count = int(base.shape[0])
        spares = int(-(-base_count * spec.spare_fraction // 1))  # ceil
        self.base_devices = base_count
        self.total_devices = base_count + spares
        # Spare instances clone the base capacity pattern so scale-ups
        # add representative hardware, not one arbitrary device type.
        self.capacity_gbps = _np.concatenate([
            base, base[_np.arange(spares, dtype=_np.int64) % base_count]])
        self.capacity_units = _np.floor(
            self.capacity_gbps * RATE_UNITS_PER_GBPS).astype(_np.int64)
        self.status = _np.full(self.total_devices, _PARKED, dtype=_np.int8)
        self.status[:base_count] = _ALIVE

        tenants = fleet_spec.tenant_count
        self.tenant_count = tenants
        flow_count = fleet_spec.flow_count
        self.churn_per_epoch = int(round(flow_count * spec.churn))
        capacity_slots = flow_count + self.churn_per_epoch
        self.capacity_slots = capacity_slots

        # Per-flow ground truth (integer rate units).
        self.flow_rate_units = _np.zeros(capacity_slots, dtype=_np.int64)
        self.flow_tenant = _np.zeros(capacity_slots, dtype=_np.int64)
        self.flow_device = _np.zeros(capacity_slots, dtype=_np.int64)
        self.flow_active = _np.zeros(capacity_slots, dtype=bool)
        self.flow_rate_units[:flow_count] = _np.maximum(
            _np.floor(sim.flow_rate_gbps * RATE_UNITS_PER_GBPS), 1.0,
        ).astype(_np.int64)
        self.flow_tenant[:flow_count] = sim.flow_tenant
        self.flow_device[:flow_count] = sim.assignment(spec.policy)
        self.flow_active[:flow_count] = True
        self.max_rate_units = int(self.capacity_units.max())

        # Free-slot stack (LIFO): slots [flow_count, capacity) start free.
        self.free_slots = _np.zeros(capacity_slots, dtype=_np.int64)
        self.free_top = capacity_slots - flow_count
        self.free_slots[:self.free_top] = _np.arange(
            flow_count, capacity_slots, dtype=_np.int64)

        # Arrival rate scale: match the harmonic draw's mean to the mean
        # initial flow rate so churn does not systematically inflate or
        # starve the offered load (H(R) is the R-th harmonic number).
        self.max_rank = flow_count
        mean_units = float(self.flow_rate_units[:flow_count].mean())
        harmonic = float(
            (1.0 / _np.arange(1, flow_count + 1, dtype=_np.float64)).sum())
        self.arrival_scale_units = max(
            int(mean_units * flow_count / harmonic), 1)

        self.churn_stream = ChurnStream(fleet_spec.seed)
        self.round_robin_cursor = 0

        # Lazy slot index: immutable sorted segments of *packed*
        # ``device << 32 | slot`` int64 keys plus a flat pending buffer
        # of recent placements.  Writes are O(1) list appends; the
        # pending buffer is value-sorted into a new segment only when
        # it outgrows a few epochs of churn, so the sort is amortised
        # and there is no per-device Python loop anywhere.  Packing
        # device and slot into one key makes the flush a single
        # ``np.sort`` over plain values (no argsort indirection) and
        # hands reads back per-device slot runs that are already in
        # ascending slot order.  Reads (:meth:`device_flows`) slice
        # each segment with two binary searches, scan the small pending
        # buffer, and validate every candidate against the flow arrays
        # -- so the result is exactly what an O(flows) ``flatnonzero``
        # scan would produce, without the scan.  Purely a performance
        # structure: every mode maintains it identically and no
        # aggregate reads it.
        self._segments: List = []
        self._pending: List = []
        self._pending_count = 0
        self._flush_threshold = max(8 * self.churn_per_epoch, 4_096)
        self._index_flush(
            self.flow_device[:flow_count] << _PACK_SHIFT
            | _np.arange(flow_count, dtype=_np.int64))

        # Deferred-delta batch: during the churn phase of an epoch the
        # flow mutators enqueue their (devices, tenants, rates, sign)
        # contributions here and :meth:`flush_deltas` folds the whole
        # churn set into the aggregates with ONE fused signed bincount
        # pass.  Signed integer partial sums stay < 2**53 in magnitude,
        # so the fused application is bit-equal to applying each part
        # separately -- order and batching never matter.
        self._deferring = False
        self._delta_parts: List[Tuple] = []

        # Resident aggregates, seeded from the oracle rebuild.
        self.load_units, self.tenant_units, self.tenant_flows = (
            self.rebuild_aggregates())
        # Bootstrap residency: every desired grant is free at epoch -1
        # (the fleet boots with its bitstreams already loaded).
        desired = residency_matrix(self.tenant_units, fleet_spec.slots_per_device)
        desired[self.status != _ALIVE] = False
        self.resident = desired

    # --- device sets ---------------------------------------------------------

    def alive_devices(self):
        return _np.flatnonzero(self.status == _ALIVE)

    def device_flows(self, device: int):
        """Active slots homed on ``device``, ascending and distinct.

        Bit-equal to ``flatnonzero(flow_active & (flow_device ==
        device))`` by construction: the index over-approximates (stale
        departures, moved-away flows, re-added slots may linger or
        repeat), the read filters against the ground-truth arrays and
        ``np.unique`` restores the sorted-distinct order the scan would
        produce.
        """
        low_key = _np.int64(device) << _PACK_SHIFT
        high_key = _np.int64(device + 1) << _PACK_SHIFT
        parts = []
        for segment in self._segments:
            low = int(_np.searchsorted(segment, low_key, side="left"))
            high = int(_np.searchsorted(segment, high_key, side="left"))
            if high > low:
                parts.append(segment[low:high] & _PACK_MASK)
        for pending in self._pending:
            matches = pending[(pending >> _PACK_SHIFT) == device]
            if matches.shape[0]:
                parts.append(matches & _PACK_MASK)
        if not parts:
            return _np.empty(0, dtype=_np.int64)
        slots = parts[0] if len(parts) == 1 else _np.concatenate(parts)
        return _np.unique(
            slots[self.flow_active[slots]
                  & (self.flow_device[slots] == device)])

    def _index_add(self, slots, devices) -> None:
        """Record placements; sorting into a segment is deferred until
        the pending buffer outgrows :attr:`_flush_threshold`, so the
        sort is amortised over several epochs of churn."""
        if not slots.shape[0]:
            return
        self._pending.append(devices << _PACK_SHIFT | slots)
        self._pending_count += int(slots.shape[0])
        if self._pending_count >= self._flush_threshold:
            batches = self._pending
            self._pending = []
            self._pending_count = 0
            self._index_flush(batches[0] if len(batches) == 1
                              else _np.concatenate(batches))

    def _index_flush(self, packed) -> None:
        """Freeze packed keys into one immutable sorted segment.

        One value ``np.sort`` (no argsort indirection) orders the keys
        by device then slot.  Stale entries (departed or re-homed
        flows) linger until the segment list grows long, then one
        compaction pass drops every entry the ground-truth arrays no
        longer vouch for -- so index size stays proportional to live
        flows plus a few epochs of churn, even on very long runs.
        """
        if not packed.shape[0]:
            return
        self._segments.append(_np.sort(packed))
        if len(self._segments) >= 48:
            packed = _np.concatenate(self._segments)
            slots = packed & _PACK_MASK
            keep = (self.flow_active[slots]
                    & (self.flow_device[slots] == packed >> _PACK_SHIFT))
            self._segments = [_np.sort(packed[keep])]

    def utilization(self, devices):
        return (self.load_units[devices].astype(_np.float64)
                / self.capacity_units[devices])

    # --- free-slot stack -----------------------------------------------------

    def _pop_free(self, count: int):
        if count > self.free_top:
            raise ConfigurationError("flow slot pool exhausted")
        self.free_top -= count
        return self.free_slots[self.free_top:self.free_top + count].copy()

    def _push_free(self, slots) -> None:
        count = int(slots.shape[0])
        self.free_slots[self.free_top:self.free_top + count] = slots
        self.free_top += count

    # --- exact integer deltas ------------------------------------------------

    def _apply_delta(self, devices, tenants, rates, sign: int) -> None:
        """Apply (or defer) one churn set's aggregate contribution.

        Inside an epoch's churn phase (:meth:`defer_deltas` ..
        :meth:`flush_deltas`) the part is only enqueued; the flush
        fuses every queued part -- departures, arrivals, displaced and
        migrated flows -- into one signed bincount pass.  ``np.bincount``
        with float64 weights over (signed) integer rates is exact
        (every partial sum magnitude < 2**53), so the int64 cast loses
        nothing and the matrices stay bit-equal to a from-scratch
        rebuild no matter how deltas interleave or batch.
        """
        if self._deferring:
            self._delta_parts.append((devices, tenants, rates, sign))
            return
        self._apply_parts([(devices, tenants, rates, sign)])

    def defer_deltas(self) -> None:
        """Start batching delta applications (one epoch's churn phase)."""
        self._deferring = True

    def flush_deltas(self) -> None:
        """Fold every deferred part into the aggregates in one pass."""
        self._deferring = False
        if self._delta_parts:
            parts, self._delta_parts = self._delta_parts, []
            self._apply_parts(parts)

    def _apply_parts(self, parts) -> None:
        tenant_count = self.tenant_count
        size = self.total_devices * tenant_count
        if len(parts) == 1:
            devices, tenants, rates, sign = parts[0]
            keys = devices * tenant_count + tenants
            unit_delta = _np.bincount(
                keys, weights=rates.astype(_np.float64), minlength=size,
            ).astype(_np.int64).reshape(self.total_devices, tenant_count)
            flow_delta = _np.bincount(keys, minlength=size).astype(
                _np.int64).reshape(self.total_devices, tenant_count)
            if sign < 0:
                unit_delta = -unit_delta
                flow_delta = -flow_delta
        else:
            keys = _np.concatenate([
                part_devices * tenant_count + part_tenants
                for part_devices, part_tenants, _, _ in parts])
            rate_weights = _np.concatenate([
                part_rates.astype(_np.float64) * part_sign
                for _, _, part_rates, part_sign in parts])
            flow_weights = _np.concatenate([
                _np.full(part_rates.shape[0], float(part_sign))
                for _, _, part_rates, part_sign in parts])
            unit_delta = _np.bincount(
                keys, weights=rate_weights, minlength=size,
            ).astype(_np.int64).reshape(self.total_devices, tenant_count)
            flow_delta = _np.bincount(
                keys, weights=flow_weights, minlength=size,
            ).astype(_np.int64).reshape(self.total_devices, tenant_count)
        # load == per-device sum of tenant units, so the row sum of the
        # int64 unit delta is the exact third bincount for free.
        self.tenant_units += unit_delta
        self.tenant_flows += flow_delta
        self.load_units += unit_delta.sum(axis=1)

    def stats_weights(self):
        """Per-device (resident, non-resident) flow-count weights.

        The incremental path's cheap derivation: O(devices x tenants)
        over the resident aggregate matrices, never touching per-flow
        state.  The full-recompute oracle rederives the same integer
        arrays from the raw flow arrays (:meth:`stats_weights_full`).
        """
        weights = self.tenant_flows
        resident_weight = _np.where(self.resident, weights, 0).sum(axis=1)
        return resident_weight, weights.sum(axis=1) - resident_weight

    def stats_weights_full(self):
        """The O(flows) oracle for :meth:`stats_weights`.

        One residency-bit gather plus two float64 bincounts over the
        per-flow arrays; 0/1 weights sum far below 2**53, so the int64
        cast is exact and must equal the aggregate-derived arrays bit
        for bit.
        """
        active = self.flow_active.astype(_np.float64)
        resident_bits = self.resident[self.flow_device, self.flow_tenant]
        total = _np.bincount(self.flow_device, weights=active,
                             minlength=self.total_devices).astype(_np.int64)
        resident_weight = _np.bincount(
            self.flow_device, weights=active * resident_bits,
            minlength=self.total_devices).astype(_np.int64)
        return resident_weight, total - resident_weight

    def rebuild_aggregates(self):
        """The O(flows) oracle: aggregates from the raw flow arrays.

        Inactive slots contribute exactly zero (their rates are masked
        before the bincount), so stale device ids in freed slots are
        harmless.
        """
        tenant_count = self.tenant_count
        size = self.total_devices * tenant_count
        active = self.flow_active.astype(_np.float64)
        rates = self.flow_rate_units.astype(_np.float64) * active
        keys = self.flow_device * tenant_count + self.flow_tenant
        tenant_units = _np.bincount(keys, weights=rates, minlength=size
                                    ).astype(_np.int64).reshape(
                                        self.total_devices, tenant_count)
        tenant_flows = _np.bincount(keys, weights=active, minlength=size
                                    ).astype(_np.int64).reshape(
                                        self.total_devices, tenant_count)
        load_units = _np.bincount(self.flow_device, weights=rates,
                                  minlength=self.total_devices
                                  ).astype(_np.int64)
        return load_units, tenant_units, tenant_flows

    # --- flow mutations (shared by every mode) -------------------------------

    def remove_flows(self, slots) -> None:
        self._apply_delta(self.flow_device[slots], self.flow_tenant[slots],
                          self.flow_rate_units[slots], sign=-1)
        self.flow_active[slots] = False
        self._push_free(slots)

    def add_flows(self, rates, tenants, devices) -> None:
        slots = self._pop_free(int(rates.shape[0]))
        self.flow_rate_units[slots] = rates
        self.flow_tenant[slots] = tenants
        self.flow_device[slots] = devices
        self.flow_active[slots] = True
        self._index_add(slots, devices)
        self._apply_delta(devices, tenants, rates, sign=+1)

    def move_flows(self, slots, devices) -> None:
        """Re-home ``slots`` (rates and tenants unchanged): conservation
        by construction -- one negative delta, one positive."""
        tenants = self.flow_tenant[slots]
        rates = self.flow_rate_units[slots]
        self._apply_delta(self.flow_device[slots], tenants, rates, sign=-1)
        self.flow_device[slots] = devices
        self._index_add(slots, devices)
        self._apply_delta(devices, tenants, rates, sign=+1)

    @property
    def active_flows(self) -> int:
        return int(self.tenant_flows.sum())


class Orchestrator:
    """Advances a :class:`FleetState` through N epochs of churn."""

    def __init__(self, fleet_spec: Optional[FleetSpec] = None,
                 spec: Optional[OrchestratorSpec] = None,
                 mode: str = "incremental",
                 history: Optional[FleetHistory] = None,
                 monitor: Optional[SloMonitor] = None,
                 context: Optional[SimContext] = None) -> None:
        if mode not in MODES:
            raise ConfigurationError(
                f"unknown orchestrator mode {mode!r}; "
                f"choose from {', '.join(MODES)}")
        self.fleet_spec = fleet_spec or FleetSpec()
        self.spec = spec or OrchestratorSpec()
        self.mode = mode
        self.context = ensure_context(context)
        self.monitor = monitor or SloMonitor(default_epoch_slos())
        self.state = FleetState(self.fleet_spec, self.spec,
                                history=history, context=self.context)
        self._digest = hashlib.sha256()

    @classmethod
    def from_scenario(cls, scenario, mode: str = "incremental",
                      monitor: Optional[SloMonitor] = None,
                      context: Optional[SimContext] = None) -> "Orchestrator":
        return cls(
            fleet_spec=FleetSpec.from_scenario(scenario),
            spec=OrchestratorSpec.from_scenario(scenario),
            mode=mode, monitor=monitor, context=context,
        )

    # --- placement -----------------------------------------------------------

    def _place(self, epoch: int, channel: str, count: int,
               snapshot_util, alive, draws=None):
        """Pick a device for each of ``count`` flows, policy-faithfully.

        Decisions read the start-of-epoch utilisation snapshot, like a
        real control loop acting on its last observation -- and, being
        a pure function of state both modes share bit-equally, they are
        identical between the incremental and full paths.  ``draws``
        supplies pre-drawn raw uint32 randomness from the epoch's fused
        block (the hot arrival path); ad-hoc callers fall back to their
        own named channel.
        """
        state = self.state
        policy = self.spec.policy
        alive_count = int(alive.shape[0])
        if alive_count == 0:
            raise ConfigurationError("no alive devices to place flows on")
        if policy == "flow-hash":
            if draws is None:
                picks = state.churn_stream.picks(
                    epoch, channel, count, alive_count)
            else:
                picks = ChurnStream.as_picks(draws[:count], alive_count)
            return alive[picks]
        if policy == "round-robin":
            index = (state.round_robin_cursor
                     + _np.arange(count, dtype=_np.int64)) % alive_count
            state.round_robin_cursor = int(
                (state.round_robin_cursor + count) % alive_count)
            return alive[index]
        # least-loaded: spread over alive devices in ascending
        # start-of-epoch utilisation (stable order).
        order = _np.argsort(snapshot_util[alive], kind="stable")
        return alive[order[_np.arange(count, dtype=_np.int64) % alive_count]]

    # --- churn steps ---------------------------------------------------------

    def _draw_departures(self, epoch: int, count: int, primary=None):
        """Pick ``count`` distinct active flow slots, deterministically.

        Uniform candidate draws over the slot space are filtered to
        active, deduplicated (sorted, so the order is defined) and
        topped up from salted retry channels until the quota fills --
        O(churn) expected work, no O(flows) scan.  ``primary`` carries
        the first round's raw draws from the epoch's fused block; the
        (rare) retry rounds draw their own channels.
        """
        state = self.state
        count = min(count, state.active_flows)
        if count == 0:
            return _np.empty(0, dtype=_np.int64)
        chosen = _np.empty(0, dtype=_np.int64)
        for salt in range(64):
            need = count - int(chosen.shape[0])
            if need == 0:
                break
            # 1.25x oversampling covers the expected loss (inactive
            # fraction ~ churn, duplicate rate ~ churn) with an order
            # of magnitude to spare; the salted retry loop mops up the
            # pathological remainder.
            if salt == 0 and primary is not None:
                candidates = ChurnStream.as_picks(
                    primary, state.capacity_slots)
            else:
                candidates = state.churn_stream.picks(
                    epoch, f"depart/{salt}", need + (need >> 2) + 8,
                    state.capacity_slots)
            # Sort-based distinct (== np.unique, which pays for a hash
            # table this hot path does not need).
            candidates = _np.sort(candidates)
            if candidates.shape[0] > 1:
                keep = _np.empty(candidates.shape[0], dtype=bool)
                keep[0] = True
                _np.not_equal(candidates[1:], candidates[:-1], out=keep[1:])
                candidates = candidates[keep]
            candidates = candidates[state.flow_active[candidates]]
            if chosen.shape[0]:
                candidates = candidates[~_np.isin(candidates, chosen)]
            chosen = _np.concatenate([chosen, candidates[:need]])
        return _np.sort(chosen)

    def _arrivals(self, epoch: int, count: int, snapshot_util, alive,
                  draws=None) -> int:
        state = self.state
        count = min(count, state.free_top)
        if count == 0:
            return 0
        if draws is not None:
            rate_draws, tenant_draws, place_draws = draws
            raw_rates = ChurnStream.as_harmonic_units(
                rate_draws[:count], state.arrival_scale_units,
                state.max_rank)
            tenants = ChurnStream.as_picks(
                tenant_draws[:count], state.tenant_count)
        else:
            place_draws = None
            raw_rates = state.churn_stream.harmonic_rate_units(
                epoch, "arrive-rate", count,
                state.arrival_scale_units, state.max_rank)
            tenants = state.churn_stream.picks(
                epoch, "arrive-tenant", count, state.tenant_count)
        rates = _np.minimum(raw_rates, state.max_rate_units)
        devices = self._place(epoch, "arrive-place", count,
                              snapshot_util, alive, draws=place_draws)
        state.add_flows(rates, tenants, devices)
        return count

    def _displace_device(self, epoch: int, device: int, channel: str,
                         snapshot_util, alive) -> int:
        """Move every flow off ``device`` (already out of ``alive``)."""
        state = self.state
        slots = state.device_flows(device)
        if slots.shape[0]:
            targets = self._place(epoch, channel, int(slots.shape[0]),
                                  snapshot_util, alive)
            state.move_flows(slots, targets)
        state.resident[device] = False
        return int(slots.shape[0])

    def _maybe_migrate(self, epoch: int, snapshot_util, alive) -> int:
        """Checkpoint/migrate the heaviest tenant off the hottest device.

        Runs inside the deferred-delta churn phase, so the tenant-load
        read observes the start-of-epoch aggregates -- the same
        last-scrape semantics as every placement decision -- while the
        flow set itself comes from the live ground-truth arrays.
        """
        state = self.state
        if alive.shape[0] < 2:
            return 0
        util = snapshot_util[alive]
        hot_position = int(_np.argmax(util))
        if float(util[hot_position]) <= self.spec.migrate_threshold:
            return 0
        source = int(alive[hot_position])
        tenant = int(_np.argmax(state.tenant_units[source]))
        order = alive[_np.argsort(util, kind="stable")]
        target = int(order[0]) if int(order[0]) != source else int(order[1])
        on_source = state.device_flows(source)
        slots = on_source[state.flow_tenant[on_source] == tenant]
        if not slots.shape[0]:
            return 0
        state.move_flows(
            slots, _np.full(int(slots.shape[0]), target, dtype=_np.int64))
        self.context.trace.instant(
            "orchestrator.migrate", ts_ps=self._ts(epoch),
            epoch=epoch, tenant=tenant, source=source, target=target,
            flows=int(slots.shape[0]))
        return 1

    # --- residency scheduling ------------------------------------------------

    def _schedule_residency(self) -> Tuple[int, int]:
        """Partial-reconfiguration scheduling under the grant budget.

        The desired plan is the slots-heaviest tenants per alive device
        (:func:`residency_matrix` semantics); evictions are free, new
        grants cost a bitstream load each and at most ``pr_budget``
        happen per epoch -- the heaviest-loaded candidates win, the
        rest stay non-resident (and pay the PR penalty) until a later
        epoch.  ``resident`` stays a subset of the desired plan, so
        per-device residency can never exceed ``slots_per_device``.
        """
        state = self.state
        desired = desired_residency(
            state.tenant_units, self.fleet_spec.slots_per_device)
        desired[state.status != _ALIVE] = False
        grants = desired & ~state.resident
        candidates = int(grants.sum())
        budget = self.spec.pr_budget
        granted = candidates
        if budget and candidates > budget:
            device_index, tenant_index = _np.nonzero(grants)
            loads = state.tenant_units[device_index, tenant_index]
            order = _np.lexsort((tenant_index, device_index, -loads))
            grants = _np.zeros_like(grants)
            grants[device_index[order[:budget]],
                   tenant_index[order[:budget]]] = True
            granted = budget
        state.resident = (state.resident & desired) | grants
        return granted, candidates - granted

    # --- autoscaling ---------------------------------------------------------

    def _autoscale(self, epoch: int, report) -> Tuple[int, int]:
        """Turn SLO violations into capacity moves.

        Upper-bound breaches (tail latency, utilisation ceiling)
        activate parked spares; a lower-bound utilisation breach drains
        the least-loaded devices back to the pool -- but never below
        the active demand (alive capacity must keep covering the total
        offered units) and never below one device.
        """
        if not self.spec.autoscale:
            return 0, 0
        state = self.state
        specs = {spec.name: spec for spec in self.monitor.specs}
        scale_up = scale_down = False
        for violation in report.violations:
            spec = specs.get(violation.slo)
            if spec is None:
                continue
            if spec.upper is not None and violation.value > spec.upper:
                scale_up = True
            elif spec.lower is not None and violation.value < spec.lower:
                scale_down = True
        if scale_up:
            parked = _np.flatnonzero(state.status == _PARKED)
            chosen = parked[:self.spec.scale_step]
            if chosen.shape[0]:
                state.status[chosen] = _ALIVE
                self.context.trace.instant(
                    "orchestrator.autoscale", ts_ps=self._ts(epoch),
                    epoch=epoch, direction="up",
                    devices=int(chosen.shape[0]))
            return int(chosen.shape[0]), 0
        if scale_down:
            alive = state.alive_devices()
            demand = int(state.load_units.sum())
            capacity = int(state.capacity_units[alive].sum())
            order = alive[_np.argsort(state.utilization(alive), kind="stable")]
            drained = 0
            snapshot = (state.load_units.astype(_np.float64)
                        / state.capacity_units)
            for device in order[:self.spec.scale_step]:
                device = int(device)
                remaining = capacity - int(state.capacity_units[device])
                if remaining < demand or alive.shape[0] - drained <= 1:
                    break
                state.status[device] = _PARKED
                self._displace_device(
                    epoch, device, f"scale-down/{drained}", snapshot,
                    state.alive_devices())
                capacity = remaining
                drained += 1
            if drained:
                self.context.trace.instant(
                    "orchestrator.autoscale", ts_ps=self._ts(epoch),
                    epoch=epoch, direction="down", devices=drained)
            return 0, drained
        return 0, 0

    # --- stats ---------------------------------------------------------------

    def _ts(self, epoch: int) -> int:
        return int(epoch) * self.spec.epoch_seconds * 10**12

    def _epoch_stats(self, epoch: int, counters: Dict[str, int],
                     violations: int) -> EpochStats:
        """Fleet-wide stats over the resident per-device arrays.

        Latency factors through per-device tables, so the flow
        population collapses to two integer weights per device
        (resident / non-resident flow counts) and percentiles are
        exact weighted nearest-rank over 2 x devices values.  The
        incremental path derives those weights O(devices x tenants)
        from the resident aggregate matrices; the full-recompute
        oracle rederives them O(flows) from the raw flow arrays, and
        ``verify`` mode pins both derivations bit-for-bit.
        """
        state = self.state
        resident_ns, non_resident_ns = device_latency_tables(
            state.load_units / RATE_UNITS_PER_GBPS,
            state.capacity_gbps, self.fleet_spec.mean_packet_bytes)
        # A flow's latency depends only on its device and whether its
        # tenant is resident there, so the devices x tenants weight
        # matrix collapses to two exact integer weights per device.
        # Weighted nearest-rank percentiles are invariant under
        # aggregating equal values, so this is bit-equal to ranking the
        # full matrix -- at 2 x devices values instead.
        if self.mode == "incremental":
            resident_weight, non_resident_weight = state.stats_weights()
        else:
            resident_weight, non_resident_weight = state.stats_weights_full()
            if self.mode == "verify":
                check_res, check_non = state.stats_weights()
                if not (_np.array_equal(check_res, resident_weight)
                        and _np.array_equal(check_non, non_resident_weight)):
                    raise DeltaMismatch(epoch, "stats weight arrays")
        flows = int(resident_weight.sum() + non_resident_weight.sum())
        values = _np.concatenate([resident_ns, non_resident_ns])
        value_weights = _np.concatenate(
            [resident_weight, non_resident_weight])
        p50, p99 = weighted_percentiles(values, value_weights, (0.50, 0.99))
        mean_ns = (float((values * value_weights).sum() / flows)
                   if flows else 0.0)
        alive = state.alive_devices()
        utilization = state.utilization(alive)
        return EpochStats(
            epoch=epoch,
            flows=flows,
            arrivals=counters.get("arrivals", 0),
            departures=counters.get("departures", 0),
            failures=counters.get("failures", 0),
            drains=counters.get("drains", 0),
            migrations=counters.get("migrations", 0),
            pr_grants=counters.get("pr_grants", 0),
            pr_deferred=counters.get("pr_deferred", 0),
            scaled_up=counters.get("scaled_up", 0),
            scaled_down=counters.get("scaled_down", 0),
            alive_devices=int(alive.shape[0]),
            offered_gbps=float(state.load_units.sum() / RATE_UNITS_PER_GBPS),
            utilization_mean=float(utilization.mean()),
            utilization_max=float(utilization.max()),
            overloaded_devices=int((utilization > 1.0).sum()),
            non_resident_flows=int(non_resident_weight.sum()),
            p50_ns=p50,
            p99_ns=p99,
            mean_ns=mean_ns,
            slo_violations=violations,
        )

    def _publish(self, stats: EpochStats) -> None:
        metrics = self.context.metrics.namespace("fleet.epoch")
        metrics.set_gauge("p50_ns", stats.p50_ns)
        metrics.set_gauge("p99_ns", stats.p99_ns)
        metrics.set_gauge("mean_ns", stats.mean_ns)
        metrics.set_gauge("utilization_mean", stats.utilization_mean)
        metrics.set_gauge("utilization_max", stats.utilization_max)
        metrics.set_gauge("overloaded_devices", stats.overloaded_devices)
        metrics.set_gauge("non_resident_flows", stats.non_resident_flows)
        metrics.set_gauge("flows", stats.flows)
        metrics.set_gauge("alive_devices", stats.alive_devices)
        metrics.set_gauge("offered_gbps", stats.offered_gbps)
        metrics.increment("arrivals", stats.arrivals)
        metrics.increment("departures", stats.departures)
        metrics.increment("failures", stats.failures)
        metrics.increment("drains", stats.drains)
        metrics.increment("migrations", stats.migrations)
        metrics.increment("pr_grants", stats.pr_grants)
        metrics.increment("scaled_up", stats.scaled_up)
        metrics.increment("scaled_down", stats.scaled_down)

    def _update_digest(self) -> None:
        """Fold this epoch's state into the running fingerprint.

        The digest is a compact cross-mode check, not the equality
        proof: ``verify`` mode compares the full aggregate matrices
        bit-for-bit every epoch, and callers compare whole
        ``to_json()`` payloads.  Hashing the per-device load vector
        plus exact per-tenant totals covers both axes of the tenant
        matrices at a fraction of the bytes, which matters because
        this runs every epoch in every mode.
        """
        state = self.state
        self._digest.update(state.load_units.tobytes())
        self._digest.update(state.tenant_units.sum(axis=0).tobytes())
        self._digest.update(state.tenant_flows.sum(axis=0).tobytes())
        self._digest.update(_np.packbits(state.resident).tobytes())
        self._digest.update(state.status.tobytes())

    def _tenant_stats(self) -> Tuple[TenantStats, ...]:
        state = self.state
        resident_ns, non_resident_ns = device_latency_tables(
            state.load_units / RATE_UNITS_PER_GBPS,
            state.capacity_gbps, self.fleet_spec.mean_packet_bytes)
        latency = _np.where(state.resident, resident_ns[:, None],
                            non_resident_ns[:, None])
        tenants: List[TenantStats] = []
        for tenant in range(state.tenant_count):
            weights = state.tenant_flows[:, tenant]
            flows = int(weights.sum())
            if flows == 0:
                tenants.append(TenantStats(tenant, 0, 0.0, 0.0, 0.0))
                continue
            p50, p99 = weighted_percentiles(
                latency[:, tenant], weights, (0.50, 0.99))
            tenants.append(TenantStats(
                tenant=tenant, flows=flows,
                offered_gbps=float(
                    state.tenant_units[:, tenant].sum() / RATE_UNITS_PER_GBPS),
                p50_ns=p50, p99_ns=p99,
            ))
        return tuple(tenants)

    # --- the epoch loop ------------------------------------------------------

    def run(self) -> OrchestratorResult:
        with _profile_phase("orchestrator.run"):
            return self._run()

    def _run(self) -> OrchestratorResult:
        import time as _time

        state = self.state
        spec = self.spec
        trace = self.context.trace
        run_span = trace.begin(
            "orchestrator.run", ts_ps=0,
            mode=self.mode, epochs=spec.epochs,
            flows=self.fleet_spec.flow_count, devices=state.total_devices)
        started = _time.perf_counter()
        epochs: List[EpochStats] = []
        total_violations = 0
        for epoch in range(spec.epochs):
            span = trace.begin("orchestrator.epoch", ts_ps=self._ts(epoch),
                               parent=run_span, epoch=epoch)
            counters: Dict[str, int] = {}
            # Start-of-epoch observation every placement decision reads.
            snapshot_util = (state.load_units.astype(_np.float64)
                             / state.capacity_units)
            alive = state.alive_devices()
            # Steps 1-4 mutate flows but defer their aggregate deltas:
            # every control decision in the churn phase reads the
            # start-of-epoch observation anyway (a real control loop
            # acts on its last scrape), so the whole churn set folds
            # into the aggregates in ONE fused signed bincount pass at
            # the flush below -- the delta-vectorized hot path.
            state.defer_deltas()

            # 1. Device failure (hard: flows re-placed, device lost).
            if (spec.failure_every
                    and epoch % spec.failure_every == spec.failure_every - 1
                    and alive.shape[0] > 1):
                victim = int(alive[int(state.churn_stream.picks(
                    epoch, "fail-pick", 1, int(alive.shape[0]))[0])])
                state.status[victim] = _FAILED
                alive = state.alive_devices()
                moved = self._displace_device(
                    epoch, victim, "fail-place", snapshot_util, alive)
                counters["failures"] = 1
                trace.instant("orchestrator.failure", ts_ps=self._ts(epoch),
                              epoch=epoch, device=victim, flows=moved)

            # 2. Graceful drain (least-loaded device parks).
            if (spec.drain_every
                    and epoch % spec.drain_every == spec.drain_every - 1
                    and alive.shape[0] > 1):
                order = alive[_np.argsort(snapshot_util[alive], kind="stable")]
                victim = int(order[0])
                state.status[victim] = _PARKED
                alive = state.alive_devices()
                moved = self._displace_device(
                    epoch, victim, "drain-place", snapshot_util, alive)
                counters["drains"] = 1
                trace.instant("orchestrator.drain", ts_ps=self._ts(epoch),
                              epoch=epoch, device=victim, flows=moved)

            # 3. Flow churn: departures free slots, arrivals reuse them.
            #    All four draw streams the common case consumes come
            #    out of ONE fused splitmix64 block per epoch.
            departure_need = min(state.churn_per_epoch, state.active_flows)
            departure_sample = (departure_need + (departure_need >> 2) + 8
                                if departure_need else 0)
            (departure_draws, rate_draws, tenant_draws,
             place_draws) = state.churn_stream.block(
                epoch, "churn", (departure_sample, state.churn_per_epoch,
                                 state.churn_per_epoch,
                                 state.churn_per_epoch))
            departures = self._draw_departures(
                epoch, state.churn_per_epoch, primary=departure_draws)
            if departures.shape[0]:
                state.remove_flows(departures)
            counters["departures"] = int(departures.shape[0])
            counters["arrivals"] = self._arrivals(
                epoch, state.churn_per_epoch, snapshot_util, alive,
                draws=(rate_draws, tenant_draws, place_draws))

            # 4. Checkpoint/migrate off the hottest device.
            counters["migrations"] = self._maybe_migrate(
                epoch, snapshot_util, alive)

            # 5. Fold the whole churn set into the aggregates at once,
            #    then (full/verify) rebuild from the flow arrays -- the
            #    oracle -- and in verify mode pin both bit-for-bit.
            state.flush_deltas()
            if self.mode != "incremental":
                load, units, flows = state.rebuild_aggregates()
                if self.mode == "verify":
                    if not _np.array_equal(load, state.load_units):
                        raise DeltaMismatch(epoch, "device load")
                    if not _np.array_equal(units, state.tenant_units):
                        raise DeltaMismatch(epoch, "tenant load matrix")
                    if not _np.array_equal(flows, state.tenant_flows):
                        raise DeltaMismatch(epoch, "tenant flow counts")
                state.load_units, state.tenant_units, state.tenant_flows = (
                    load, units, flows)

            # 6. Partial-reconfiguration scheduling under the budget.
            granted, deferred = self._schedule_residency()
            counters["pr_grants"] = granted
            counters["pr_deferred"] = deferred

            # 7. Observe, publish, evaluate SLOs, autoscale on the
            #    verdict.  The epoch's stats are the observation the
            #    autoscaler acted on; its capacity moves land in the
            #    NEXT epoch's observation (a control loop acts on its
            #    last scrape), so each epoch costs exactly one stats
            #    pass.
            stats = self._epoch_stats(epoch, counters, 0)
            self._publish(stats)
            report = self.monitor.evaluate(self.context.metrics, trace)
            total_violations += len(report.violations)
            up, down = self._autoscale(epoch, report)
            if up or down:
                metrics = self.context.metrics.namespace("fleet.epoch")
                metrics.increment("scaled_up", up)
                metrics.increment("scaled_down", down)
            stats = _dataclasses.replace(
                stats, scaled_up=up, scaled_down=down,
                slo_violations=len(report.violations))
            epochs.append(stats)
            self._update_digest()
            trace.end(span, ts_ps=self._ts(epoch + 1),
                      flows=stats.flows, p99_ns=round(stats.p99_ns, 3),
                      alive=stats.alive_devices)

        tenants = self._tenant_stats()
        flow_digest = hashlib.sha256()
        flow_digest.update(state.flow_active.tobytes())
        flow_digest.update(state.flow_device.tobytes())
        flow_digest.update(state.flow_tenant.tobytes())
        flow_digest.update(state.flow_rate_units.tobytes())
        wall_s = _time.perf_counter() - started
        trace.end(run_span, ts_ps=self._ts(spec.epochs),
                  wall_s=round(wall_s, 6))
        return OrchestratorResult(
            fleet_spec=self.fleet_spec,
            spec=spec,
            mode=self.mode,
            epochs=tuple(epochs),
            tenants=tenants,
            aggregate_digest=self._digest.hexdigest(),
            flow_digest=flow_digest.hexdigest(),
            total_slo_violations=total_violations,
            wall_s=wall_s,
        )


def run_orchestrator(fleet_spec: Optional[FleetSpec] = None,
                     spec: Optional[OrchestratorSpec] = None,
                     mode: str = "incremental",
                     history: Optional[FleetHistory] = None,
                     monitor: Optional[SloMonitor] = None,
                     context: Optional[SimContext] = None
                     ) -> OrchestratorResult:
    """One-call epoch orchestration: build the state and run the day."""
    return Orchestrator(fleet_spec, spec, mode=mode, history=history,
                        monitor=monitor, context=context).run()
