"""Parallel sweep runner with content-keyed result caching.

Every headline figure of the paper (Figs 10, 16, 17, 18) is a sweep of
independent (application x device x packet-size) points through the same
deterministic pipeline models.  Independence is the whole trick -- the
same shape SYNERGY exploits by treating FPGA workloads as schedulable
units and Funky by fanning them across isolated executors -- so this
module does the simulation-side equivalent:

* a :class:`SweepPlan` expands into independent :class:`SweepPoint`\\ s;
* a :class:`SweepRunner` executes them across a
  ``concurrent.futures.ProcessPoolExecutor`` (``workers=1`` falls back
  to an in-process serial loop with no pool at all) and merges results
  in plan order, so the output -- including exported traces -- is
  byte-identical no matter how many workers ran;
* a :class:`SweepCache` memoises point results under a **content key**
  (the stage timing parameters of the chain, the packet size, the packet
  count, and the offered load).  The analytic models are pure functions
  of those inputs, so a repeated figure is a cache lookup, not a
  re-simulation.

Each cold point then executes through a three-tier engine: cache hit ->
the closed-form numpy kernel (:mod:`repro.sim.vector`) -> the scalar
DES-equivalent loop for chains with non-analytic features.  The kernel
is pinned to exact integer equality against the scalar reference, so
the tier a point took is invisible in the results.

Only plain strings and numbers cross the process boundary: a worker
receives an app name, a device name, and sweep parameters, reconstructs
the chain from the catalog, and returns floats (plus the point's JSONL
trace when tracing was requested).  Workers never share the parent's
cache; the parent consults the cache before dispatching and stores the
merged results afterwards.
"""

import dataclasses
import hashlib
import json
import math
import os
import tempfile
import threading
from collections import OrderedDict
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.profiler import phase as _profile_phase
from repro.runtime.context import SimContext, isolated_context_stack
from repro.sim.vector import ENGINES, chain_supports_vector

#: Paper sweep of Figure 17/18: the default packet-size axis.
DEFAULT_PACKET_SIZES: Tuple[int, ...] = (64, 128, 256, 512, 1024)


# ---------------------------------------------------------------------------
# Plan and points
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepPoint:
    """One independent unit of sweep work.

    ``engine`` picks the execution tier for the point's untraced bulk
    (``auto`` / ``vector`` / ``des`` -- see :mod:`repro.sim.vector`).
    It is deliberately *not* part of the cache key and not serialised in
    results: the vector kernel is pinned to exact equality against the
    scalar path, so the tier is invisible in the output.
    """

    app: str
    device: str
    packet_size_bytes: int
    packet_count: int
    with_harmonia: bool = True
    trace: bool = False
    engine: str = "auto"

    def label(self) -> str:
        variant = "harmonia" if self.with_harmonia else "native"
        return (f"{self.app}@{self.device}/{variant}/"
                f"{self.packet_size_bytes}B")


@dataclass(frozen=True)
class SweepPlan:
    """An (apps x devices x packet-sizes) sweep specification."""

    apps: Tuple[str, ...]
    devices: Tuple[str, ...]
    packet_sizes: Tuple[int, ...] = DEFAULT_PACKET_SIZES
    packets_per_point: int = 2_000
    with_harmonia: bool = True
    include_path_latency: bool = True
    trace: bool = False

    def __post_init__(self) -> None:
        if not self.apps or not self.devices or not self.packet_sizes:
            raise ConfigurationError(
                "a sweep plan needs at least one app, device, and packet size"
            )
        if self.packets_per_point < 1:
            raise ConfigurationError("packets_per_point must be >= 1")

    def expand(self) -> List[SweepPoint]:
        """The plan's points in canonical (app, device, size) order.

        Expansion is owned by the unified scenario spec
        (:meth:`repro.scenario.Scenario.expand_points`): the plan round
        trips through its scenario form, so sweeps, scenario files, and
        the differential fuzzer all expand one way.
        """
        return self.to_scenario().expand_points()

    def __len__(self) -> int:
        return len(self.apps) * len(self.devices) * len(self.packet_sizes)

    def to_scenario(self):
        """This plan as a sweep-kind :class:`repro.scenario.Scenario`."""
        from repro.scenario import Scenario, WorkloadSpec

        return Scenario(
            kind="sweep", apps=self.apps, devices=self.devices,
            workload=WorkloadSpec(
                packet_sizes=self.packet_sizes,
                packets_per_point=self.packets_per_point,
                with_harmonia=self.with_harmonia,
                include_path_latency=self.include_path_latency,
                trace=self.trace,
            ),
        )

    @classmethod
    def from_scenario(cls, scenario) -> "SweepPlan":
        """Build the plan a sweep-kind scenario describes."""
        if scenario.kind != "sweep":
            raise ConfigurationError(
                f"scenario kind {scenario.kind!r} cannot drive a sweep plan")
        workload = scenario.workload
        return cls(
            apps=tuple(scenario.apps), devices=tuple(scenario.devices),
            packet_sizes=tuple(workload.packet_sizes),
            packets_per_point=workload.packets_per_point,
            with_harmonia=workload.with_harmonia,
            include_path_latency=workload.include_path_latency,
            trace=workload.trace,
        )


# ---------------------------------------------------------------------------
# Content-keyed cache
# ---------------------------------------------------------------------------

def chain_signature(chain) -> Tuple[Tuple[Any, ...], ...]:
    """The timing-relevant content of a chain: one tuple per stage.

    Two chains with equal signatures are observationally identical to
    :func:`repro.sim.pipeline.run_packet_sweep` -- stage and chain names
    are deliberately excluded, so e.g. two apps whose datapaths happen to
    reduce to the same stage parameters share cache entries.
    """
    return tuple(
        (
            stage.clock.freq_mhz,
            stage.data_width_bits,
            stage.latency_cycles,
            stage.initiation_interval,
            stage.per_transaction_overhead_cycles,
        )
        for stage in chain.stages
    )


def sweep_cache_key(
    signature: Tuple[Tuple[Any, ...], ...],
    packet_size_bytes: int,
    packet_count: int,
    offered_load_bps: Optional[float] = None,
    trace_of: Optional[str] = None,
) -> str:
    """A stable content key for one analytic sweep point.

    ``trace_of`` is the chain name and is folded in **only for traced
    points**: throughput/latency are pure functions of the timing
    signature alone, but an exported trace embeds span names, so a
    traced entry may only be reused under the same chain name.
    """
    payload = json.dumps(
        [list(stage) for stage in signature]
        + [packet_size_bytes, packet_count, offered_load_bps, trace_of],
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SweepCache:
    """In-memory (optionally file-backed) memo of sweep-point results.

    Entries are keyed by :func:`sweep_cache_key` and carry the measured
    throughput/latency plus, when the point was traced, its exported
    JSONL -- a warm hit must be able to reproduce the cold run's trace
    byte for byte.  An entry without a stored trace does **not** satisfy
    a traced request (it counts as a miss), so enabling tracing never
    silently loses spans.

    ``max_entries`` bounds residency: the cache becomes an LRU (a hit
    refreshes an entry, a store beyond the bound evicts the least
    recently used one), so a long-lived serving daemon that keeps one
    cache resident forever cannot grow it without limit.  Evictions are
    counted on :attr:`evictions` and, when a registry is attached via
    :meth:`attach_metrics`, on the ``sweep.cache.evictions`` counter.

    All mutating operations take an internal lock, so one cache can be
    shared by concurrent daemon request threads.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError("max_entries must be >= 1 (or None)")
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self._metrics = None
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def attach_metrics(self, registry) -> "SweepCache":
        """Count future evictions on ``registry`` (``sweep.cache.evictions``)."""
        self._metrics = registry
        return self

    def _evict_over_bound(self) -> None:
        # Called with the lock held.
        if self.max_entries is None:
            return
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            if self._metrics is not None:
                self._metrics.increment("sweep.cache.evictions")

    def _lookup_locked(self, key: str, need_trace: bool
                       ) -> Optional[Dict[str, Any]]:
        # Called with the lock held.
        entry = self._entries.get(key)
        if entry is None or (need_trace and "trace_jsonl" not in entry):
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def _store_locked(self, key: str, entry: Dict[str, Any]) -> None:
        # Called with the lock held.
        existing = self._entries.get(key)
        if (existing is not None and "trace_jsonl" in existing
                and "trace_jsonl" not in entry):
            self._entries.move_to_end(key)
            return  # never downgrade an entry that carries its trace
        self._entries[key] = dict(entry)
        self._entries.move_to_end(key)
        self._evict_over_bound()

    def lookup(self, key: str, need_trace: bool) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._lookup_locked(key, need_trace)

    def lookup_many(self, keys: Sequence[str], need_traces: Sequence[bool]
                    ) -> List[Optional[Dict[str, Any]]]:
        """Probe a whole plan's keys under one lock acquisition.

        Semantically identical to ``[lookup(k, t) for k, t in ...]``
        (hit/miss counters, LRU refresh, trace-bearing rules), but a
        45-point sweep pays one lock round trip instead of 45 -- the
        probe the fused planner issues before partitioning work.
        """
        with self._lock:
            return [self._lookup_locked(key, need)
                    for key, need in zip(keys, need_traces)]

    def store(self, key: str, entry: Dict[str, Any]) -> None:
        with self._lock:
            self._store_locked(key, entry)

    def store_many(self, items: Iterable[Tuple[str, Dict[str, Any]]]) -> None:
        """Insert many entries under one lock acquisition.

        Same per-entry semantics as :meth:`store` (trace-downgrade
        protection, LRU bound enforced after every insert).
        """
        with self._lock:
            for key, entry in items:
                self._store_locked(key, entry)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    # --- persistence --------------------------------------------------------

    def save(self, path: str) -> int:
        """Write the cache as deterministic JSON; returns the entry count.

        The write is atomic: the JSON lands in a temporary file in the
        same directory and is moved into place with ``os.replace``, so a
        run interrupted mid-save leaves either the old file or the new
        one -- never a truncated half-cache.
        """
        with self._lock:
            snapshot = {key: entry for key, entry in self._entries.items()}
        directory = os.path.dirname(os.path.abspath(path))
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, prefix=os.path.basename(path) + ".",
            suffix=".tmp", delete=False,
        )
        try:
            with handle:
                json.dump(snapshot, handle, sort_keys=True,
                          separators=(",", ":"))
                handle.write("\n")
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return len(snapshot)

    def load(self, path: str) -> int:
        """Merge entries from ``path``; returns how many were loaded.

        A file that is not valid JSON (e.g. truncated by a crash that
        predates atomic saves) raises :class:`ConfigurationError` with
        the path, not a bare ``json`` traceback.
        """
        with open(path) as handle:
            try:
                loaded = json.load(handle)
            except ValueError as error:
                raise ConfigurationError(
                    f"{path} is not a sweep cache file (corrupt or "
                    f"truncated JSON: {error})"
                ) from None
        if not isinstance(loaded, dict):
            raise ConfigurationError(f"{path} is not a sweep cache file")
        with self._lock:
            for key, entry in loaded.items():
                self._entries.setdefault(key, entry)
            self._evict_over_bound()
        return len(loaded)


#: The process-wide cache every runner joins unless given a private one.
DEFAULT_CACHE = SweepCache()


# ---------------------------------------------------------------------------
# Point execution (worker side)
# ---------------------------------------------------------------------------

def _build_chain(point: SweepPoint):
    """App/device names -> the tailored datapath chain for this point."""
    from repro.apps import application_by_name
    from repro.platform.catalog import device_by_name

    app = application_by_name(point.app)
    device = device_by_name(point.device)
    shell = app.tailored_shell(device)
    return app.datapath(shell, point.with_harmonia)


#: One point executes at a time per process.  A point run mutates
#: process-wide state -- the global transaction-id counter and the
#: memoised (stateful, resettable) chains -- so two daemon request
#: threads interleaving would produce nondeterministic ids and corrupt
#: FIFO state.  The lock makes the critical section atomic; it costs the
#: single-threaded CLI nothing, and Python threads never overlapped the
#: CPU-bound simulation anyway.
_POINT_LOCK = threading.RLock()


def _run_chain_point(chain, point: SweepPoint) -> Dict[str, Any]:
    """Run one point on ``chain``; pure function of the chain's content.

    Runs with the ambient-context stack hidden, so results and traces do
    not depend on whether the caller happened to sit inside a
    ``with SimContext():`` block -- the worker-process path never does,
    and the serial path must match it byte for byte.
    """
    from repro.sim.pipeline import run_packet_sweep

    from repro.sim.pipeline import reset_transaction_ids

    with _POINT_LOCK, _profile_phase("sweep.point"), isolated_context_stack():
        # Every point starts from transaction id 0, so the ids a traced
        # point embeds in its spans cannot depend on pool-worker reuse
        # or on whatever ran earlier in this process.
        reset_transaction_ids()
        context = SimContext(name=point.label(), trace=True) if point.trace else None
        throughput_bps, mean_latency_ns = run_packet_sweep(
            chain, packet_size_bytes=point.packet_size_bytes,
            packet_count=point.packet_count, context=context,
            engine=point.engine,
        )
    entry: Dict[str, Any] = {
        "throughput_bps": throughput_bps,
        "mean_latency_ns": mean_latency_ns,
    }
    if context is not None:
        entry["trace_jsonl"] = context.trace.export_jsonl()
    return entry


#: Process-wide chain memo.  The (app, device, variant) combo repeats
#: across the packet-size axis and across runs, and a chain is a pure
#: (resettable) function of its combo, so each process -- pool worker or
#: parent -- tailors a given shell at most once.  Reads and writes take
#: :data:`_CHAIN_MEMO_LOCK`: concurrent daemon requests must never
#: interleave dict writes or observe a half-installed entry.
_CHAIN_MEMO: Dict[Tuple[str, str, bool], Any] = {}
_CHAIN_MEMO_LOCK = threading.Lock()


def _chain_for(point: SweepPoint):
    combo = (point.app, point.device, point.with_harmonia)
    with _CHAIN_MEMO_LOCK:
        chain = _CHAIN_MEMO.get(combo)
    if chain is None:
        # Tailoring is deterministic, so two threads racing to build the
        # same chain produce interchangeable objects; first store wins.
        chain = _build_chain(point)
        with _CHAIN_MEMO_LOCK:
            chain = _CHAIN_MEMO.setdefault(combo, chain)
    return chain


def _execute_point(point_fields: Tuple[Any, ...]) -> Dict[str, Any]:
    """Worker entry: rebuild the point and its chain, run, return floats."""
    point = SweepPoint(*point_fields)
    return _run_chain_point(_chain_for(point), point)


def run_point(point: SweepPoint) -> Dict[str, Any]:
    """Execute one point in isolation and return its raw result entry.

    The differential fuzzer's entry: it pins the engine on the point it
    passes in and compares the returned entries (including any
    ``trace_jsonl``) for exact equality across tiers.
    """
    return _run_chain_point(_chain_for(point), point)


# ---------------------------------------------------------------------------
# Fused multi-point planning
# ---------------------------------------------------------------------------

#: A fusable group's identity: same tailored chain, same packet count.
FuseKey = Tuple[Tuple[str, str, bool], int]


def partition_fusable(points: Sequence[SweepPoint],
                      indices: Iterable[int]
                      ) -> Tuple["OrderedDict[FuseKey, List[int]]", List[int]]:
    """Split pending point indices into fusable groups vs pool work.

    A point fuses when its untraced bulk would run on the vector kernel
    anyway: no trace requested (a traced point needs its own context and
    per-packet spans, so it keeps the per-point path) and an engine of
    ``auto``/``vector`` on a chain the kernel supports.  Fusable points
    group by (tailored chain, packet_count) -- one batched kernel call
    per group, bucketed by count so no padding packets exist -- with
    plan order preserved inside each group.  Everything else (traces,
    forced DES, non-analytic chains) lands in ``pooled`` for the
    per-point path; ``engine='vector'`` on an unsupported chain is
    deliberately routed there too, so it raises the same
    :class:`ConfigurationError` it always did.
    """
    groups: "OrderedDict[FuseKey, List[int]]" = OrderedDict()
    pooled: List[int] = []
    for index in indices:
        point = points[index]
        if not point.trace and point.engine != "des":
            chain = _chain_for(point)
            if chain_supports_vector(chain):
                key = ((point.app, point.device, point.with_harmonia),
                       point.packet_count)
                groups.setdefault(key, []).append(index)
                continue
        pooled.append(index)
    return groups, pooled


def run_fused_group(points: Sequence[SweepPoint],
                    indices: Sequence[int]) -> List[Dict[str, Any]]:
    """Execute one fusable group through the batched kernel, in-process.

    All ``indices`` must share a tailored chain and packet count (the
    :func:`partition_fusable` contract).  Returns one result entry per
    index, bit-exact equal to what :func:`run_point` produces for the
    same untraced points -- same isolation discipline (point lock,
    hidden context stack, transaction ids reset), no ProcessPool, no
    pickling, one kernel launch for the whole group.
    """
    from repro.sim.pipeline import reset_transaction_ids
    from repro.sim.vector import run_packet_sweep_vector_batch

    first = points[indices[0]]
    chain = _chain_for(first)
    packet_count = first.packet_count
    sizes = [points[index].packet_size_bytes for index in indices]
    with _POINT_LOCK, _profile_phase("sweep.fused"), isolated_context_stack():
        reset_transaction_ids()
        rows = run_packet_sweep_vector_batch(chain, sizes, packet_count)
    return [
        {"throughput_bps": throughput_bps, "mean_latency_ns": mean_latency_ns}
        for throughput_bps, mean_latency_ns in rows
    ]


def _pool_chunksize(count: int, workers: int) -> int:
    """Chunk size for fanning ``count`` points over ``workers`` processes.

    Ceil-divides the work into roughly ``4 * workers`` chunks so every
    worker gets a few chunks to balance across.  The old floor-divide
    left the remainder points in undersized tail chunks (and collapsed
    to chunks of 1 -- maximum pickling overhead -- for small batches).
    """
    return max(1, math.ceil(count / (workers * 4)))


def point_chain(point: SweepPoint):
    """The (memoised) tailored chain a point runs on."""
    return _chain_for(point)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PointResult:
    """One sweep point's outcome plus its cache provenance."""

    point: SweepPoint
    throughput_bps: float
    mean_latency_ns: float
    cache_key: str
    cached: bool
    trace_jsonl: str = ""


class SweepResult:
    """Deterministically merged outcome of one :class:`SweepRunner` run."""

    def __init__(self, plan: SweepPlan, points: List[PointResult],
                 workers: int, fused_points: int = 0, fused_groups: int = 0,
                 pooled_points: int = 0, spawned_pool: bool = False) -> None:
        self.plan = plan
        self.points = points
        self.workers = workers
        #: Execution provenance (how the cold work ran), deliberately
        #: kept out of :meth:`to_json`: cache-miss points fused through
        #: the batched kernel vs executed per-point, batched kernel
        #: launches, and whether this run spawned its own ProcessPool
        #: (False when an externally owned executor was reused).
        self.fused_points = fused_points
        self.fused_groups = fused_groups
        self.pooled_points = pooled_points
        self.spawned_pool = spawned_pool

    def __len__(self) -> int:
        return len(self.points)

    @property
    def cache_hits(self) -> int:
        return sum(1 for point in self.points if point.cached)

    def samples(self):
        """Per-(app, device) Figure-17 samples, in plan order.

        Returns ``{(app, device): [PerformanceSample, ...]}`` with the
        same path-latency fold :meth:`CloudApplication.measure` applies.
        """
        from repro.apps import application_by_name

        apps = {name: application_by_name(name) for name in self.plan.apps}
        grouped: Dict[Tuple[str, str], list] = {}
        for result in self.points:
            sample = apps[result.point.app].sample_for_point(
                result.point.packet_size_bytes,
                result.throughput_bps,
                result.mean_latency_ns,
                include_path_latency=self.plan.include_path_latency,
            )
            grouped.setdefault((result.point.app, result.point.device),
                               []).append(sample)
        return grouped

    def merged_trace_jsonl(self) -> str:
        """Every point's trace concatenated in plan order.

        Per-point traces come from per-point fresh contexts, so the
        concatenation is identical whether the points ran serially, on
        four workers, or straight out of the cache.
        """
        return "".join(point.trace_jsonl for point in self.points)

    def stitched_trace_jsonl(self, *, trace_id: str,
                             scenario_id: Optional[str] = None) -> str:
        """One *connected* span tree: request -> execute -> point spans.

        Unlike :meth:`merged_trace_jsonl` (a forest of per-point trees),
        this renumbers every point's fragment into a single id space and
        hangs the point roots under a synthetic ``serve.request`` ->
        ``serve.execute`` pair (see :func:`repro.obs.tracectx.stitch_spans`).
        Fragments are walked in plan order, so the bytes are identical
        at any worker count and any cache temperature -- the property
        that lets the serving daemon embed the tree in a coalesced
        response.  Returns ``""`` when the plan was not traced.
        """
        if not any(point.trace_jsonl for point in self.points):
            return ""
        from repro.obs.tracectx import stitch_spans

        root_attrs: Dict[str, Any] = {"points": len(self.points)}
        if scenario_id is not None:
            root_attrs["scenario_id"] = scenario_id
        return stitch_spans(
            [point.trace_jsonl for point in self.points],
            trace_id=trace_id, root_attrs=root_attrs,
            exec_attrs={"kind": "sweep"})

    def to_json(self) -> Dict[str, Any]:
        """A deterministic JSON-serialisable summary.

        Deliberately excludes wall-clock data *and* the worker count:
        the artifact is a pure function of the plan, so two runs of the
        same plan diff clean no matter how they were executed.
        """
        return {
            "plan": dataclasses.asdict(self.plan),
            "points": [
                {
                    "app": point.point.app,
                    "device": point.point.device,
                    "packet_size_bytes": point.point.packet_size_bytes,
                    "packet_count": point.point.packet_count,
                    "with_harmonia": point.point.with_harmonia,
                    "throughput_gbps": point.throughput_bps / 1e9,
                    "mean_latency_ns": point.mean_latency_ns,
                    "cached": point.cached,
                    "cache_key": point.cache_key,
                }
                for point in self.points
            ],
        }


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------

class SweepRunner:
    """Executes a :class:`SweepPlan` across workers with caching.

    Cache-miss points are partitioned by the **fused planner**
    (:func:`partition_fusable`): vector-eligible untraced points group
    by (tailored chain, packet_count) and execute in-process through the
    batched kernel (:func:`repro.sim.vector.run_packet_sweep_vector_batch`)
    -- no ProcessPool, no pickling, one kernel launch per group.  The
    remainder (traced points, forced DES, non-analytic chains) runs
    per-point: in-process when ``workers=1``, else fanned out over a
    ``ProcessPoolExecutor``.  ``executor`` injects an externally owned
    pool (the serving daemon keeps one resident) instead of spawning one
    per run; ``fuse=False`` disables the planner entirely (benchmarks
    time the per-point path against it).

    Results are merged in plan order no matter how they executed, and
    the batched kernel is pinned bit-exact to the per-point tiers, so
    fusing, worker count, and executor ownership are all invisible in
    the output -- determinism tests assert byte-identical results and
    traces across every combination.
    """

    def __init__(self, plan: SweepPlan, workers: int = 1,
                 cache: Optional[SweepCache] = None,
                 use_cache: bool = True, engine: str = "auto",
                 fuse: bool = True,
                 executor: Optional[Executor] = None) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown sweep engine {engine!r}; choose from "
                f"{', '.join(ENGINES)}"
            )
        self.plan = plan
        self.workers = workers
        self.cache = cache if cache is not None else DEFAULT_CACHE
        self.use_cache = use_cache
        self.engine = engine
        self.fuse = fuse
        self.executor = executor

    def run(self) -> SweepResult:
        points = self.plan.expand()
        if self.engine != "auto":
            points = [dataclasses.replace(point, engine=self.engine)
                      for point in points]
        # Chains are resolved through the process-wide memo: built once
        # per (app, device, variant), which is cheap relative to a
        # point's simulation and exactly what the content key needs.
        # The serial path reuses them for execution too
        # (run_packet_sweep resets the chain, so reuse is deterministic).
        keys: List[str] = []
        for point in points:
            chain = _chain_for(point)
            keys.append(sweep_cache_key(
                chain_signature(chain), point.packet_size_bytes,
                point.packet_count,
                trace_of=chain.name if point.trace else None,
            ))

        entries: List[Optional[Dict[str, Any]]]
        if self.use_cache:
            # One lock acquisition for the whole plan's probe.
            entries = self.cache.lookup_many(
                keys, [point.trace for point in points])
        else:
            entries = [None] * len(points)
        pending = [index for index, entry in enumerate(entries)
                   if entry is None]

        fused_points = fused_groups = pooled_points = 0
        spawned_pool = False
        if pending:
            # Intra-run dedup: two pending points with equal content keys
            # are the same pure computation (traced points fold the chain
            # name into the key, so shared entries stay trace-safe).
            # Only the first index per key is executed.
            executed: List[int] = []
            duplicates: Dict[str, int] = {}
            for index in pending:
                first = duplicates.setdefault(keys[index], index)
                if first == index:
                    executed.append(index)
            if self.fuse:
                groups, pooled = partition_fusable(points, executed)
            else:
                groups, pooled = OrderedDict(), list(executed)
            for indices in groups.values():
                for index, entry in zip(indices,
                                        run_fused_group(points, indices)):
                    entries[index] = entry
                fused_points += len(indices)
                fused_groups += 1
            pooled_points = len(pooled)
            if pooled:
                if self.workers > 1:
                    spawned_pool = self._run_pooled(points, pooled, entries)
                else:
                    for index in pooled:
                        point = points[index]
                        entries[index] = _run_chain_point(
                            _chain_for(point), point)
            for index in pending:
                if entries[index] is None:
                    entries[index] = entries[duplicates[keys[index]]]
            if self.use_cache:
                # One lock acquisition for the whole plan's insert.
                self.cache.store_many(
                    (keys[index], entries[index]) for index in executed)

        pending_set = set(pending)
        results = [
            PointResult(
                point=point,
                throughput_bps=entry["throughput_bps"],
                mean_latency_ns=entry["mean_latency_ns"],
                cache_key=key,
                cached=index not in pending_set,
                trace_jsonl=entry.get("trace_jsonl", "") if point.trace else "",
            )
            for index, (point, key, entry) in enumerate(zip(points, keys, entries))
        ]
        return SweepResult(self.plan, results, self.workers,
                           fused_points=fused_points,
                           fused_groups=fused_groups,
                           pooled_points=pooled_points,
                           spawned_pool=spawned_pool)

    def _run_pooled(self, points: List[SweepPoint], pending: List[int],
                    entries: List[Optional[Dict[str, Any]]]) -> bool:
        """Fan the pending points out over a process pool, merge in order.

        Uses the injected :attr:`executor` when one was given (and
        leaves its lifecycle to its owner); otherwise spawns a pool for
        this run.  Returns whether a pool was spawned.
        """
        specs: Iterable[Tuple[Any, ...]] = [
            dataclasses.astuple(points[index]) for index in pending
        ]
        chunksize = _pool_chunksize(len(pending), self.workers)
        if self.executor is not None:
            for index, entry in zip(pending,
                                    self.executor.map(_execute_point, specs,
                                                      chunksize=chunksize)):
                entries[index] = entry
            return False
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            for index, entry in zip(pending,
                                    pool.map(_execute_point, specs,
                                             chunksize=chunksize)):
                entries[index] = entry
        return True


def run_plan(plan: SweepPlan, workers: int = 1,
             cache: Optional[SweepCache] = None,
             use_cache: bool = True, engine: str = "auto",
             fuse: bool = True,
             executor: Optional[Executor] = None) -> SweepResult:
    """Convenience wrapper: build a runner and run the plan once."""
    return SweepRunner(plan, workers=workers, cache=cache,
                       use_cache=use_cache, engine=engine, fuse=fuse,
                       executor=executor).run()
