"""Span-based trace bus with integer-picosecond timestamps.

Every record on the bus is one of four kinds (the begin/end/complete/
instant vocabulary of the Chrome trace-event format, which the JSONL
export intentionally resembles):

* ``B``/``E`` -- a span opened and closed against the context clock
  (command round trips, measure windows, simulator phases);
* ``X`` -- a *complete* span whose start and end were computed
  analytically (a pipeline stage's occupancy for one transaction);
* ``I`` -- an instant event (a drop, an interrupt firing).

Spans carry sequential integer ids and an optional parent id, so a
request can be followed across layers: link -> RBB -> wrapper/CDC ->
role.  Timestamps are integer picoseconds from the owning
:class:`~repro.runtime.context.SimContext`'s clock of record, and ids
are assigned in emission order, so two identical runs serialise to
byte-identical JSONL -- determinism is part of the contract, not an
accident.

The bus is disabled by default; every emit method starts with a single
``enabled`` check so a quiescent bus costs one branch.

Two features keep a fleet-scale trace from being a memory hazard
(see :mod:`repro.obs.recorder` for the operator-facing wrapper):

* **sinks** -- callables attached with :meth:`TraceBus.add_sink`
  receive every record's serialised JSONL line as it is emitted, so a
  trace can stream to disk while the run is still going;
* **ring-buffer mode** -- constructed with ``max_records=N`` (or
  switched later via :meth:`TraceBus.limit_records`) the bus keeps only
  the *last* N records resident; older records are dropped from memory
  (counted in :attr:`TraceBus.dropped_records`) after every sink has
  seen them, so streaming + ring buffer gives O(1) memory with a
  byte-identical on-disk trace.

Record ids are allocated for every emission whether or not the record
stays resident, so the serialised stream is identical between a
bounded and an unbounded bus -- the determinism contract survives the
ring buffer.
"""

import json
import os
import tempfile
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Union

#: Sentinel for "no explicit timestamp; read the context clock".
_NOW = None


class _Detached:
    """Sentinel parent: emit as a root even while other spans are open.

    Concurrent emitters (the serving daemon's interleaved requests)
    must not inherit whatever span happens to top the ambient stack;
    passing ``parent=DETACHED`` pins a record to the tree root."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DETACHED"


DETACHED = _Detached()

#: ``json.dumps`` settings shared by the batch export and the streaming
#: sinks -- one definition, so the two serialisations cannot drift.
_DUMPS_KWARGS = {"sort_keys": True, "separators": (",", ":")}


def dumps_record(record: Dict[str, Any]) -> str:
    """Serialise one trace record exactly as :meth:`TraceBus.export_jsonl`."""
    return json.dumps(record, **_DUMPS_KWARGS)


class Span:
    """Handle for an open span (returned by :meth:`TraceBus.begin`)."""

    __slots__ = ("span_id", "name", "bus")

    def __init__(self, span_id: int, name: str, bus: "TraceBus") -> None:
        self.span_id = span_id
        self.name = name
        self.bus = bus

    def end(self, ts_ps: Optional[int] = None, **attrs: Any) -> None:
        self.bus.end(self, ts_ps=ts_ps, **attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.end()

    def __repr__(self) -> str:
        return f"Span(id={self.span_id}, name={self.name!r})"


class TraceBus:
    """Collects trace records and exports them as deterministic JSONL."""

    def __init__(self, clock_ps: Callable[[], int], enabled: bool = False,
                 max_records: Optional[int] = None) -> None:
        self._clock_ps = clock_ps
        self.enabled = enabled
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be >= 0")
        self._max_records = max_records
        self._records: Union[List[Dict[str, Any]], Deque[Dict[str, Any]]] = (
            [] if max_records is None else deque(maxlen=max_records)
        )
        self._next_id = 0
        self._stack: List[int] = []
        # Mirror of ``_stack`` as a set, so ``end`` checks membership in
        # O(1) instead of scanning the stack (O(n^2) on deep traces).
        self._open: set = set()
        self._sinks: List[Callable[[str], Any]] = []
        self.dropped_records = 0

    # --- emission -----------------------------------------------------------

    def _ts(self, ts_ps: Optional[int]) -> int:
        return self._clock_ps() if ts_ps is _NOW else int(ts_ps)

    def _alloc(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _parent(self, parent: Optional[int]) -> Optional[int]:
        if parent is DETACHED:
            return None
        if parent is not None:
            return parent
        return self._stack[-1] if self._stack else None

    def _emit(self, record: Dict[str, Any]) -> None:
        """Append one record: sinks first, then the (maybe bounded) store."""
        if self._sinks:
            line = dumps_record(record)
            for sink in self._sinks:
                sink(line)
        records = self._records
        if (self._max_records is not None
                and len(records) == self._max_records):
            self.dropped_records += 1
        records.append(record)

    def begin(self, name: str, ts_ps: Optional[int] = None,
              parent: Optional[int] = None, **attrs: Any) -> Optional[Span]:
        """Open a span; it becomes the default parent until ended."""
        if not self.enabled:
            return None
        span_id = self._alloc()
        record: Dict[str, Any] = {
            "type": "B", "id": span_id, "name": name, "ts_ps": self._ts(ts_ps),
        }
        parent_id = self._parent(parent)
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        self._emit(record)
        self._stack.append(span_id)
        self._open.add(span_id)
        return Span(span_id, name, self)

    def end(self, span: Optional[Span], ts_ps: Optional[int] = None,
            **attrs: Any) -> None:
        """Close a span opened with :meth:`begin`."""
        if not self.enabled or span is None:
            return
        record: Dict[str, Any] = {
            "type": "E", "id": span.span_id, "name": span.name,
            "ts_ps": self._ts(ts_ps),
        }
        if attrs:
            record["attrs"] = attrs
        self._emit(record)
        if span.span_id in self._open:
            # Pop up to and including the span (tolerates missed ends);
            # each inner pop also retires its ``_open`` entry, so the
            # whole dance is amortised O(1) per span.
            stack = self._stack
            open_ids = self._open
            while stack:
                popped = stack.pop()
                open_ids.discard(popped)
                if popped == span.span_id:
                    break

    def complete(self, name: str, start_ps: int, end_ps: int,
                 parent: Optional[int] = None, **attrs: Any) -> Optional[int]:
        """Record a span whose start/end were computed analytically."""
        if not self.enabled:
            return None
        span_id = self._alloc()
        record: Dict[str, Any] = {
            "type": "X", "id": span_id, "name": name,
            "ts_ps": int(start_ps), "dur_ps": int(end_ps) - int(start_ps),
        }
        parent_id = self._parent(parent)
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        self._emit(record)
        return span_id

    def instant(self, name: str, ts_ps: Optional[int] = None,
                parent: Optional[int] = None, **attrs: Any) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {
            "type": "I", "id": self._alloc(), "name": name,
            "ts_ps": self._ts(ts_ps),
        }
        parent_id = self._parent(parent)
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    # --- streaming sinks & residency cap ------------------------------------

    def add_sink(self, sink: Callable[[str], Any]) -> None:
        """Stream every future record's JSONL line to ``sink``.

        The line carries no trailing newline; sinks add their own.  A
        sink sees records the resident ring buffer may later drop, which
        is exactly how a bounded bus still produces a complete trace.
        """
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[str], Any]) -> None:
        self._sinks.remove(sink)

    @property
    def max_records(self) -> Optional[int]:
        """The resident-record cap (``None`` = unbounded)."""
        return self._max_records

    def limit_records(self, max_records: Optional[int]) -> None:
        """Switch the resident store to a ring buffer of ``max_records``.

        Existing records beyond the cap are dropped oldest-first (and
        counted).  ``None`` lifts the cap, keeping whatever is resident.
        """
        if max_records is not None and max_records < 0:
            raise ValueError("max_records must be >= 0")
        records = list(self._records)
        if max_records is None:
            self._records = records
        else:
            if len(records) > max_records:
                self.dropped_records += len(records) - max_records
            self._records = deque(records, maxlen=max_records)
        self._max_records = max_records

    # --- inspection & export ------------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """The resident records in emission order.

        On an unbounded bus this is the raw list; in ring-buffer mode it
        is a list copy of the ring (the last ``max_records`` emissions).
        """
        records = self._records
        return records if isinstance(records, list) else list(records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def total_records(self) -> int:
        """Every record ever emitted, resident or dropped."""
        return len(self._records) + self.dropped_records

    def span_names(self) -> List[str]:
        """Distinct span/instant names in first-seen order (resident)."""
        seen: Dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record["name"])
        return list(seen)

    def export_jsonl(self) -> str:
        """Serialise every resident record, one JSON object per line.

        Keys are sorted and separators fixed, so identical runs produce
        byte-identical output.
        """
        lines = [dumps_record(record) for record in self._records]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL export to ``path``; returns the record count.

        The write is atomic (tempfile + ``os.replace``, like
        ``SweepCache.save``): an interrupted export leaves the previous
        file intact, never a truncated half-trace.
        """
        directory = os.path.dirname(os.path.abspath(path))
        handle = tempfile.NamedTemporaryFile(
            "w", dir=directory, prefix=os.path.basename(path) + ".",
            suffix=".tmp", delete=False, encoding="utf-8", newline="\n",
        )
        try:
            with handle:
                handle.write(self.export_jsonl())
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._stack.clear()
        self._open.clear()
        self._next_id = 0
        self.dropped_records = 0
