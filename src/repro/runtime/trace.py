"""Span-based trace bus with integer-picosecond timestamps.

Every record on the bus is one of four kinds (the begin/end/complete/
instant vocabulary of the Chrome trace-event format, which the JSONL
export intentionally resembles):

* ``B``/``E`` -- a span opened and closed against the context clock
  (command round trips, measure windows, simulator phases);
* ``X`` -- a *complete* span whose start and end were computed
  analytically (a pipeline stage's occupancy for one transaction);
* ``I`` -- an instant event (a drop, an interrupt firing).

Spans carry sequential integer ids and an optional parent id, so a
request can be followed across layers: link -> RBB -> wrapper/CDC ->
role.  Timestamps are integer picoseconds from the owning
:class:`~repro.runtime.context.SimContext`'s clock of record, and ids
are assigned in emission order, so two identical runs serialise to
byte-identical JSONL -- determinism is part of the contract, not an
accident.

The bus is disabled by default; every emit method starts with a single
``enabled`` check so a quiescent bus costs one branch.
"""

import json
from typing import Any, Callable, Dict, List, Optional

#: Sentinel for "no explicit timestamp; read the context clock".
_NOW = None


class Span:
    """Handle for an open span (returned by :meth:`TraceBus.begin`)."""

    __slots__ = ("span_id", "name", "bus")

    def __init__(self, span_id: int, name: str, bus: "TraceBus") -> None:
        self.span_id = span_id
        self.name = name
        self.bus = bus

    def end(self, ts_ps: Optional[int] = None, **attrs: Any) -> None:
        self.bus.end(self, ts_ps=ts_ps, **attrs)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.end()

    def __repr__(self) -> str:
        return f"Span(id={self.span_id}, name={self.name!r})"


class TraceBus:
    """Collects trace records and exports them as deterministic JSONL."""

    def __init__(self, clock_ps: Callable[[], int], enabled: bool = False) -> None:
        self._clock_ps = clock_ps
        self.enabled = enabled
        self._records: List[Dict[str, Any]] = []
        self._next_id = 0
        self._stack: List[int] = []

    # --- emission -----------------------------------------------------------

    def _ts(self, ts_ps: Optional[int]) -> int:
        return self._clock_ps() if ts_ps is _NOW else int(ts_ps)

    def _alloc(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _parent(self, parent: Optional[int]) -> Optional[int]:
        if parent is not None:
            return parent
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, ts_ps: Optional[int] = None,
              parent: Optional[int] = None, **attrs: Any) -> Optional[Span]:
        """Open a span; it becomes the default parent until ended."""
        if not self.enabled:
            return None
        span_id = self._alloc()
        record: Dict[str, Any] = {
            "type": "B", "id": span_id, "name": name, "ts_ps": self._ts(ts_ps),
        }
        parent_id = self._parent(parent)
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)
        self._stack.append(span_id)
        return Span(span_id, name, self)

    def end(self, span: Optional[Span], ts_ps: Optional[int] = None,
            **attrs: Any) -> None:
        """Close a span opened with :meth:`begin`."""
        if not self.enabled or span is None:
            return
        record: Dict[str, Any] = {
            "type": "E", "id": span.span_id, "name": span.name,
            "ts_ps": self._ts(ts_ps),
        }
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)
        if span.span_id in self._stack:
            # Pop up to and including the span (tolerates missed ends).
            while self._stack and self._stack.pop() != span.span_id:
                pass

    def complete(self, name: str, start_ps: int, end_ps: int,
                 parent: Optional[int] = None, **attrs: Any) -> Optional[int]:
        """Record a span whose start/end were computed analytically."""
        if not self.enabled:
            return None
        span_id = self._alloc()
        record: Dict[str, Any] = {
            "type": "X", "id": span_id, "name": name,
            "ts_ps": int(start_ps), "dur_ps": int(end_ps) - int(start_ps),
        }
        parent_id = self._parent(parent)
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)
        return span_id

    def instant(self, name: str, ts_ps: Optional[int] = None,
                parent: Optional[int] = None, **attrs: Any) -> None:
        """Record a point event."""
        if not self.enabled:
            return
        record: Dict[str, Any] = {
            "type": "I", "id": self._alloc(), "name": name,
            "ts_ps": self._ts(ts_ps),
        }
        parent_id = self._parent(parent)
        if parent_id is not None:
            record["parent"] = parent_id
        if attrs:
            record["attrs"] = attrs
        self._records.append(record)

    # --- inspection & export ------------------------------------------------

    @property
    def records(self) -> List[Dict[str, Any]]:
        """The raw record list (emission order)."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def span_names(self) -> List[str]:
        """Distinct span/instant names in first-seen order."""
        seen: Dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record["name"])
        return list(seen)

    def export_jsonl(self) -> str:
        """Serialise every record, one JSON object per line.

        Keys are sorted and separators fixed, so identical runs produce
        byte-identical output.
        """
        lines = [
            json.dumps(record, sort_keys=True, separators=(",", ":"))
            for record in self._records
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL export to ``path``; returns the record count."""
        with open(path, "w") as handle:
            handle.write(self.export_jsonl())
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._stack.clear()
        self._next_id = 0
