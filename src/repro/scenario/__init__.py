"""Declarative scenarios and the differential conformance fuzzer.

One format for sweeps, fleet epochs, builds, fuzzing, and future
serving requests -- see ``docs/scenarios.md`` for the tour.
"""

from repro.scenario.spec import (
    DEFAULT_BUILD_SOFTWARE,
    DEFAULT_PACKET_SIZES,
    SCENARIO_KINDS,
    SCENARIO_VERSION,
    BuildSpec,
    EpochsSpec,
    Scenario,
    TenancySpec,
    WorkloadSpec,
    canonical_dumps,
    known_app_names,
    known_device_names,
    load_scenario,
    loads_scenario,
    require_app,
    require_app_name,
    require_device,
    require_engine,
    save_scenario,
)

# The fuzzer reaches back into runtime/sim layers that are heavier than
# the spec itself; resolve its names lazily (PEP 562) so importing
# ``repro.scenario`` for a spec stays cheap.
_FUZZ_EXPORTS = frozenset({
    "DifferentialFuzzer",
    "FuzzFailure",
    "FuzzReport",
})


def __getattr__(name: str):
    if name in _FUZZ_EXPORTS:
        from repro.scenario import fuzz

        return getattr(fuzz, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_BUILD_SOFTWARE",
    "DEFAULT_PACKET_SIZES",
    "SCENARIO_KINDS",
    "SCENARIO_VERSION",
    "BuildSpec",
    "DifferentialFuzzer",
    "EpochsSpec",
    "FuzzFailure",
    "FuzzReport",
    "Scenario",
    "TenancySpec",
    "WorkloadSpec",
    "canonical_dumps",
    "known_app_names",
    "known_device_names",
    "load_scenario",
    "loads_scenario",
    "require_app",
    "require_app_name",
    "require_device",
    "require_engine",
    "save_scenario",
]
