"""Differential conformance fuzzer across the engine tiers.

The reproduction's central determinism claim is that its three
execution tiers -- the content-keyed :class:`repro.runtime.sweep.SweepCache`,
the closed-form numpy kernel (:mod:`repro.sim.vector`), and the scalar
DES-equivalent loop -- are *exactly* interchangeable: same throughputs,
same latencies, byte-identical traces and metrics.  The unit suite pins
that equality on hand-picked chains; this module hunts for the chains
nobody hand-picked.

:class:`DifferentialFuzzer` generates random **valid**
:class:`repro.scenario.Scenario` objects from one seeded
``random.Random`` stream (a given seed always produces the same
scenarios, failures, and shrinks), guided by a coverage map over
(app, device, size-magnitude, datapath-variant, tracing,
vector-supported) keys: a scenario that lights up new coverage joins
the corpus and later scenarios mutate corpus members instead of
starting from scratch.

Each scenario passes through five conformance checks:

* **serialization** -- canonical-JSON round trip is the identity, the
  canonical text is a fixpoint, and :meth:`Scenario.scenario_id` is
  invariant under the engine field;
* **engine-equivalence** -- every expanded point runs on the forced
  ``des`` tier and (when the chain supports it) the forced ``vector``
  tier; entries must match **exactly** -- floats, integers, and the
  full ``trace_jsonl`` -- and the first point's metrics snapshot and
  trace export must match across tiers too;
* **vector-batch** -- every vector-eligible untraced point group also
  runs through the fused batched kernel
  (:func:`repro.sim.vector.run_packet_sweep_vector_batch`); batched,
  per-point vector, and DES must agree exactly, including the
  folded-back stage occupancy/statistics;
* **cache-tier** -- the plan runs cold then warm against a private
  :class:`SweepCache`; the warm run must be all hits and numerically
  and trace-wise identical to the cold run;
* **baseline-capabilities** -- every framework model keeps its Table 1
  capability row well-formed, ``deploy`` honours ``supports`` (loud
  :class:`IncompatiblePlatformError` when unsupported), Harmonia
  supports every device and always presents the command-based host
  interface.

A failing scenario is **shrunk**: a deterministic greedy pass drops
apps/devices/sizes, halves magnitudes, and resets fields to defaults
while the failing check keeps failing, then the minimal scenario is
written (canonical JSON) into ``repro_dir`` for replay with
``repro.cli sweep --scenario``.  The ``inject_size_threshold`` hook
plants an artificial failure (any packet size >= the threshold) so the
shrinker itself is testable end to end.
"""

import dataclasses
import functools
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import HarmoniaError, IncompatiblePlatformError
from repro.scenario.spec import (
    EpochsSpec,
    Scenario,
    TenancySpec,
    WorkloadSpec,
    known_app_names,
    known_device_names,
    loads_scenario,
    require_device,
    save_scenario,
)

#: A conformance check: ``None`` means pass, a string is the failure detail.
CheckFn = Callable[[Scenario], Optional[str]]

#: Table 1 column names every capability row must carry.
_CAPABILITY_COLUMNS = ("heterogeneity", "unified_shell", "portable_role",
                      "consistent_host_interface")


@functools.lru_cache(maxsize=1)
def feasible_pairs() -> Dict[str, Tuple[str, ...]]:
    """App name -> the catalog devices the app can actually tailor to.

    Tailoring is allowed to refuse a device (no network cage, no
    on-card memory, memory bandwidth below the role's floor); those are
    capacity outcomes, not conformance bugs, so the fuzzer generates
    only runnable (app, device) pairs.  A hand-written scenario naming
    an infeasible pair still fails loudly at run time.
    """
    from repro.apps import all_applications
    from repro.platform.catalog import all_devices

    pairs: Dict[str, Tuple[str, ...]] = {}
    for app in all_applications():
        feasible: List[str] = []
        for device in sorted(all_devices(), key=lambda d: d.name):
            try:
                shell = app.tailored_shell(device)
                for with_harmonia in (True, False):
                    app.datapath(shell, with_harmonia)
            except HarmoniaError:
                continue
            feasible.append(device.name)
        pairs[app.name] = tuple(feasible)
    return pairs


@functools.lru_cache(maxsize=1)
def _min_fleet_devices() -> int:
    """The smallest valid fleet: one instance per active device type."""
    from repro.platform.fleet import production_fleet

    return len(production_fleet().active_introductions(2_024))


# ---------------------------------------------------------------------------
# Failure and report records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzFailure:
    """One conformance violation, with its minimized reproducer."""

    check: str                  # which check tripped
    detail: str                 # human-readable mismatch description
    scenario: Scenario          # the scenario as generated
    shrunk: Scenario            # the minimal scenario that still fails
    repro_path: Optional[str] = None   # where the shrunk JSON landed

    def to_json(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "detail": self.detail,
            "scenario_id": self.shrunk.scenario_id(),
            "scenario": self.scenario.to_json(),
            "shrunk": self.shrunk.to_json(),
            "repro_path": self.repro_path,
        }


@dataclass
class FuzzReport:
    """Outcome of one :meth:`DifferentialFuzzer.run` campaign."""

    seed: int
    budget: int
    scenarios_run: int = 0
    points_checked: int = 0
    checks_run: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    coverage: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "scenarios_run": self.scenarios_run,
            "points_checked": self.points_checked,
            "checks_run": self.checks_run,
            "coverage": self.coverage,
            "ok": self.ok,
            "failures": [failure.to_json() for failure in self.failures],
        }


# ---------------------------------------------------------------------------
# The fuzzer
# ---------------------------------------------------------------------------

class DifferentialFuzzer:
    """Coverage-guided differential fuzzer over the scenario space.

    Deterministic by construction: every random draw comes from one
    ``random.Random(seed)`` stream, so two campaigns with equal seeds
    and budgets generate identical scenarios, find identical failures,
    and shrink them to identical minimal reproducers.
    """

    def __init__(self, seed: int = 2_025, repro_dir: Optional[str] = None,
                 inject_size_threshold: Optional[int] = None,
                 max_apps: int = 2, max_devices: int = 2,
                 max_sizes: int = 3, max_packets: int = 48,
                 max_size_bytes: int = 2_048,
                 epoch_rate: float = 0.0,
                 max_epochs: int = 8, max_epoch_flows: int = 2_000,
                 inject_epoch_threshold: Optional[int] = None) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.repro_dir = repro_dir
        self.inject_size_threshold = inject_size_threshold
        self.inject_epoch_threshold = inject_epoch_threshold
        self.max_apps = max_apps
        self.max_devices = max_devices
        self.max_sizes = max_sizes
        self.max_packets = max_packets
        self.max_size_bytes = max_size_bytes
        # Epoch-churn scenarios are opt-in (epoch_rate > 0): the default
        # generation stream stays byte-identical to earlier campaigns,
        # so pinned corpora and the smoke benchmark's determinism gates
        # are unaffected.
        self.epoch_rate = epoch_rate
        self.max_epochs = max_epochs
        self.max_epoch_flows = max_epoch_flows
        self._apps: Tuple[str, ...] = known_app_names()
        self._devices: Tuple[str, ...] = known_device_names()
        self._feasible: Dict[str, Tuple[str, ...]] = feasible_pairs()
        self.coverage: Set[Tuple[Any, ...]] = set()
        self.corpus: List[Scenario] = []
        self._baseline_memo: Dict[str, Optional[str]] = {}
        self.checks: List[Tuple[str, CheckFn]] = [
            ("serialization", self.check_serialization),
            ("engine-equivalence", self.check_engine_equivalence),
            ("vector-batch", self.check_vector_batch),
            ("cache-tier", self.check_cache_tier),
            ("baseline-capabilities", self.check_baseline_capabilities),
            ("epoch-delta", self.check_epoch_delta),
        ]
        if inject_size_threshold is not None:
            self.checks.append(("injected", self.check_injected))
        if inject_epoch_threshold is not None:
            self.checks.append(("injected-epoch", self.check_injected_epoch))

    # --- generation -----------------------------------------------------

    def _shared_devices(self, apps: Tuple[str, ...]) -> List[str]:
        """Devices every app in ``apps`` can tailor to, in catalog order."""
        return [device for device in self._devices
                if all(device in self._feasible[app] for app in apps)]

    def _feasible_apps(self, devices: Tuple[str, ...]) -> List[str]:
        """Apps that can tailor to every device in ``devices``."""
        return [app for app in self._apps
                if all(device in self._feasible[app] for device in devices)]

    def generate(self) -> Scenario:
        """One random valid, runnable sweep scenario from the seeded stream."""
        rng = self.rng
        apps = tuple(sorted(rng.sample(
            self._apps, rng.randint(1, min(self.max_apps, len(self._apps))))))
        shared = self._shared_devices(apps)
        if not shared:
            apps = (rng.choice(self._apps),)
            shared = list(self._feasible[apps[0]])
        devices = tuple(sorted(rng.sample(
            shared, rng.randint(1, min(self.max_devices, len(shared))))))
        sizes = tuple(sorted({
            rng.randint(1, self.max_size_bytes)
            for _ in range(rng.randint(1, self.max_sizes))
        }))
        workload = WorkloadSpec(
            packet_sizes=sizes,
            packets_per_point=rng.randint(1, self.max_packets),
            with_harmonia=rng.random() < 0.8,
            include_path_latency=rng.random() < 0.8,
            trace=rng.random() < 0.3,
        )
        return Scenario(kind="sweep", apps=apps, devices=devices,
                        seed=rng.randrange(2 ** 31), workload=workload)

    def generate_epoch(self) -> Scenario:
        """One random valid fleet scenario with an epochs/churn section.

        Sizes stay small (<= ``max_epoch_flows`` flows, a handful of
        epochs) so the ``epoch-delta`` differential -- two standalone
        orchestrator runs plus a verify pass -- costs milliseconds per
        scenario and a campaign covers hundreds of churn shapes.
        """
        rng = self.rng
        floor = _min_fleet_devices()
        tenancy = TenancySpec(
            flow_count=rng.randint(64, self.max_epoch_flows),
            device_count=rng.randint(floor, floor + 16),
            tenant_count=rng.randint(2, 12),
            slots_per_device=rng.randint(1, 4),
            alpha=round(rng.uniform(0.8, 1.4), 3),
            offered_load=round(rng.uniform(0.3, 1.1), 3),
        )
        epochs = EpochsSpec(
            epochs=rng.randint(1, self.max_epochs),
            churn=round(rng.uniform(0.0, 0.2), 4),
            failure_every=rng.choice((0, 2, 3, 5)),
            drain_every=rng.choice((0, 3, 4, 7)),
            migrate_threshold=round(rng.uniform(0.8, 1.5), 3),
            autoscale=rng.random() < 0.7,
            spare_fraction=round(rng.uniform(0.0, 0.5), 3),
            scale_step=rng.randint(1, 4),
            pr_budget=rng.choice((0, 4, 16)),
            policy=rng.choice(("flow-hash", "round-robin", "least-loaded")),
        )
        return Scenario(kind="fleet", seed=rng.randrange(2 ** 31),
                        tenancy=tenancy, epochs=epochs)

    def mutate_epoch(self, scenario: Scenario) -> Scenario:
        """A single random mutation of one epoch-fleet corpus member."""
        rng = self.rng
        tenancy = scenario.tenancy
        section = scenario.epochs
        move = rng.randrange(6)
        if move == 0:
            section = dataclasses.replace(
                section, epochs=rng.randint(1, self.max_epochs))
        elif move == 1:
            section = dataclasses.replace(
                section, churn=round(rng.uniform(0.0, 0.2), 4))
        elif move == 2:
            section = dataclasses.replace(
                section, policy=rng.choice(
                    ("flow-hash", "round-robin", "least-loaded")))
        elif move == 3:
            section = dataclasses.replace(
                section, autoscale=not section.autoscale)
        elif move == 4:
            tenancy = dataclasses.replace(
                tenancy, flow_count=rng.randint(64, self.max_epoch_flows))
        else:
            return scenario.replace(seed=rng.randrange(2 ** 31))
        return scenario.replace(tenancy=tenancy, epochs=section)

    def mutate(self, scenario: Scenario) -> Scenario:
        """A single random mutation of one corpus member."""
        if scenario.kind == "fleet" and scenario.epochs is not None:
            return self.mutate_epoch(scenario)
        rng = self.rng
        workload = scenario.workload
        move = rng.randrange(6)
        if move == 0:
            pool = self._feasible_apps(scenario.devices)
            apps = tuple(sorted(rng.sample(
                pool, rng.randint(1, min(self.max_apps, len(pool))))))
            return scenario.replace(apps=apps)
        if move == 1:
            pool = self._shared_devices(scenario.apps)
            devices = tuple(sorted(rng.sample(
                pool, rng.randint(1, min(self.max_devices, len(pool))))))
            return scenario.replace(devices=devices)
        if move == 2:
            sizes = set(workload.packet_sizes)
            sizes.add(rng.randint(1, self.max_size_bytes))
            workload = dataclasses.replace(
                workload, packet_sizes=tuple(sorted(sizes))[:self.max_sizes])
            return scenario.replace(workload=workload)
        if move == 3:
            workload = dataclasses.replace(
                workload, packets_per_point=rng.randint(1, self.max_packets))
            return scenario.replace(workload=workload)
        if move == 4:
            workload = dataclasses.replace(
                workload, with_harmonia=not workload.with_harmonia)
            return scenario.replace(workload=workload)
        workload = dataclasses.replace(workload, trace=not workload.trace)
        return scenario.replace(workload=workload)

    def _coverage_keys(self, scenario: Scenario) -> Set[Tuple[Any, ...]]:
        """Structural coverage keys for one scenario's points."""
        if scenario.kind == "fleet" and scenario.epochs is not None:
            tenancy, section = scenario.tenancy, scenario.epochs
            return {(
                "fleet-epochs",
                tenancy.device_count.bit_length(),
                tenancy.tenant_count.bit_length(),
                tenancy.slots_per_device,
                section.policy,
                section.autoscale,
                int(section.churn * 100).bit_length(),
                section.failure_every > 0,
                section.drain_every > 0,
                section.pr_budget > 0,
            )}
        if scenario.kind != "sweep":
            return set()
        from repro.runtime.sweep import point_chain
        from repro.sim.vector import chain_supports_vector

        keys: Set[Tuple[Any, ...]] = set()
        for point in scenario.expand_points():
            supported = chain_supports_vector(point_chain(point))
            keys.add((point.app, point.device,
                      point.packet_size_bytes.bit_length(),
                      point.with_harmonia, point.trace, supported))
        return keys

    # --- checks ---------------------------------------------------------

    def check_serialization(self, scenario: Scenario) -> Optional[str]:
        """Canonical JSON round trip + engine-free identity."""
        text = scenario.canonical_json()
        clone = loads_scenario(text, source="<round-trip>")
        if clone != scenario:
            return "canonical JSON round trip changed the scenario"
        if clone.canonical_json() != text:
            return "canonical JSON is not a serialisation fixpoint"
        base_id = scenario.scenario_id()
        for engine in ("auto", "vector", "des"):
            variant = scenario.replace(engine=engine)
            if variant.scenario_id() != base_id:
                return f"scenario_id depends on engine={engine!r}"
        return None

    def check_engine_equivalence(self, scenario: Scenario) -> Optional[str]:
        """Forced-vector and forced-DES runs must match exactly."""
        if scenario.kind != "sweep":
            return None
        from repro.runtime.sweep import point_chain, run_point
        from repro.sim.vector import chain_supports_vector

        first_supported = True
        for point in scenario.expand_points():
            if not chain_supports_vector(point_chain(point)):
                continue
            des = run_point(dataclasses.replace(point, engine="des"))
            vec = run_point(dataclasses.replace(point, engine="vector"))
            if vec != des:
                diff = sorted(key for key in set(des) | set(vec)
                              if des.get(key) != vec.get(key))
                return (f"vector != des at {point.label()}: "
                        f"mismatched {', '.join(diff)}")
            if first_supported:
                first_supported = False
                mismatch = self._surfaces_mismatch(point)
                if mismatch:
                    return mismatch
        return None

    def _surfaces_mismatch(self, point) -> Optional[str]:
        """Metrics snapshot + trace export must match across tiers."""
        from repro.runtime.sweep import point_chain

        chain = point_chain(point)
        surfaces = {}
        for engine in ("des", "vector"):
            surfaces[engine] = _observable_surface(chain, point, engine)
        if surfaces["des"] != surfaces["vector"]:
            metrics_equal = (surfaces["des"][0] == surfaces["vector"][0])
            what = "trace export" if metrics_equal else "metrics snapshot"
            return (f"{what} differs between vector and des "
                    f"at {point.label()}")
        return None

    def check_vector_batch(self, scenario: Scenario) -> Optional[str]:
        """Fused multi-point execution must match per-point exactly.

        Every vector-eligible untraced point group (same tailored chain,
        same packet count -- the fused planner's bucketing) is executed
        three ways: forced DES per-point, forced vector per-point, and
        through the batched kernel
        (:func:`repro.sim.vector.run_packet_sweep_vector_batch`).  All
        three must agree exactly -- result floats *and* the folded-back
        stage occupancy/statistics the batch leaves on the chain, which
        must equal the sequential per-point loop's state bit for bit.
        """
        if scenario.kind != "sweep":
            return None
        from repro.runtime.context import isolated_context_stack
        from repro.runtime.sweep import point_chain, run_point
        from repro.sim.pipeline import reset_transaction_ids
        from repro.sim.vector import (chain_supports_vector,
                                      run_packet_sweep_vector_batch)

        groups: Dict[Tuple[Any, ...], List[Any]] = {}
        for point in scenario.expand_points():
            if point.trace:
                continue   # the planner never fuses traced points
            if not chain_supports_vector(point_chain(point)):
                continue
            key = (point.app, point.device, point.with_harmonia,
                   point.packet_count)
            groups.setdefault(key, []).append(point)
        for points in groups.values():
            des = [run_point(dataclasses.replace(point, engine="des"))
                   for point in points]
            per_point = [run_point(dataclasses.replace(point, engine="vector"))
                         for point in points]
            chain = point_chain(points[0])
            sequential_state = [
                (stage._next_free_ps, stage.transactions_processed,
                 stage.busy_ps) for stage in chain.stages]
            with isolated_context_stack():
                reset_transaction_ids()
                rows = run_packet_sweep_vector_batch(
                    chain, [point.packet_size_bytes for point in points],
                    points[0].packet_count)
            batched_state = [
                (stage._next_free_ps, stage.transactions_processed,
                 stage.busy_ps) for stage in chain.stages]
            for point, row, vec, scalar in zip(points, rows, per_point, des):
                batched = {"throughput_bps": row[0],
                           "mean_latency_ns": row[1]}
                if batched != vec:
                    return (f"batched != per-point vector at "
                            f"{point.label()}")
                if batched != scalar:
                    return f"batched != des at {point.label()}"
            if batched_state != sequential_state:
                return (f"batched stage state diverged from the "
                        f"sequential per-point loop at "
                        f"{points[-1].label()}")
        return None

    def check_cache_tier(self, scenario: Scenario) -> Optional[str]:
        """Cold vs warm runs of the plan against one private cache."""
        if scenario.kind != "sweep":
            return None
        from repro.runtime.sweep import SweepCache, run_plan

        plan = scenario.sweep_plan()
        cache = SweepCache()
        cold = run_plan(plan, cache=cache, engine=scenario.engine)
        warm = run_plan(plan, cache=cache, engine=scenario.engine)
        missed = [r.point.label() for r in warm.points if not r.cached]
        if missed:
            return f"warm rerun missed the cache at {', '.join(missed)}"
        for cold_r, warm_r in zip(cold.points, warm.points):
            if (cold_r.throughput_bps, cold_r.mean_latency_ns,
                    cold_r.trace_jsonl) != (warm_r.throughput_bps,
                                            warm_r.mean_latency_ns,
                                            warm_r.trace_jsonl):
                return (f"cache tier diverged from the computed result "
                        f"at {cold_r.point.label()}")
        if cold.merged_trace_jsonl() != warm.merged_trace_jsonl():
            return "merged trace differs between cold and warm runs"
        return None

    def check_baseline_capabilities(self, scenario: Scenario) -> Optional[str]:
        """Framework-model invariants on every device the scenario uses."""
        for name in scenario.devices:
            memo = self._baseline_memo.get(name, "")
            if memo == "":
                memo = self._baseline_device_check(name)
                self._baseline_memo[name] = memo
            if memo is not None:
                return memo
        return None

    def _baseline_device_check(self, device_name: str) -> Optional[str]:
        from repro.baselines import Capability, all_frameworks

        device = require_device(device_name)
        for framework in all_frameworks():
            row = framework.capability_row()
            if tuple(row) != _CAPABILITY_COLUMNS:
                return (f"{framework.name} capability row has columns "
                        f"{tuple(row)!r}")
            if not all(isinstance(v, Capability) for v in row.values()):
                return f"{framework.name} capability row has non-Capability values"
            if framework.name == "harmonia" and not framework.supports(device):
                return f"harmonia must support every device, not {device.name}"
            if not framework.supports(device):
                try:
                    framework.deploy(device, "tcp")
                except IncompatiblePlatformError:
                    continue
                return (f"{framework.name}.deploy succeeded on unsupported "
                        f"{device.name}")
            try:
                shell = framework.deploy(device, "tcp")
                utilisation = shell.utilisation()
            except HarmoniaError:
                # Supported-but-infeasible (no network cage, a monolithic
                # shell blowing a small device's resource budget, ...) is a
                # capacity outcome, not a conformance bug.
                continue
            if shell.host_interface not in ("register", "command"):
                return (f"{framework.name} host interface "
                        f"{shell.host_interface!r} is neither register nor "
                        f"command")
            if framework.name == "harmonia" and shell.host_interface != "command":
                return "harmonia must present the command-based host interface"
            if any(value < 0 for value in utilisation.values()):
                return f"{framework.name} shell reports negative utilisation"
        return None

    def check_epoch_delta(self, scenario: Scenario) -> Optional[str]:
        """Incremental epoch stepping vs the full-recompute oracle.

        The same churned day runs twice standalone -- once maintaining
        aggregates by O(churn) deltas, once rebuilding them from the
        per-flow arrays every epoch -- and the *entire* serialised
        outcome must be exactly equal: per-epoch stats, final tenant
        stats, aggregate/flow sha256 digests, and the metrics registry
        snapshot.  A third run in ``verify`` mode pins the per-epoch
        matrices themselves, so a divergence is reported at the first
        epoch it appears rather than as an end-of-day diff.
        """
        if scenario.kind != "fleet" or scenario.epochs is None:
            return None
        from repro.runtime.context import SimContext, isolated_context_stack
        from repro.runtime.orchestrator import DeltaMismatch, Orchestrator

        surfaces = {}
        for mode in ("incremental", "full"):
            with isolated_context_stack():
                context = SimContext()
                result = Orchestrator.from_scenario(
                    scenario, mode=mode, context=context).run()
                surfaces[mode] = (result.to_json(),
                                  context.metrics.snapshot())
        if surfaces["incremental"][0] != surfaces["full"][0]:
            incremental, full = (surfaces[m][0] for m in
                                 ("incremental", "full"))
            diff = sorted(key for key in set(incremental) | set(full)
                          if incremental.get(key) != full.get(key))
            return (f"incremental != full-recompute oracle: "
                    f"mismatched {', '.join(diff)}")
        if surfaces["incremental"][1] != surfaces["full"][1]:
            return ("metrics snapshot differs between incremental and "
                    "full-recompute runs")
        try:
            with isolated_context_stack():
                Orchestrator.from_scenario(
                    scenario, mode="verify", context=SimContext()).run()
        except DeltaMismatch as mismatch:
            return str(mismatch)
        return None

    def check_injected(self, scenario: Scenario) -> Optional[str]:
        """Artificial failure for testing the shrinker end to end."""
        threshold = self.inject_size_threshold
        assert threshold is not None
        bad = [size for size in scenario.workload.packet_sizes
               if size >= threshold]
        if bad:
            return (f"injected failure: packet size {min(bad)} >= "
                    f"{threshold}")
        return None

    def check_injected_epoch(self, scenario: Scenario) -> Optional[str]:
        """Artificial epoch failure for testing the epoch shrinker."""
        threshold = self.inject_epoch_threshold
        assert threshold is not None
        if scenario.epochs is not None and scenario.epochs.epochs >= threshold:
            return (f"injected failure: {scenario.epochs.epochs} epochs >= "
                    f"{threshold}")
        return None

    # --- shrinking ------------------------------------------------------

    def shrink(self, scenario: Scenario, check: CheckFn) -> Scenario:
        """Greedy deterministic minimisation while ``check`` still fails.

        Candidates are tried in a fixed order and the first still-failing
        one is taken, so equal inputs always shrink to equal outputs.
        """
        current = scenario
        progress = True
        while progress:
            progress = False
            for candidate in self._shrink_candidates(current):
                try:
                    failed = check(candidate) is not None
                except HarmoniaError:
                    failed = False   # shrink must preserve *this* failure
                if failed:
                    current = candidate
                    progress = True
                    break
        return current

    def _shrink_candidates(self, scenario: Scenario):
        """Strictly-smaller-or-more-default neighbours, in fixed order."""
        if scenario.kind == "fleet" and scenario.epochs is not None:
            yield from self._shrink_epoch_candidates(scenario)
            return
        workload = scenario.workload
        if len(scenario.apps) > 1:
            for index in range(len(scenario.apps)):
                yield scenario.replace(
                    apps=scenario.apps[:index] + scenario.apps[index + 1:])
        if len(scenario.devices) > 1:
            for index in range(len(scenario.devices)):
                yield scenario.replace(
                    devices=(scenario.devices[:index]
                             + scenario.devices[index + 1:]))
        if len(workload.packet_sizes) > 1:
            for index in range(len(workload.packet_sizes)):
                sizes = (workload.packet_sizes[:index]
                         + workload.packet_sizes[index + 1:])
                yield scenario.replace(workload=dataclasses.replace(
                    workload, packet_sizes=sizes))
        for target in (1, workload.packets_per_point // 2):
            if 1 <= target < workload.packets_per_point:
                yield scenario.replace(workload=dataclasses.replace(
                    workload, packets_per_point=target))
        for index, size in enumerate(workload.packet_sizes):
            for target in (1, size // 2):
                if 1 <= target < size:
                    sizes = tuple(sorted(set(
                        workload.packet_sizes[:index] + (target,)
                        + workload.packet_sizes[index + 1:])))
                    yield scenario.replace(workload=dataclasses.replace(
                        workload, packet_sizes=sizes))
        if not workload.with_harmonia:
            yield scenario.replace(workload=dataclasses.replace(
                workload, with_harmonia=True))
        if not workload.include_path_latency:
            yield scenario.replace(workload=dataclasses.replace(
                workload, include_path_latency=True))
        if workload.trace:
            yield scenario.replace(workload=dataclasses.replace(
                workload, trace=False))
        if scenario.engine != "auto":
            yield scenario.replace(engine="auto")
        if scenario.seed != 2_025:
            yield scenario.replace(seed=2_025)

    def _shrink_epoch_candidates(self, scenario: Scenario):
        """Epoch-fleet neighbours: fewer epochs, flows, devices, churn."""
        tenancy = scenario.tenancy
        section = scenario.epochs
        for target in (1, section.epochs // 2):
            if 1 <= target < section.epochs:
                yield scenario.replace(epochs=dataclasses.replace(
                    section, epochs=target))
        for target in (64, tenancy.flow_count // 2):
            if 1 <= target < tenancy.flow_count:
                yield scenario.replace(tenancy=dataclasses.replace(
                    tenancy, flow_count=target))
        floor = _min_fleet_devices()
        for target in (floor, tenancy.device_count // 2):
            if floor <= target < tenancy.device_count:
                yield scenario.replace(tenancy=dataclasses.replace(
                    tenancy, device_count=target))
        for target in (1, tenancy.tenant_count // 2):
            if 1 <= target < tenancy.tenant_count:
                yield scenario.replace(tenancy=dataclasses.replace(
                    tenancy, tenant_count=target))
        if tenancy.slots_per_device > 1:
            yield scenario.replace(tenancy=dataclasses.replace(
                tenancy, slots_per_device=1))
        if section.churn != 0.0:
            yield scenario.replace(epochs=dataclasses.replace(
                section, churn=0.0))
        if section.failure_every != 0:
            yield scenario.replace(epochs=dataclasses.replace(
                section, failure_every=0))
        if section.drain_every != 0:
            yield scenario.replace(epochs=dataclasses.replace(
                section, drain_every=0))
        if section.autoscale:
            yield scenario.replace(epochs=dataclasses.replace(
                section, autoscale=False))
        if section.pr_budget != 0:
            yield scenario.replace(epochs=dataclasses.replace(
                section, pr_budget=0))
        if section.spare_fraction != 0.0:
            yield scenario.replace(epochs=dataclasses.replace(
                section, spare_fraction=0.0))
        if section.policy != "flow-hash":
            yield scenario.replace(epochs=dataclasses.replace(
                section, policy="flow-hash"))
        if scenario.seed != 2_025:
            yield scenario.replace(seed=2_025)

    def _write_repro(self, shrunk: Scenario) -> Optional[str]:
        if self.repro_dir is None:
            return None
        os.makedirs(self.repro_dir, exist_ok=True)
        path = os.path.join(self.repro_dir,
                            f"scenario-{shrunk.scenario_id()[:16]}.json")
        save_scenario(shrunk, path)
        return path

    # --- campaign -------------------------------------------------------

    def check_scenario(self, scenario: Scenario) -> Optional[Tuple[str, str, CheckFn]]:
        """Run every check; the first failure as (name, detail, fn)."""
        for name, check in self.checks:
            detail = check(scenario)
            if detail is not None:
                return name, detail, check
        return None

    def run(self, budget: int = 200) -> FuzzReport:
        """Fuzz ``budget`` scenarios; returns the campaign report."""
        report = FuzzReport(seed=self.seed, budget=budget)
        for _ in range(budget):
            # Short-circuit on the default epoch_rate=0.0: no extra rng
            # draw, so default campaigns stay byte-identical to earlier
            # releases.
            if self.epoch_rate and self.rng.random() < self.epoch_rate:
                scenario = self.generate_epoch()
            elif self.corpus and self.rng.random() < 0.5:
                scenario = self.mutate(self.rng.choice(self.corpus))
            else:
                scenario = self.generate()
            fresh = self._coverage_keys(scenario) - self.coverage
            if fresh:
                self.coverage |= fresh
                self.corpus.append(scenario)
            report.scenarios_run += 1
            if scenario.kind == "sweep":
                report.points_checked += len(scenario.expand_points())
            elif scenario.epochs is not None:
                report.points_checked += scenario.epochs.epochs
            report.checks_run += len(self.checks)
            failure = self.check_scenario(scenario)
            if failure is not None:
                name, detail, check = failure
                shrunk = self.shrink(scenario, check)
                report.failures.append(FuzzFailure(
                    check=name, detail=detail, scenario=scenario,
                    shrunk=shrunk, repro_path=self._write_repro(shrunk)))
        report.coverage = len(self.coverage)
        return report


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------

def _observable_surface(chain, point, engine: str):
    """(metrics snapshot, trace JSONL) of one traced point on ``engine``.

    Mirrors the isolation discipline of the sweep worker path: hidden
    context stack, transaction ids reset, one fresh context per run.
    """
    from repro.runtime.context import SimContext, isolated_context_stack
    from repro.sim.pipeline import reset_transaction_ids, run_packet_sweep

    with isolated_context_stack():
        reset_transaction_ids()
        context = SimContext(name=point.label(), trace=True)
        run_packet_sweep(
            chain, packet_size_bytes=point.packet_size_bytes,
            packet_count=point.packet_count, context=context, engine=engine,
        )
        return context.metrics.snapshot(), context.trace.export_jsonl()
