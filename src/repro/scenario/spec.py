"""The unified declarative Scenario spec.

Every execution tier of the reproduction used to invent its own
configuration shape: sweeps had :class:`repro.runtime.sweep.SweepPlan`,
the fleet simulator had :class:`repro.runtime.fleet.FleetSpec`, the
build farm had :class:`repro.runtime.buildfarm.BuildPlan`, and the CLI
re-plumbed each through a divergent argparse block.  A
:class:`Scenario` describes all of them in one versioned, canonically
serialisable place:

* **what** runs -- ``kind`` (``sweep`` / ``fleet`` / ``build``) plus the
  ``apps`` and ``devices`` axes;
* **how** it runs -- the :class:`WorkloadSpec` (packet sizes and counts,
  Harmonia vs native datapath, tracing), the execution ``engine`` tier,
  and the deterministic ``seed``;
* **who shares** the hardware -- the :class:`TenancySpec` (flows,
  tenants, PR slots, Zipf skew, offered load) and the fleet ``year``;
* **how it is built** -- the :class:`BuildSpec` (CAD effort, packaged
  host software).

Serialisation is *canonical*: :meth:`Scenario.canonical_json` routes
through :func:`repro.adapters.toolchain.canonical_json` (sorted keys,
minimal separators, the strict JSON value model), so equal scenarios
produce equal bytes regardless of field order in the source file, and
:meth:`Scenario.scenario_id` is the sha256 of those bytes **minus the
engine field** -- the vector kernel is pinned to exact equality against
the scalar DES path, so the execution tier is configuration, not
identity (see ``docs/performance.md``).

Validation is loud: every malformed field, unknown key, unknown
application/device/engine name, or unsupported version raises
:class:`repro.errors.ConfigurationError` naming the valid choices.

The existing layers consume scenarios rather than duplicating them:
``SweepPlan.expand()`` delegates to :meth:`Scenario.expand_points`,
``FleetSpec.from_scenario`` / ``BuildPlan.from_scenario`` construct the
tier-native specs, and ``repro.cli sweep/fleet/build --scenario`` load
one file through :func:`load_scenario`.  The differential conformance
fuzzer (:mod:`repro.scenario.fuzz`) generates random valid scenarios
and cross-checks every tier against this one source of truth.
"""

import dataclasses
import functools
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sim.vector import ENGINES

#: Bump when the serialised layout changes incompatibly.
SCENARIO_VERSION = 1

#: The execution tiers a scenario can drive.
SCENARIO_KINDS: Tuple[str, ...] = ("sweep", "fleet", "build")

#: Paper sweep of Figure 17/18 (mirrors ``repro.runtime.sweep``).
DEFAULT_PACKET_SIZES: Tuple[int, ...] = (64, 128, 256, 512, 1024)

#: Host-software bundle packaged by default builds.  Pinned equal to
#: ``repro.runtime.buildfarm.DEFAULT_SOFTWARE`` by a test; duplicated
#: here so importing the spec never drags the build farm in.
DEFAULT_BUILD_SOFTWARE: Tuple[str, ...] = ("driver", "runtime-lib", "health-agent")


# ---------------------------------------------------------------------------
# Name registries (loud lookups shared by the CLI, the spec, the fuzzer)
# ---------------------------------------------------------------------------

@functools.lru_cache(maxsize=1)
def known_app_names() -> Tuple[str, ...]:
    """Registered application names, in Table 2 order."""
    from repro.apps import application_names

    return tuple(application_names())


@functools.lru_cache(maxsize=1)
def known_device_names() -> Tuple[str, ...]:
    """Catalog device names, sorted."""
    from repro.platform.catalog import all_devices

    return tuple(sorted(device.name for device in all_devices()))


def require_app_name(name: str) -> str:
    """Application-name check without constructing anything; loud."""
    if name not in known_app_names():
        raise ConfigurationError(
            f"unknown application {name!r}; known: "
            f"{', '.join(known_app_names())}"
        )
    return name


def require_app(name: str):
    """Application-name lookup that fails loudly and consistently.

    Returns the application instance; an unknown name raises
    :class:`ConfigurationError` listing every valid name.
    """
    from repro.apps import application_by_name

    return application_by_name(require_app_name(name))


def require_device(name: str, variants: bool = False):
    """Device-name lookup that fails loudly and consistently.

    Returns the catalog device; with ``variants=True`` fleet-history
    revision/speed-grade names resolve to their base type (the build
    farm's contract).  An unknown name raises
    :class:`ConfigurationError` listing the catalog.
    """
    from repro.platform.catalog import device_by_name, resolve_device

    try:
        return resolve_device(name) if variants else device_by_name(name)
    except KeyError:
        raise ConfigurationError(
            f"unknown device {name!r}; known: "
            f"{', '.join(known_device_names())}"
        ) from None


def require_engine(name: str) -> str:
    """Engine-name check; returns the name or raises listing the tiers."""
    if name not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {name!r}; known: {', '.join(ENGINES)}"
        )
    return name


# ---------------------------------------------------------------------------
# Canonical JSON
# ---------------------------------------------------------------------------

def canonical_dumps(value: Any) -> str:
    """Canonical JSON text of ``value`` (one encoder for the whole tree).

    Delegates to :func:`repro.adapters.toolchain.canonical_json`: sorted
    keys, minimal separators, ``allow_nan=False``, and a loud
    :class:`ConfigurationError` on anything outside the JSON value
    model -- the same encoder the build farm hashes with, so scenario
    identity and build identity can never drift apart.
    """
    from repro.adapters.toolchain import canonical_json

    return canonical_json(value)


def _expect(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _expect_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigurationError(f"{path} must be an integer, got {value!r}")
    return value


def _expect_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{path} must be a number, got {value!r}")
    return float(value)


def _expect_bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise ConfigurationError(f"{path} must be a boolean, got {value!r}")
    return value


def _expect_str(value: Any, path: str) -> str:
    if not isinstance(value, str):
        raise ConfigurationError(f"{path} must be a string, got {value!r}")
    return value


def _expect_str_tuple(value: Any, path: str) -> Tuple[str, ...]:
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(f"{path} must be a list of strings, got {value!r}")
    return tuple(_expect_str(item, f"{path}[{index}]")
                 for index, item in enumerate(value))


def _expect_int_tuple(value: Any, path: str) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)):
        raise ConfigurationError(f"{path} must be a list of integers, got {value!r}")
    return tuple(_expect_int(item, f"{path}[{index}]")
                 for index, item in enumerate(value))


def _reject_unknown_keys(data: Mapping[str, Any], allowed: Tuple[str, ...],
                         where: str) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown {where} field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(allowed)}"
        )


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """The packet-sweep workload axis of a scenario."""

    packet_sizes: Tuple[int, ...] = DEFAULT_PACKET_SIZES
    packets_per_point: int = 2_000
    with_harmonia: bool = True
    include_path_latency: bool = True
    trace: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "packet_sizes", tuple(self.packet_sizes))
        _expect(len(self.packet_sizes) > 0,
                "workload needs at least one packet size")
        for size in self.packet_sizes:
            _expect(isinstance(size, int) and not isinstance(size, bool)
                    and size >= 1,
                    f"packet sizes must be integers >= 1, got {size!r}")
        _expect(self.packets_per_point >= 1, "packets_per_point must be >= 1")

    def to_json(self) -> Dict[str, Any]:
        return {
            "packet_sizes": list(self.packet_sizes),
            "packets_per_point": self.packets_per_point,
            "with_harmonia": self.with_harmonia,
            "include_path_latency": self.include_path_latency,
            "trace": self.trace,
        }

    _FIELDS = ("packet_sizes", "packets_per_point", "with_harmonia",
               "include_path_latency", "trace")

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        _expect(isinstance(data, Mapping), "workload must be an object")
        _reject_unknown_keys(data, cls._FIELDS, "workload")
        kwargs: Dict[str, Any] = {}
        if "packet_sizes" in data:
            kwargs["packet_sizes"] = _expect_int_tuple(
                data["packet_sizes"], "workload.packet_sizes")
        if "packets_per_point" in data:
            kwargs["packets_per_point"] = _expect_int(
                data["packets_per_point"], "workload.packets_per_point")
        for key in ("with_harmonia", "include_path_latency", "trace"):
            if key in data:
                kwargs[key] = _expect_bool(data[key], f"workload.{key}")
        return cls(**kwargs)


@dataclass(frozen=True)
class TenancySpec:
    """The fleet-sharing axis of a scenario.

    Field meanings and validation mirror
    :class:`repro.runtime.fleet.FleetSpec` (whose ``seed`` and ``year``
    live at the scenario's top level, shared with the other kinds).
    """

    flow_count: int = 1_000_000
    device_count: int = 1_024
    tenant_count: int = 16
    slots_per_device: int = 4
    alpha: float = 1.05
    offered_load: float = 0.65
    mean_packet_bytes: int = 512

    def __post_init__(self) -> None:
        _expect(self.flow_count >= 1, "need at least one flow")
        _expect(self.device_count >= 1, "need at least one device instance")
        _expect(self.tenant_count >= 1, "need at least one tenant")
        _expect(self.slots_per_device >= 1,
                "need at least one PR slot per device")
        _expect(self.alpha > 0, "Zipf alpha must be positive")
        _expect(self.offered_load > 0, "offered load must be positive")
        _expect(self.mean_packet_bytes >= 1, "mean packet size must be positive")

    def to_json(self) -> Dict[str, Any]:
        return {
            "flow_count": self.flow_count,
            "device_count": self.device_count,
            "tenant_count": self.tenant_count,
            "slots_per_device": self.slots_per_device,
            "alpha": self.alpha,
            "offered_load": self.offered_load,
            "mean_packet_bytes": self.mean_packet_bytes,
        }

    _FIELDS = ("flow_count", "device_count", "tenant_count",
               "slots_per_device", "alpha", "offered_load",
               "mean_packet_bytes")

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "TenancySpec":
        _expect(isinstance(data, Mapping), "tenancy must be an object")
        _reject_unknown_keys(data, cls._FIELDS, "tenancy")
        kwargs: Dict[str, Any] = {}
        for key in ("flow_count", "device_count", "tenant_count",
                    "slots_per_device", "mean_packet_bytes"):
            if key in data:
                kwargs[key] = _expect_int(data[key], f"tenancy.{key}")
        for key in ("alpha", "offered_load"):
            if key in data:
                kwargs[key] = _expect_number(data[key], f"tenancy.{key}")
        return cls(**kwargs)


@dataclass(frozen=True)
class BuildSpec:
    """The build-farm axis of a scenario."""

    effort: int = 0
    software: Tuple[str, ...] = DEFAULT_BUILD_SOFTWARE

    def __post_init__(self) -> None:
        object.__setattr__(self, "software", tuple(self.software))
        _expect(self.effort >= 0, "build effort must be >= 0")

    def to_json(self) -> Dict[str, Any]:
        return {"effort": self.effort, "software": list(self.software)}

    _FIELDS = ("effort", "software")

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "BuildSpec":
        _expect(isinstance(data, Mapping), "build must be an object")
        _reject_unknown_keys(data, cls._FIELDS, "build")
        kwargs: Dict[str, Any] = {}
        if "effort" in data:
            kwargs["effort"] = _expect_int(data["effort"], "build.effort")
        if "software" in data:
            kwargs["software"] = _expect_str_tuple(data["software"],
                                                   "build.software")
        return cls(**kwargs)


@dataclass(frozen=True)
class EpochsSpec:
    """The epoch-stepped orchestration axis of a fleet scenario.

    Optional: a fleet scenario without this section is the one-shot
    snapshot simulator; with it, ``repro.cli fleet --epochs`` (or the
    service layer) advances the fleet through churned epochs via
    :class:`repro.runtime.orchestrator.Orchestrator`.  Field meanings
    and validation mirror
    :class:`repro.runtime.orchestrator.OrchestratorSpec`.

    Unlike ``engine``, this section **is** part of scenario identity
    when present -- orchestration changes what is computed, not how.
    Scenarios without it serialise exactly as before (the key is
    omitted), so every pre-existing scenario id is preserved.
    """

    epochs: int = 288
    epoch_seconds: int = 300
    churn: float = 0.01
    failure_every: int = 48
    drain_every: int = 96
    migrate_threshold: float = 1.2
    autoscale: bool = True
    spare_fraction: float = 0.25
    scale_step: int = 4
    pr_budget: int = 64
    policy: str = "flow-hash"

    def __post_init__(self) -> None:
        _expect(self.epochs >= 1, "need at least one epoch")
        _expect(self.epoch_seconds >= 1, "epoch length must be positive")
        _expect(0.0 <= self.churn <= 0.5, "churn must be within [0, 0.5]")
        _expect(self.failure_every >= 0,
                "failure cadence must be non-negative (0 disables)")
        _expect(self.drain_every >= 0,
                "drain cadence must be non-negative (0 disables)")
        _expect(self.migrate_threshold > 0,
                "migrate threshold must be positive")
        _expect(0.0 <= self.spare_fraction <= 4.0,
                "spare fraction must be within [0, 4]")
        _expect(self.scale_step >= 1, "scale step must be positive")
        _expect(self.pr_budget >= 0, "PR budget must be non-negative")
        from repro.runtime.fleet import POLICIES
        _expect(self.policy in POLICIES,
                f"unknown policy {self.policy!r}; "
                f"choose from {', '.join(POLICIES)}")

    def to_json(self) -> Dict[str, Any]:
        return {
            "epochs": self.epochs,
            "epoch_seconds": self.epoch_seconds,
            "churn": self.churn,
            "failure_every": self.failure_every,
            "drain_every": self.drain_every,
            "migrate_threshold": self.migrate_threshold,
            "autoscale": self.autoscale,
            "spare_fraction": self.spare_fraction,
            "scale_step": self.scale_step,
            "pr_budget": self.pr_budget,
            "policy": self.policy,
        }

    _FIELDS = ("epochs", "epoch_seconds", "churn", "failure_every",
               "drain_every", "migrate_threshold", "autoscale",
               "spare_fraction", "scale_step", "pr_budget", "policy")

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "EpochsSpec":
        _expect(isinstance(data, Mapping), "epochs must be an object")
        _reject_unknown_keys(data, cls._FIELDS, "epochs")
        kwargs: Dict[str, Any] = {}
        for key in ("epochs", "epoch_seconds", "failure_every",
                    "drain_every", "scale_step", "pr_budget"):
            if key in data:
                kwargs[key] = _expect_int(data[key], f"epochs.{key}")
        for key in ("churn", "migrate_threshold", "spare_fraction"):
            if key in data:
                kwargs[key] = _expect_number(data[key], f"epochs.{key}")
        if "autoscale" in data:
            kwargs["autoscale"] = _expect_bool(data["autoscale"],
                                               "epochs.autoscale")
        if "policy" in data:
            kwargs["policy"] = _expect_str(data["policy"], "epochs.policy")
        return cls(**kwargs)


# ---------------------------------------------------------------------------
# Scenario
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One declarative, versioned description of a run.

    A scenario is *pure configuration*: two equal scenarios produce
    byte-identical results, traces, and manifests on any engine tier,
    at any worker count.  The ``engine`` field selects an execution
    tier but is excluded from :meth:`scenario_id` -- tiers are pinned
    exactly equal, so they cannot be part of identity.
    """

    kind: str
    apps: Tuple[str, ...] = ()
    devices: Tuple[str, ...] = ()
    engine: str = "auto"
    seed: int = 2_025
    year: int = 2_024
    workload: WorkloadSpec = WorkloadSpec()
    tenancy: TenancySpec = TenancySpec()
    build: BuildSpec = BuildSpec()
    epochs: Optional[EpochsSpec] = None
    version: int = SCENARIO_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "apps", tuple(self.apps))
        object.__setattr__(self, "devices", tuple(self.devices))
        if self.version != SCENARIO_VERSION:
            raise ConfigurationError(
                f"unsupported scenario version {self.version!r}; this "
                f"build understands version {SCENARIO_VERSION}"
            )
        if self.kind not in SCENARIO_KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r}; known: "
                f"{', '.join(SCENARIO_KINDS)}"
            )
        require_engine(self.engine)
        _expect_int(self.seed, "seed")
        _expect_int(self.year, "year")
        for name in self.apps:
            _expect_str(name, "apps[]")
        for name in self.devices:
            _expect_str(name, "devices[]")
        if self.kind == "sweep" and (not self.apps or not self.devices):
            raise ConfigurationError(
                "a sweep scenario needs at least one app and one device")
        if self.epochs is not None and self.kind != "fleet":
            raise ConfigurationError(
                "the epochs section only applies to fleet scenarios; "
                f"this scenario is kind {self.kind!r}"
            )

    # --- identity and serialisation ------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """The scenario as a plain JSON-compatible dict.

        The ``epochs`` key appears only when the section is present, so
        scenarios without orchestration serialise byte-for-byte as they
        always did -- existing scenario ids are stable.
        """
        payload: Dict[str, Any] = {
            "version": self.version,
            "kind": self.kind,
            "apps": list(self.apps),
            "devices": list(self.devices),
            "engine": self.engine,
            "seed": self.seed,
            "year": self.year,
            "workload": self.workload.to_json(),
            "tenancy": self.tenancy.to_json(),
            "build": self.build.to_json(),
        }
        if self.epochs is not None:
            payload["epochs"] = self.epochs.to_json()
        return payload

    def canonical_json(self) -> str:
        """Canonical bytes: equal scenarios -> equal text, any field order."""
        return canonical_dumps(self.to_json())

    def scenario_id(self) -> str:
        """sha256 identity of the scenario's content, **excluding engine**.

        The cache/vector/DES tiers are pinned to exact equality, so the
        engine choice changes how a scenario runs, never what it
        computes -- like ``SweepPoint.engine``, it stays out of every
        content key (see ``docs/performance.md``).
        """
        payload = self.to_json()
        del payload["engine"]
        return hashlib.sha256(
            canonical_dumps(payload).encode("utf-8")).hexdigest()

    _FIELDS = ("version", "kind", "apps", "devices", "engine", "seed",
               "year", "workload", "tenancy", "build", "epochs")

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Scenario":
        """Parse and validate one scenario dict (any key order).

        Unknown keys, malformed values, unsupported versions, and
        unknown app/device/engine names all raise
        :class:`ConfigurationError` naming the valid alternatives.
        """
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"a scenario must be a JSON object, got {type(data).__name__}")
        _reject_unknown_keys(data, cls._FIELDS, "scenario")
        if "kind" not in data:
            raise ConfigurationError(
                f"scenario is missing 'kind'; known kinds: "
                f"{', '.join(SCENARIO_KINDS)}"
            )
        kwargs: Dict[str, Any] = {"kind": _expect_str(data["kind"], "kind")}
        if "version" in data:
            kwargs["version"] = _expect_int(data["version"], "version")
        if "apps" in data:
            kwargs["apps"] = _expect_str_tuple(data["apps"], "apps")
        if "devices" in data:
            kwargs["devices"] = _expect_str_tuple(data["devices"], "devices")
        if "engine" in data:
            kwargs["engine"] = _expect_str(data["engine"], "engine")
        if "seed" in data:
            kwargs["seed"] = _expect_int(data["seed"], "seed")
        if "year" in data:
            kwargs["year"] = _expect_int(data["year"], "year")
        if "workload" in data:
            kwargs["workload"] = WorkloadSpec.from_json(data["workload"])
        if "tenancy" in data:
            kwargs["tenancy"] = TenancySpec.from_json(data["tenancy"])
        if "build" in data:
            kwargs["build"] = BuildSpec.from_json(data["build"])
        if "epochs" in data and data["epochs"] is not None:
            kwargs["epochs"] = EpochsSpec.from_json(data["epochs"])
        scenario = cls(**kwargs)
        scenario.validate_names()
        return scenario

    def validate_names(self) -> "Scenario":
        """Check every app/device name against the registries; loud."""
        for name in self.apps:
            require_app_name(name)
        variants = self.kind == "build"
        for name in self.devices:
            require_device(name, variants=variants)
        return self

    def replace(self, **changes: Any) -> "Scenario":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    # --- conversions into the tier-native specs ------------------------

    def _require_kind(self, kind: str) -> None:
        if self.kind != kind:
            raise ConfigurationError(
                f"scenario kind {self.kind!r} cannot drive {kind!r}; "
                f"write a scenario with \"kind\": \"{kind}\""
            )

    def sweep_plan(self):
        """This scenario as a :class:`repro.runtime.sweep.SweepPlan`."""
        self._require_kind("sweep")
        from repro.runtime.sweep import SweepPlan

        return SweepPlan.from_scenario(self)

    def expand_points(self) -> List[Any]:
        """Sweep expansion: the single source of point order.

        Every consumer -- ``SweepPlan.expand()``, the runner, the
        fuzzer -- sees points in this canonical (app, device, size)
        order, with the scenario's engine applied to each point.
        """
        self._require_kind("sweep")
        from repro.runtime.sweep import SweepPoint

        workload = self.workload
        return [
            SweepPoint(
                app=app, device=device, packet_size_bytes=size,
                packet_count=workload.packets_per_point,
                with_harmonia=workload.with_harmonia,
                trace=workload.trace, engine=self.engine,
            )
            for app in self.apps
            for device in self.devices
            for size in workload.packet_sizes
        ]

    def fleet_spec(self):
        """This scenario as a :class:`repro.runtime.fleet.FleetSpec`."""
        self._require_kind("fleet")
        from repro.runtime.fleet import FleetSpec

        return FleetSpec.from_scenario(self)

    def orchestrator_spec(self):
        """This scenario's ``epochs`` section as an
        :class:`repro.runtime.orchestrator.OrchestratorSpec`."""
        self._require_kind("fleet")
        if self.epochs is None:
            raise ConfigurationError(
                "this fleet scenario has no epochs section to orchestrate")
        from repro.runtime.orchestrator import OrchestratorSpec

        return OrchestratorSpec.from_scenario(self)

    def build_plan(self):
        """This scenario as a :class:`repro.runtime.buildfarm.BuildPlan`."""
        self._require_kind("build")
        from repro.runtime.buildfarm import BuildPlan

        return BuildPlan.from_scenario(self)


# ---------------------------------------------------------------------------
# File I/O (the one loader every CLI subcommand shares)
# ---------------------------------------------------------------------------

def loads_scenario(text: str, source: str = "<string>") -> Scenario:
    """Parse scenario JSON text; loud on syntax and content errors."""
    try:
        data = json.loads(text)
    except ValueError as error:
        raise ConfigurationError(
            f"{source} is not a scenario file (invalid JSON: {error})"
        ) from None
    return Scenario.from_json(data)


def load_scenario(path: str) -> Scenario:
    """Load one scenario from a JSON file."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except FileNotFoundError:
        raise ConfigurationError(f"scenario file not found: {path}") from None
    return loads_scenario(text, source=path)


def save_scenario(scenario: Scenario, path: str) -> str:
    """Write ``scenario`` as canonical JSON; returns the canonical text."""
    text = scenario.canonical_json()
    with open(path, "w", encoding="utf-8", newline="\n") as handle:
        handle.write(text + "\n")
    return text
