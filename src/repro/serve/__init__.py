"""Warm serving daemon: resident caches behind a stdlib HTTP front end.

See ``docs/serving.md`` for the API, admission-control semantics, and
the warm-state model; :mod:`repro.serve.daemon` for the server itself.
"""

from repro.serve.accesslog import AccessLog
from repro.serve.admission import AdmissionController, TokenBucket
from repro.serve.client import (
    HttpResponse,
    LoadGenerator,
    LoadReport,
    ServeClient,
    http_request,
    percentile,
)
from repro.serve.coalesce import RequestCoalescer
from repro.serve.daemon import (
    DaemonHandle,
    ServeConfig,
    ServingDaemon,
    serve_in_thread,
)

__all__ = [
    "AccessLog",
    "AdmissionController",
    "DaemonHandle",
    "HttpResponse",
    "LoadGenerator",
    "LoadReport",
    "RequestCoalescer",
    "ServeClient",
    "ServeConfig",
    "ServingDaemon",
    "TokenBucket",
    "http_request",
    "percentile",
    "serve_in_thread",
]
