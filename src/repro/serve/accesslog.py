"""Structured JSONL access log for the serving daemon.

One line per completed request -- the operational ground truth a load
balancer or an incident review needs, independent of metric windows::

    {"coalesced": false, "method": "POST", "path": "/v1/sweep",
     "scenario_id": "bf2a...", "shed": false, "status": 200,
     "tenant": "acme", "trace_id": "req-00000007", "ts": 1754550000.123,
     "wall_ms": 12.345}

Keys serialise sorted, so the file greps and diffs predictably.  Like
the flight recorder, the log streams into ``<path>.tmp`` and is moved
into place atomically on :meth:`close` (the daemon's clean-shutdown
path): a crashed daemon leaves the *previous* log intact, never a torn
file, and the ``.tmp`` tail survives for post-mortems.

Writes are lock-serialised; the daemon calls from its event loop but
tests may hammer it from threads.
"""

import json
import os
import threading
import time
from typing import Any, Optional


class AccessLog:
    """Append-one-JSON-line-per-request with atomic finalisation."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._tmp_path = path + ".tmp"
        self._lock = threading.Lock()
        self._handle: Optional[Any] = open(
            self._tmp_path, "w", encoding="utf-8", newline="\n")
        self.lines_written = 0

    def record(self, *, method: str, path: str, status: int, tenant: str,
               wall_ms: float, trace_id: str = "",
               scenario_id: Optional[str] = None,
               coalesced: bool = False, shed: bool = False,
               ts: Optional[float] = None) -> None:
        entry = {
            "ts": round(time.time() if ts is None else ts, 6),
            "method": method,
            "path": path,
            "status": status,
            "tenant": tenant,
            "trace_id": trace_id,
            "scenario_id": scenario_id,
            "wall_ms": round(wall_ms, 3),
            "coalesced": coalesced,
            "shed": shed,
        }
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line + "\n")
            self.lines_written += 1

    def close(self) -> None:
        """Flush and atomically publish the log at its final path."""
        with self._lock:
            handle, self._handle = self._handle, None
        if handle is None:
            return
        handle.close()
        os.replace(self._tmp_path, self.path)

    @property
    def active(self) -> bool:
        return self._handle is not None

    def __enter__(self) -> "AccessLog":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()
