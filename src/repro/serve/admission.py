"""Admission control for the serving daemon.

The daemon's front door applies two independent checks before any work
is queued, in this order:

1. **per-tenant token-bucket quotas** -- each tenant (the ``X-Tenant``
   request header) owns a :class:`TokenBucket` refilled at
   ``quota_rps`` tokens per second up to a ``quota_burst`` ceiling.  A
   request that finds the bucket empty is rejected with HTTP 429: the
   tenant exceeded *its* contract, independent of how loaded the
   daemon is.  ``quota_rps <= 0`` disables quotas entirely.
2. **a bounded execution queue** -- at most ``max_queue`` executions
   may be queued-or-running at once.  A request that needs a *new*
   execution beyond the bound is shed with HTTP 503: the daemon
   protects its latency by refusing work instead of building an
   unbounded backlog.  Requests that coalesce onto an execution already
   in flight never consume a slot -- attaching is free.

Both checks are lock-protected and clock-injectable, so unit tests are
deterministic and concurrent request threads cannot corrupt counters.
"""

import threading
import time
from typing import Callable, Dict, Optional

from repro.errors import ConfigurationError


class TokenBucket:
    """One tenant's rate contract: ``rate`` tokens/s, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ConfigurationError("token bucket rate must be positive")
        if burst < 1:
            raise ConfigurationError("token bucket burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available; never blocks."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate)
            self._refilled_at = now
            if self._tokens < tokens:
                return False
            self._tokens -= tokens
            return True

    @property
    def tokens(self) -> float:
        """The current (refilled) token level; for introspection/tests."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate)
            self._refilled_at = now
            return self._tokens


class AdmissionController:
    """Quotas plus the bounded execution queue, behind one lock."""

    def __init__(self, max_queue: int, quota_rps: float = 0.0,
                 quota_burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")
        if quota_burst is not None and quota_burst < 1:
            raise ConfigurationError("quota_burst must be >= 1 (or None)")
        self.max_queue = max_queue
        self.quota_rps = float(quota_rps)
        self.quota_burst = (float(quota_burst) if quota_burst is not None
                            else max(1.0, 2.0 * self.quota_rps))
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._lock = threading.Lock()
        self._in_flight = 0
        self.quota_rejections = 0
        self.shed = 0

    # --- per-tenant quotas --------------------------------------------------

    def check_quota(self, tenant: str) -> bool:
        """True when ``tenant`` may proceed; False counts a rejection."""
        if self.quota_rps <= 0:
            return True
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = TokenBucket(self.quota_rps, self.quota_burst,
                                     clock=self._clock)
                self._buckets[tenant] = bucket
        if bucket.try_acquire():
            return True
        with self._lock:
            self.quota_rejections += 1
        return False

    def tenants(self) -> Dict[str, float]:
        """Current token level per known tenant (for ``/stats``)."""
        with self._lock:
            buckets = dict(self._buckets)
        return {tenant: bucket.tokens for tenant, bucket in buckets.items()}

    # --- bounded execution queue -------------------------------------------

    def try_enter(self) -> bool:
        """Claim one execution slot; False (a shed) when the queue is full."""
        with self._lock:
            if self._in_flight >= self.max_queue:
                self.shed += 1
                return False
            self._in_flight += 1
            return True

    def leave(self) -> None:
        """Release a slot claimed by :meth:`try_enter`."""
        with self._lock:
            if self._in_flight <= 0:
                raise ConfigurationError(
                    "admission leave() without a matching try_enter()")
            self._in_flight -= 1

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._in_flight
