"""Stdlib HTTP client and closed-loop load generator for the daemon.

The client is a thin socket wrapper (the daemon speaks
``Connection: close`` HTTP/1.1, so one socket per request is the
protocol, not a shortcut).  :class:`LoadGenerator` drives the daemon
from ``concurrency`` worker threads in a closed loop -- each worker
issues its next request as soon as the previous response lands -- and
records per-request latency so benchmarks can gate on percentiles.
"""

import json
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple


@dataclass
class HttpResponse:
    status: int
    headers: Dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


def http_request(host: str, port: int, method: str, path: str,
                 body: Optional[bytes] = None,
                 headers: Optional[Dict[str, str]] = None,
                 timeout: float = 60.0) -> HttpResponse:
    """One HTTP/1.1 request over a fresh socket; parses the full response."""
    payload = body or b""
    lines = [f"{method} {path} HTTP/1.1",
             f"Host: {host}:{port}",
             f"Content-Length: {len(payload)}",
             "Connection: close"]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    request = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + payload
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(request)
        chunks = []
        while True:
            chunk = sock.recv(65_536)
            if not chunk:
                break
            chunks.append(chunk)
    raw = b"".join(chunks)
    head, _, rest = raw.partition(b"\r\n\r\n")
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split()[1])
    response_headers: Dict[str, str] = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        response_headers[name.strip().lower()] = value.strip()
    return HttpResponse(status=status, headers=response_headers, body=rest)


class ServeClient:
    """Typed helpers over :func:`http_request` for one daemon."""

    def __init__(self, host: str, port: int, timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _get(self, path: str) -> HttpResponse:
        return http_request(self.host, self.port, "GET", path,
                            timeout=self.timeout)

    def health(self) -> Dict[str, Any]:
        return self._get("/healthz").json()

    def stats(self) -> Dict[str, Any]:
        return self._get("/stats").json()

    def slo(self) -> Dict[str, Any]:
        return self._get("/slo").json()

    def metrics_text(self) -> str:
        return self._get("/metrics").body.decode("utf-8")

    def run_scenario(self, scenario: Any, *, endpoint: str = "run",
                     slo: Optional[str] = None,
                     tenant: Optional[str] = None) -> HttpResponse:
        """POST one scenario (a dict, JSON text, or Scenario object)."""
        if hasattr(scenario, "to_json"):
            scenario = scenario.to_json()
        if isinstance(scenario, (dict, list)):
            body = json.dumps(scenario).encode("utf-8")
        elif isinstance(scenario, str):
            body = scenario.encode("utf-8")
        else:
            body = scenario
        path = f"/v1/{endpoint}"
        if slo is not None:
            path += f"?slo={slo}"
        headers = {"X-Tenant": tenant} if tenant else None
        return http_request(self.host, self.port, "POST", path, body=body,
                            headers=headers, timeout=self.timeout)

    def shutdown(self) -> HttpResponse:
        return http_request(self.host, self.port, "POST", "/v1/shutdown",
                            timeout=self.timeout)


@dataclass
class LoadReport:
    """What a load run observed, ready for benchmark gates."""

    sent: int = 0
    status_counts: Dict[int, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    elapsed_s: float = 0.0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> int:
        return self.status_counts.get(200, 0)

    @property
    def rps(self) -> float:
        return self.sent / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def latency_percentile(self, fraction: float) -> float:
        """Latency at ``fraction`` (e.g. 0.99) in seconds; 0 when empty."""
        if not self.latencies_s:
            return 0.0
        ordered = sorted(self.latencies_s)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    def to_json(self) -> Dict[str, Any]:
        return {
            "sent": self.sent,
            "ok": self.ok,
            "status_counts": {str(code): count
                              for code, count in sorted(
                                  self.status_counts.items())},
            "rps": round(self.rps, 3),
            "latency_p50_s": round(self.latency_percentile(0.50), 6),
            "latency_p99_s": round(self.latency_percentile(0.99), 6),
            "elapsed_s": round(self.elapsed_s, 6),
            "errors": self.errors[:10],
        }


class LoadGenerator:
    """Closed-loop load: N threads, round-robin over scenario bodies."""

    def __init__(self, host: str, port: int,
                 bodies: Sequence[bytes], *, endpoint: str = "run",
                 slo: Optional[str] = None, tenant: Optional[str] = None,
                 timeout: float = 60.0) -> None:
        if not bodies:
            raise ValueError("LoadGenerator needs at least one request body")
        self.client = ServeClient(host, port, timeout=timeout)
        self.bodies = list(bodies)
        self.endpoint = endpoint
        self.slo = slo
        self.tenant = tenant

    def run(self, requests: int, concurrency: int = 1) -> LoadReport:
        """Issue ``requests`` total requests from ``concurrency`` threads."""
        report = LoadReport()
        lock = threading.Lock()
        next_index = [0]

        def _worker() -> None:
            while True:
                with lock:
                    index = next_index[0]
                    if index >= requests:
                        return
                    next_index[0] += 1
                body = self.bodies[index % len(self.bodies)]
                start = time.perf_counter()
                try:
                    response = self.client.run_scenario(
                        body, endpoint=self.endpoint, slo=self.slo,
                        tenant=self.tenant)
                    status: Optional[int] = response.status
                    error = None
                except Exception as exc:
                    status, error = None, f"{type(exc).__name__}: {exc}"
                latency = time.perf_counter() - start
                with lock:
                    report.sent += 1
                    report.latencies_s.append(latency)
                    if status is not None:
                        report.status_counts[status] = (
                            report.status_counts.get(status, 0) + 1)
                    if error is not None:
                        report.errors.append(error)

        threads = [threading.Thread(target=_worker, name=f"load-{i}")
                   for i in range(max(1, concurrency))]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        report.elapsed_s = time.perf_counter() - start
        return report


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Shared percentile helper (same indexing as :class:`LoadReport`)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]
