"""Request coalescing: fold concurrent identical scenarios into one run.

The daemon keys every execution request by ``(kind, scenario_id, slo)``.
While an execution for a key is in flight, further requests for the same
key *attach* to it instead of spawning their own run: one thread does
the work, everyone receives the leader's response bytes.  This is safe
because the service layer's ``response_text()`` is a pure function of
the key -- cache temperature, worker count, and wall-clock never appear
in the body -- so the follower's response is byte-identical to what a
solo run would have produced.

The coalescer is deliberately asyncio-agnostic: it hands out
:class:`concurrent.futures.Future` objects, which the daemon awaits via
``asyncio.wrap_future`` and tests can block on directly.
"""

import threading
from concurrent.futures import Future
from typing import Dict, Hashable, Tuple


class RequestCoalescer:
    """In-flight execution table keyed by scenario identity."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[Hashable, Future] = {}
        self.executions = 0   # requests that became the leader of a run
        self.attached = 0     # requests folded onto an in-flight run

    def join(self, key: Hashable) -> Tuple[bool, Future]:
        """Attach to ``key``'s in-flight run, or become its leader.

        Returns ``(leader, future)``.  The leader MUST eventually call
        :meth:`resolve` or :meth:`reject` with the same future, or every
        attached request hangs.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self.attached += 1
                return False, future
            future = Future()
            self._inflight[key] = future
            self.executions += 1
            return True, future

    def resolve(self, key: Hashable, future: Future, value: object) -> None:
        """Publish the leader's result to every request holding ``future``.

        The key is retired *before* the future resolves: a request
        arriving after completion starts a fresh run (which will hit the
        resident caches) rather than receiving a stale future.
        """
        self._retire(key, future)
        future.set_result(value)

    def reject(self, key: Hashable, future: Future,
               error: BaseException) -> None:
        """Propagate the leader's failure to every attached request."""
        self._retire(key, future)
        future.set_exception(error)

    def _retire(self, key: Hashable, future: Future) -> None:
        with self._lock:
            if self._inflight.get(key) is future:
                del self._inflight[key]

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._inflight)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "executions": self.executions,
                "attached": self.attached,
                "inflight": len(self._inflight),
            }
