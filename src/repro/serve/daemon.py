"""The warm serving daemon: resident caches behind a small HTTP front end.

One-shot CLI invocations pay the full cold-start bill on every run:
interpreter boot, import graph, chain construction, and -- dominating
everything for repeated scenarios -- recomputing results whose inputs
did not change.  The daemon keeps the expensive state **resident**
instead:

* one process-wide :class:`~repro.runtime.sweep.SweepCache` (bounded
  LRU, optionally file-backed) so a sweep point computed for any
  request is a dictionary lookup for every later request;
* one :class:`~repro.runtime.buildfarm.ArtifactStore` so tailored-shell
  builds resolve from content-addressed artifacts;
* the process-wide memos (sweep chains, tailoring, resolve) that the
  runtime already keeps -- now thread-safe -- stay hot across requests.

The HTTP surface is deliberately tiny and stdlib-only (asyncio
``start_server`` plus a hand-rolled HTTP/1.1 parser): this is an
operator-facing control plane for a simulation framework, not a
general web server.  Connections are ``Connection: close``; request
bodies are Scenario JSON exactly as ``repro.cli`` consumes from disk.

Endpoints::

    GET  /healthz          liveness + uptime + warm-state summary
    GET  /metrics          Prometheus text exposition of the daemon registry
    GET  /stats            JSON: registry snapshot, coalescer, admission, cache
    GET  /slo              evaluate the serving SLOs against the registry
    GET  /telemetry        sliding-window rates, latencies, SLO burn rates
    GET  /trace            the resident serve-span ring as JSONL
    POST /v1/sweep         execute a sweep scenario (body: Scenario JSON)
    POST /v1/fleet         execute a fleet scenario
    POST /v1/build         execute a build scenario
    POST /v1/run           execute any scenario (kind from the body)
    POST /v1/shutdown      clean shutdown (only with --allow-remote-shutdown)

Execution requests accept ``?slo=default`` (the stock objectives for
the scenario's kind via :func:`repro.service.slo_monitor_for`; arbitrary
spec *files* are CLI-only -- an HTTP query must not name server paths)
and identify their tenant via the ``X-Tenant`` header.

Request flow: quota check (429) -> coalescer join -- followers attach
to an in-flight identical run for free -> leaders claim a bounded
queue slot (503 when full) and execute on a thread pool.  Responses for
identical scenarios are byte-identical no matter how they were served;
see :mod:`repro.serve.coalesce` and ``docs/serving.md``.

Every request is observable three ways (``docs/observability.md``):

* **spans** -- a ``serve.request`` root (plus ``serve.admission`` /
  ``serve.coalesce`` instants and a ``serve.execute`` child for run
  leaders) lands in a resident ring :class:`TraceBus`, wall-clocked in
  picoseconds since daemon start.  Requests carry an id from the
  ``X-Trace-Id`` header (or ``req-NNNNNNNN``); coalesced followers
  record their leader's trace id, which joins them to the leader's
  execution span.  Spans are emitted atomically at request completion,
  so interleaved requests never corrupt each other's parenting.
* **windows** -- a :class:`repro.obs.window.TelemetryHub` folds every
  response into sliding-window rates, per-endpoint/per-tenant latency
  histograms, and SLO burn rates (``/telemetry``, native ``histogram``
  families on ``/metrics``).
* **access log** -- with ``--access-log FILE``, one JSONL line per
  routed request, finalised atomically on clean shutdown.
"""

import asyncio
import json
import multiprocessing
import signal
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, urlsplit

from repro.errors import ConfigurationError, HarmoniaError
from repro.obs.tracectx import TraceContext
from repro.obs.window import TelemetryHub
from repro.runtime.buildfarm import ArtifactStore
from repro.runtime.metrics import MetricsRegistry
from repro.runtime.sweep import SweepCache
from repro.runtime.trace import DETACHED, TraceBus
from repro.scenario import Scenario
from repro.serve.accesslog import AccessLog
from repro.serve.admission import AdmissionController
from repro.serve.coalesce import RequestCoalescer
from repro.service import run_scenario, slo_monitor_for

_MAX_REQUEST_LINE = 8_192
_MAX_HEADERS = 100
_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Raised by handlers to produce a non-200 JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class ServeConfig:
    """Everything the daemon needs; mirrors the ``repro.cli serve`` flags."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = let the kernel pick (tests)
    exec_workers: int = 4              # scenario-execution thread pool
    pool_workers: int = 4              # resident sweep ProcessPool width
    max_queue: int = 32                # bounded execution queue (503 beyond)
    quota_rps: float = 0.0             # per-tenant tokens/s; <= 0 disables
    quota_burst: Optional[float] = None
    cache_entries: Optional[int] = 4_096   # SweepCache LRU bound; None = unbounded
    cache_file: Optional[str] = None   # load at boot, save on clean shutdown
    artifact_dir: Optional[str] = None  # ArtifactStore root; None = in-memory
    max_body: int = 1 << 20            # request body ceiling (413 beyond)
    allow_remote_shutdown: bool = False
    telemetry: bool = True             # sliding-window hub + /telemetry
    telemetry_window_s: float = 60.0   # trailing window length
    telemetry_slices: int = 12         # slices per window (5 s each)
    trace_ring: int = 4_096            # resident serve-span ring; 0 disables
    access_log: Optional[str] = None   # JSONL access log path; None disables

    def validate(self) -> None:
        if self.exec_workers < 1:
            raise ConfigurationError("exec_workers must be >= 1")
        if self.pool_workers < 1:
            raise ConfigurationError("pool_workers must be >= 1")
        if self.max_body < 1:
            raise ConfigurationError("max_body must be >= 1")
        if self.telemetry_window_s <= 0:
            raise ConfigurationError("telemetry_window_s must be positive")
        if self.telemetry_slices < 1:
            raise ConfigurationError("telemetry_slices must be >= 1")
        if self.trace_ring < 0:
            raise ConfigurationError("trace_ring must be >= 0")
        # max_queue / quota / cache bounds validate in their own types.


class ServingDaemon:
    """The long-lived server; owns all warm state.

    Construct once, then either :meth:`run` (blocking, installs signal
    handlers when on the main thread) or drive it from a test thread via
    :func:`serve_in_thread`.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.config.validate()
        self.metrics = MetricsRegistry()
        self.cache = SweepCache(max_entries=self.config.cache_entries)
        self.cache.attach_metrics(self.metrics)
        if self.config.cache_file:
            try:
                self.cache.load(self.config.cache_file)
            except FileNotFoundError:
                pass  # first boot: the file appears on clean shutdown
        self.store = ArtifactStore(self.config.artifact_dir)
        self.coalescer = RequestCoalescer()
        self.admission = AdmissionController(
            max_queue=self.config.max_queue,
            quota_rps=self.config.quota_rps,
            quota_burst=self.config.quota_burst,
        )
        self.executor = ThreadPoolExecutor(
            max_workers=self.config.exec_workers,
            thread_name_prefix="serve-exec")
        # One resident ProcessPool for the whole daemon lifetime: sweep
        # requests whose points cannot fuse (traces, forced DES) fan out
        # to it instead of spawning a pool per request.  Construction
        # starts no processes; workers appear lazily on first dispatch.
        # The spawn start method keeps worker creation safe from the
        # multi-threaded request executor (a fork could inherit another
        # request thread's held locks).
        self.pool = ProcessPoolExecutor(
            max_workers=self.config.pool_workers,
            mp_context=multiprocessing.get_context("spawn"))
        self.started_at = time.monotonic()
        # Serve-span ring: wall-clock picoseconds since daemon start
        # (the simulators' buses run on sim-time; requests live on the
        # operator's clock).  Spans are emitted in one burst per
        # completed request with explicit parents, so concurrent
        # requests interleave safely.
        self.trace = TraceBus(
            clock_ps=self._wall_ps,
            enabled=self.config.trace_ring > 0,
            max_records=self.config.trace_ring or None)
        self.telemetry: Optional[TelemetryHub] = (
            TelemetryHub(window_s=self.config.telemetry_window_s,
                         slices=self.config.telemetry_slices)
            if self.config.telemetry else None)
        self.access_log: Optional[AccessLog] = (
            AccessLog(self.config.access_log)
            if self.config.access_log else None)
        self.port: Optional[int] = None   # bound port, set once listening
        self.ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._requests = 0
        self._trace_seq = 0
        self._requests_lock = threading.Lock()
        # Leader trace ids by coalescer key, so followers can link
        # their serve.coalesce instant to the leader's execution span.
        self._leader_traces: Dict[Any, str] = {}

    def _wall_ps(self) -> int:
        return int((time.monotonic() - self.started_at) * 1e12)

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    def run(self, on_ready: Optional[Callable[[str, int], None]] = None) -> int:
        """Serve until stopped; returns 0 on clean shutdown."""
        asyncio.run(self._main(on_ready))
        return 0

    def request_shutdown(self) -> None:
        """Begin a clean shutdown; safe from any thread or signal context."""
        loop, stop = self._loop, self._stop
        if loop is None or stop is None:
            return
        loop.call_soon_threadsafe(stop.set)

    async def _main(self, on_ready: Optional[Callable[[str, int], None]]) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._install_signal_handlers()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.port = server.sockets[0].getsockname()[1]
        self.ready.set()
        if on_ready is not None:
            on_ready(self.config.host, self.port)
        try:
            await self._stop.wait()
        finally:
            server.close()
            await server.wait_closed()
            self.executor.shutdown(wait=True)
            self.pool.shutdown(wait=True)
            if self.access_log is not None:
                self.access_log.close()
            if self.config.cache_file:
                self.cache.save(self.config.cache_file)

    def _install_signal_handlers(self) -> None:
        if threading.current_thread() is not threading.main_thread():
            return  # serve_in_thread: stopped via request_shutdown()
        loop = self._loop
        assert loop is not None and self._stop is not None
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._stop.set)
            except (NotImplementedError, RuntimeError):
                signal.signal(signum, lambda *_: self.request_shutdown())

    # ------------------------------------------------------------------ #
    # HTTP plumbing                                                      #
    # ------------------------------------------------------------------ #

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        start = time.perf_counter()
        mono_start = time.monotonic()
        status, body, extra = 500, b"", {}
        info: Dict[str, Any] = {}
        try:
            method, target, headers, payload = await self._read_request(reader)
            self.metrics.increment("serve.requests")
            with self._requests_lock:
                self._requests += 1
            status, body, extra = await self._route(
                method, target, headers, payload, info)
        except _HttpError as exc:
            self.metrics.increment("serve.requests")
            status, body = exc.status, _error_body(exc.status, exc.message)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # a handler bug, not a client error
            status, body = 500, _error_body(500, f"internal error: {exc}")
        elapsed = time.perf_counter() - start
        try:
            self.metrics.increment(f"serve.responses.{status}")
            self.metrics.observe("serve.request.wall_ps",
                                 int(elapsed * 1e12))
            self.metrics.set_gauge("serve.queue.depth",
                                   self.admission.queue_depth)
            writer.write(_render_response(status, body, extra))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            self._observe_request(info, status, elapsed, mono_start)
            writer.close()

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        if len(request_line) > _MAX_REQUEST_LINE:
            raise _HttpError(400, "request line too long")
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, "malformed request line")
        method, target = parts[0], parts[1]
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS + 1):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) >= _MAX_HEADERS:
                raise _HttpError(400, "too many headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, "malformed header line")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length: {length_text!r}")
        if length < 0:
            raise _HttpError(400, "negative Content-Length")
        if length > self.config.max_body:
            raise _HttpError(
                413, f"body of {length} bytes exceeds the "
                f"{self.config.max_body}-byte limit")
        payload = await reader.readexactly(length) if length else b""
        return method, target, headers, payload

    async def _route(self, method: str, target: str,
                     headers: Dict[str, str], payload: bytes,
                     info: Dict[str, Any]
                     ) -> Tuple[int, bytes, Dict[str, str]]:
        url = urlsplit(target)
        path = url.path
        query = dict(parse_qsl(url.query))
        with self._requests_lock:
            self._trace_seq += 1
            seq = self._trace_seq
        info["method"] = method
        info["path"] = path
        info["tenant"] = headers.get("x-tenant", "default")
        info["trace"] = TraceContext.from_headers(
            headers, fallback=f"req-{seq:08d}")
        if path in ("/healthz", "/metrics", "/stats", "/slo",
                    "/telemetry", "/trace"):
            if method != "GET":
                raise _HttpError(405, f"{path} is GET-only")
            return getattr(self, "_get_" + path.strip("/"))()
        if path == "/v1/shutdown":
            if method != "POST":
                raise _HttpError(405, "/v1/shutdown is POST-only")
            if not self.config.allow_remote_shutdown:
                raise _HttpError(
                    404, "remote shutdown is disabled; start the daemon "
                    "with --allow-remote-shutdown or send SIGTERM")
            self.request_shutdown()
            return 200, _json_body({"status": "shutting down"}), {}
        if path.startswith("/v1/"):
            kind = path[len("/v1/"):]
            if kind not in ("sweep", "fleet", "build", "run"):
                raise _HttpError(404, f"unknown endpoint {path!r}")
            if method != "POST":
                raise _HttpError(405, f"{path} is POST-only")
            return await self._execute(kind, headers, payload, query, info)
        raise _HttpError(404, f"unknown endpoint {path!r}")

    # ------------------------------------------------------------------ #
    # read-only endpoints                                                #
    # ------------------------------------------------------------------ #

    def _get_healthz(self) -> Tuple[int, bytes, Dict[str, str]]:
        with self._requests_lock:
            requests = self._requests
        return 200, _json_body({
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started_at, 3),
            "requests": requests,
            "warm": {
                "sweep_cache_entries": len(self.cache),
                "artifact_store_entries": len(self.store),
            },
        }), {}

    def _get_metrics(self) -> Tuple[int, bytes, Dict[str, str]]:
        from repro.obs.prometheus import to_prometheus_text

        histograms = (self.telemetry.histogram_snapshots()
                      if self.telemetry is not None else None)
        text = to_prometheus_text(self.metrics, histograms)
        return 200, text.encode("utf-8"), {
            "Content-Type": "text/plain; version=0.0.4; charset=utf-8"}

    def _get_telemetry(self) -> Tuple[int, bytes, Dict[str, str]]:
        if self.telemetry is None:
            raise _HttpError(
                404, "windowed telemetry is disabled (--no-telemetry)")
        return 200, _json_body(self.telemetry.telemetry_json()), {}

    def _get_trace(self) -> Tuple[int, bytes, Dict[str, str]]:
        if not self.trace.enabled:
            raise _HttpError(
                404, "the serve trace ring is disabled (--trace-ring 0)")
        text = self.trace.export_jsonl()
        return 200, text.encode("utf-8"), {
            "Content-Type": "application/x-ndjson; charset=utf-8"}

    def _get_stats(self) -> Tuple[int, bytes, Dict[str, str]]:
        return 200, _json_body({
            "metrics": self.metrics.snapshot(),
            "coalescer": self.coalescer.counters(),
            "admission": {
                "queue_depth": self.admission.queue_depth,
                "max_queue": self.admission.max_queue,
                "shed": self.admission.shed,
                "quota_rejections": self.admission.quota_rejections,
                "tenants": self.admission.tenants(),
            },
            "cache": {
                "entries": len(self.cache),
                "max_entries": self.cache.max_entries,
                "evictions": self.cache.evictions,
            },
            "pool": {
                "max_workers": self.config.pool_workers,
                "resident": True,
            },
            "orchestrator": {
                "runs": self.metrics.counter(
                    "serve.orchestrator.runs").value,
                "epochs": self.metrics.counter(
                    "serve.orchestrator.epochs").value,
                "migrations": self.metrics.counter(
                    "serve.orchestrator.migrations").value,
                "pr_grants": self.metrics.counter(
                    "serve.orchestrator.pr_grants").value,
                "scaled_up": self.metrics.counter(
                    "serve.orchestrator.scaled_up").value,
                "scaled_down": self.metrics.counter(
                    "serve.orchestrator.scaled_down").value,
                "slo_violations": self.metrics.counter(
                    "serve.orchestrator.slo_violations").value,
            },
            "telemetry": (self.telemetry.summary()
                          if self.telemetry is not None else None),
            "trace_ring": {
                "enabled": self.trace.enabled,
                "resident_records": len(self.trace),
                "total_records": self.trace.total_records,
                "max_records": self.trace.max_records,
            },
        }), {}

    def _get_slo(self) -> Tuple[int, bytes, Dict[str, str]]:
        monitor = slo_monitor_for("serve", "default")
        report = monitor.evaluate(self.metrics)
        body = dict(report.to_json())
        body["exit_code"] = report.exit_code
        return 200, _json_body(body), {}

    # ------------------------------------------------------------------ #
    # scenario execution                                                 #
    # ------------------------------------------------------------------ #

    async def _execute(self, endpoint_kind: str, headers: Dict[str, str],
                       payload: bytes, query: Dict[str, str],
                       info: Dict[str, Any]
                       ) -> Tuple[int, bytes, Dict[str, str]]:
        tenant = info.get("tenant", "default")
        trace_ctx: Optional[TraceContext] = info.get("trace")
        slo = query.get("slo")
        if slo is not None and slo != "default":
            raise _HttpError(
                400, "only ?slo=default is accepted over HTTP; file-based "
                "SLO specs are a CLI feature")
        scenario = self._parse_scenario(payload)
        if endpoint_kind != "run" and scenario.kind != endpoint_kind:
            raise _HttpError(
                400, f"scenario kind {scenario.kind!r} does not match "
                f"endpoint /v1/{endpoint_kind}; use /v1/run or "
                f"/v1/{scenario.kind}")
        info["scenario_id"] = scenario.scenario_id()

        if not self.admission.check_quota(tenant):
            self.metrics.increment("serve.quota_rejected")
            info["admission"] = "quota_rejected"
            raise _HttpError(
                429, f"tenant {tenant!r} exceeded its "
                f"{self.admission.quota_rps:g} req/s quota")

        key = (scenario.kind, scenario.scenario_id(), slo)
        leader, future = self.coalescer.join(key)
        if leader:
            info["coalesce"] = "leader"
            self.metrics.increment("serve.coalesce.executed")
            if not self.admission.try_enter():
                self.metrics.increment("serve.shed")
                info["admission"] = "shed"
                error = _HttpError(
                    503, f"execution queue full "
                    f"({self.admission.max_queue} in flight); retry later")
                self.coalescer.reject(key, future, error)
            else:
                info["admission"] = "admitted"
                info["exec_start"] = time.monotonic()
                if trace_ctx is not None:
                    with self._requests_lock:
                        self._leader_traces[key] = trace_ctx.trace_id

                def _work() -> None:
                    try:
                        kwargs: Dict[str, Any] = {}
                        if scenario.kind == "sweep":
                            # Cold-cache sweeps go through the fused
                            # planner; points that cannot fuse reuse
                            # the resident pool instead of spawning one.
                            kwargs = {"workers": self.config.pool_workers,
                                      "executor": self.pool}
                        outcome = run_scenario(
                            scenario, cache=self.cache, store=self.store,
                            slo=slo, trace_context=trace_ctx, **kwargs)
                        self._record_execution(outcome)
                        body = outcome.response_text().encode("utf-8")
                        self.coalescer.resolve(key, future, body)
                    except BaseException as exc:
                        self.coalescer.reject(key, future, exc)
                    finally:
                        self.admission.leave()
                        if trace_ctx is not None:
                            with self._requests_lock:
                                if (self._leader_traces.get(key)
                                        == trace_ctx.trace_id):
                                    del self._leader_traces[key]

                self.executor.submit(_work)
        else:
            info["coalesce"] = "follower"
            info["admission"] = "admitted"
            self.metrics.increment("serve.coalesce.attached")
            with self._requests_lock:
                leader_trace = self._leader_traces.get(key)
            if leader_trace is not None:
                info["leader_trace"] = leader_trace

        try:
            body = await asyncio.wrap_future(future)
        except _HttpError:
            raise
        except ConfigurationError as exc:
            raise _HttpError(400, str(exc))
        except HarmoniaError as exc:
            raise _HttpError(400, str(exc))
        except Exception as exc:
            raise _HttpError(500, f"execution failed: {exc}")
        finally:
            if "exec_start" in info:
                info["exec_end"] = time.monotonic()
        return 200, body, {
            "X-Scenario-Id": key[1],
            "X-Coalesced": "leader" if leader else "follower",
        }

    def _observe_request(self, info: Dict[str, Any], status: int,
                         elapsed_s: float, mono_start: float) -> None:
        """Fold one finished request into spans, windows, and the log.

        Runs in the connection handler's ``finally``; ``info`` is the
        per-request scratch dict ``_route``/``_execute`` populated.
        Connection-level noise that never produced a request line (no
        ``path``) is invisible here, matching the access-log contract
        of one line per *routed* request.  All spans for a request are
        emitted in one synchronous burst with explicit parents, so
        requests interleaved on the event loop cannot corrupt each
        other's span tree.
        """
        path = info.get("path")
        if path is None:
            return
        tenant = info.get("tenant", "default")
        trace_ctx: Optional[TraceContext] = info.get("trace")
        trace_id = trace_ctx.trace_id if trace_ctx is not None else ""
        coalesced = info.get("coalesce") == "follower"
        shed = info.get("admission") == "shed"
        if self.telemetry is not None:
            self.telemetry.record_request(
                endpoint=path, tenant=tenant, status=status,
                wall_ps=elapsed_s * 1e12, coalesced=coalesced, shed=shed)
        if self.trace.enabled:
            start_ps = int((mono_start - self.started_at) * 1e12)
            end_ps = start_ps + int(elapsed_s * 1e12)
            root = self.trace.complete(
                "serve.request", start_ps, end_ps, parent=DETACHED,
                trace_id=trace_id, method=info.get("method", "?"),
                path=path, status=status, tenant=tenant)
            if "admission" in info:
                self.trace.instant(
                    "serve.admission", ts_ps=start_ps, parent=root,
                    outcome=info["admission"])
            role = info.get("coalesce")
            if role is not None:
                attrs: Dict[str, Any] = {"role": role}
                if "leader_trace" in info:
                    # The join key back to the leader's serve.execute
                    # span (same scenario_id, this trace id).
                    attrs["leader_trace_id"] = info["leader_trace"]
                self.trace.instant("serve.coalesce", ts_ps=start_ps,
                                   parent=root, **attrs)
            if "exec_start" in info:
                exec_start = int(
                    (info["exec_start"] - self.started_at) * 1e12)
                exec_end = int(
                    (info.get("exec_end", time.monotonic())
                     - self.started_at) * 1e12)
                self.trace.complete(
                    "serve.execute", exec_start, exec_end, parent=root,
                    scenario_id=info.get("scenario_id", ""),
                    trace_id=trace_id)
        if self.access_log is not None:
            self.access_log.record(
                method=info.get("method", "?"), path=path, status=status,
                tenant=tenant, wall_ms=elapsed_s * 1e3, trace_id=trace_id,
                scenario_id=info.get("scenario_id"),
                coalesced=coalesced, shed=shed)

    def _record_execution(self, outcome: Any) -> None:
        """Fold one execution's planner provenance into the registry.

        ``serve.sweep.fused_points`` / ``pooled_points`` count how the
        cold work of sweep requests actually ran; ``serve.pool.dispatches``
        counts resident-pool fan-outs and ``serve.pool.request_spawns``
        stays zero for as long as no request ever spawned its own
        executor -- the invariant ``benchmarks/serve_smoke.py`` gates.
        Epoch-orchestrated fleet requests fold their day's totals into
        ``serve.orchestrator.*`` and the telemetry hub's windows.
        """
        if outcome.kind == "fleet" and outcome.meta.get("epochs"):
            meta = outcome.meta
            self.metrics.increment("serve.orchestrator.runs")
            self.metrics.increment("serve.orchestrator.epochs",
                                   meta["epochs"])
            for key in ("arrivals", "departures", "failures", "drains",
                        "migrations", "pr_grants", "scaled_up",
                        "scaled_down", "slo_violations"):
                amount = meta.get("totals", {}).get(key, 0)
                if amount:
                    self.metrics.increment(f"serve.orchestrator.{key}",
                                           amount)
            if self.telemetry is not None:
                self.telemetry.record_orchestration(
                    epochs=meta["epochs"],
                    wall_ps=outcome.elapsed_s * 1e12)
            return
        if outcome.kind != "sweep":
            return
        meta = outcome.meta
        if meta.get("fused_points"):
            self.metrics.increment("serve.sweep.fused_points",
                                   meta["fused_points"])
            self.metrics.increment("serve.sweep.fused_groups",
                                   meta["fused_groups"])
        if meta.get("pooled_points"):
            self.metrics.increment("serve.sweep.pooled_points",
                                   meta["pooled_points"])
            self.metrics.increment("serve.pool.dispatches")
        if meta.get("spawned_pool"):
            self.metrics.increment("serve.pool.request_spawns")

    def _parse_scenario(self, payload: bytes) -> Scenario:
        if not payload:
            raise _HttpError(400, "empty body; POST a Scenario JSON object")
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}")
        try:
            return Scenario.from_json(data)
        except HarmoniaError as exc:
            raise _HttpError(400, str(exc))


# ---------------------------------------------------------------------- #
# response formatting                                                    #
# ---------------------------------------------------------------------- #

def _json_body(payload: Dict[str, Any]) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _error_body(status: int, message: str) -> bytes:
    return _json_body({"error": message, "status": status})


def _render_response(status: int, body: bytes,
                     extra: Dict[str, str]) -> bytes:
    headers = {
        "Content-Type": "application/json",
        "Content-Length": str(len(body)),
        "Connection": "close",
    }
    headers.update(extra)
    if status == 429:
        headers.setdefault("Retry-After", "1")
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


# ---------------------------------------------------------------------- #
# in-thread harness (tests, benchmarks)                                  #
# ---------------------------------------------------------------------- #

class DaemonHandle:
    """A daemon running on a background thread; context-manager friendly."""

    def __init__(self, daemon: ServingDaemon, thread: threading.Thread) -> None:
        self.daemon = daemon
        self.thread = thread

    @property
    def host(self) -> str:
        return self.daemon.config.host

    @property
    def port(self) -> int:
        assert self.daemon.port is not None
        return self.daemon.port

    def stop(self, timeout: float = 10.0) -> None:
        self.daemon.request_shutdown()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():
            raise RuntimeError("serving daemon did not shut down in time")

    def __enter__(self) -> "DaemonHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_thread(config: Optional[ServeConfig] = None,
                    ready_timeout: float = 10.0) -> DaemonHandle:
    """Start a daemon on a daemon thread and wait until it is listening."""
    daemon = ServingDaemon(config)
    thread = threading.Thread(target=daemon.run, name="serve-daemon",
                              daemon=True)
    thread.start()
    if not daemon.ready.wait(timeout=ready_timeout):
        raise RuntimeError("serving daemon failed to start listening")
    return DaemonHandle(daemon, thread)
